"""Dedicated semantics suite for the old (sequential-ARU) prototype.

The "old" LLD is not just a cost model: it is a real mode with its
own semantics — one ARU at a time, operations applied directly to the
committed state, atomicity provided purely by the commit-record rule
at recovery.  The paper's Minix didn't use ARUs at all on this
prototype, but the mode supports them; this suite pins that behaviour
down, including the combination the paper never measured (sequential
ARUs driving an fsck-free Minix).
"""

import pytest

from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import ConcurrencyError, DiskCrashedError
from repro.fs import MinixFS, fsck
from repro.lld.lld import LLD
from repro.lld.recovery import recover


def build(injector=None, num_segments=96):
    geo = DiskGeometry.small(num_segments=num_segments)
    disk = SimulatedDisk(geo, injector=injector)
    return disk, LLD(disk, aru_mode="sequential", checkpoint_slot_segments=2)


class TestSequentialSemantics:
    def test_direct_application(self, old_lld):
        """No shadow state: effects are visible immediately to all."""
        lst = old_lld.new_list()
        aru = old_lld.begin_aru()
        block = old_lld.new_block(lst, aru=aru)
        old_lld.write(block, b"visible now", aru=aru)
        assert old_lld.read(block).startswith(b"visible now")
        assert old_lld.list_blocks(lst) == [block]
        old_lld.end_aru(aru)

    def test_one_at_a_time(self, old_lld):
        first = old_lld.begin_aru()
        with pytest.raises(ConcurrencyError):
            old_lld.begin_aru()
        old_lld.end_aru(first)
        second = old_lld.begin_aru()
        old_lld.end_aru(second)

    def test_simple_ops_interleave_freely(self, old_lld):
        lst = old_lld.new_list()
        aru = old_lld.begin_aru()
        inside = old_lld.new_block(lst, aru=aru)
        outside = old_lld.new_block(lst)  # simple op mid-ARU
        old_lld.write(inside, b"tagged", aru=aru)
        old_lld.write(outside, b"untagged")
        old_lld.end_aru(aru)
        assert old_lld.read(inside).startswith(b"tagged")
        assert old_lld.read(outside).startswith(b"untagged")

    def test_no_record_machinery_costs(self, old_lld):
        """The old prototype updates tables in place: the concurrent
        machinery's cost categories must not be charged at record
        rates."""
        lst = old_lld.new_list()
        aru = old_lld.begin_aru()
        block = old_lld.new_block(lst, aru=aru)
        old_lld.write(block, b"x", aru=aru)
        old_lld.end_aru(aru)
        counters = old_lld.meter.counters
        assert "record_create_us" not in counters
        assert "record_transition_us" not in counters
        assert "listop_replay_us" not in counters
        assert "aru_alloc_us" not in counters


class TestSequentialRecovery:
    def test_committed_and_flushed_survives(self):
        disk, lld = build()
        lst = lld.new_list()
        aru = lld.begin_aru()
        blocks = [lld.new_block(lst, aru=aru) for _ in range(3)]
        for index, block in enumerate(blocks):
            lld.write(block, f"seq-{index}".encode(), aru=aru)
        lld.end_aru(aru)
        lld.flush()
        lld2, report = recover(
            disk.power_cycle(), aru_mode="sequential",
            checkpoint_slot_segments=2,
        )
        assert report.arus_committed >= 1
        for index, block in enumerate(blocks):
            assert lld2.read(block).startswith(f"seq-{index}".encode())

    def test_uncommitted_fully_undone_despite_direct_application(self):
        """The defining property: although operations hit the
        committed state immediately in memory, a crash before the
        commit record still erases all of them."""
        disk, lld = build()
        lst = lld.new_list()
        base = lld.new_block(lst)
        lld.write(base, b"pre-aru")
        lld.flush()
        aru = lld.begin_aru()
        lld.write(base, b"mid-aru-overwrite", aru=aru)
        extra = lld.new_block(lst, aru=aru)
        lld.write(extra, b"mid-aru-new", aru=aru)
        lld.flush()  # tagged entries reach the disk, commit does not
        # In memory the effects are visible (sequential semantics) ...
        assert lld.read(base).startswith(b"mid-aru-overwrite")
        # ... but recovery rolls them back wholesale.
        lld2, report = recover(
            disk.power_cycle(), aru_mode="sequential",
            checkpoint_slot_segments=2,
        )
        assert lld2.read(base).startswith(b"pre-aru")
        assert lld2.list_blocks(lst) == [base]
        assert int(extra) in report.orphan_blocks_freed
        assert report.arus_discarded == 1

    def test_crash_mid_aru_sweep_over_many_points(self):
        for crash_after in range(1, 12):
            injector = FaultInjector(CrashPlan(after_writes=crash_after))
            disk, lld = build(injector=injector)
            lst = lld.new_list()
            committed = []
            try:
                for round_no in range(100):
                    aru = lld.begin_aru()
                    block = lld.new_block(lst, aru=aru)
                    lld.write(block, f"r{round_no}".encode(), aru=aru)
                    lld.end_aru(aru)
                    lld.flush()
                    committed.append((block, f"r{round_no}".encode()))
            except DiskCrashedError:
                pass
            lld2, _report = recover(
                disk.power_cycle(), aru_mode="sequential",
                checkpoint_slot_segments=2,
            )
            survivors = lld2.list_blocks(lst)
            # Survivors are exactly a prefix of the committed rounds.
            expected = [block for block, _p in committed[: len(survivors)]]
            assert sorted(survivors) == sorted(expected)
            for block, payload in committed[: len(survivors)]:
                assert lld2.read(block).startswith(payload)


class TestSequentialARUsWithMinix:
    """The variant the paper never measured: the old prototype's
    sequential ARUs driving an ARU-aware Minix.  Atomicity holds;
    only concurrency is sacrificed."""

    def test_fs_crash_consistency(self):
        for crash_after in (3, 7, 12, 19):
            injector = FaultInjector(CrashPlan(after_writes=crash_after))
            geo = DiskGeometry.small(num_segments=96)
            disk = SimulatedDisk(geo, injector=injector)
            lld = LLD(
                disk, aru_mode="sequential", checkpoint_slot_segments=2
            )
            fs = MinixFS.mkfs(lld, n_inodes=256, use_arus=True)
            try:
                for index in range(300):
                    fs.create(f"/f{index}")
                    fs.write_file(f"/f{index}", b"d" * 2000)
                    if index % 2:
                        fs.sync()
                    if index % 5 == 4:
                        fs.unlink(f"/f{index - 2}")
            except DiskCrashedError:
                pass
            lld2, _report = recover(
                disk.power_cycle(), aru_mode="sequential",
                checkpoint_slot_segments=2,
            )
            mounted = MinixFS.mount(lld2, use_arus=True)
            report = fsck(mounted)
            assert report.clean, (
                crash_after, [str(p) for p in report.problems][:3]
            )
