"""Stress tests: the interactions that only show up under load.

These target the hairiest interleavings: the segment cleaner firing
in the middle of ARU commits, deferred folds racing buffer rolls,
many ARUs spanning cleaning passes, and long crash/recover/checkpoint
lifecycles on a nearly-full disk.
"""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskFullError
from repro.fs import MinixFS, fsck
from repro.ld.types import FIRST
from repro.lld.lld import LLD
from repro.lld.recovery import recover
from repro.lld.verify import verify_lld


def tight_lld(num_segments=28, **kwargs):
    geo = DiskGeometry.small(num_segments=num_segments)
    disk = SimulatedDisk(geo)
    kwargs.setdefault("checkpoint_slot_segments", 1)
    kwargs.setdefault("clean_low_water", 3)
    kwargs.setdefault("clean_high_water", 6)
    return disk, LLD(disk, **kwargs)


class TestCleanerDuringARUs:
    def test_cleaning_fires_while_arus_commit(self):
        """Big ARUs on a tiny disk: commits roll segments, rolls
        trigger cleaning, cleaning must neither lose committed data
        nor leak uncommitted data."""
        disk, lld = tight_lld(num_segments=24)
        lst = lld.new_list()
        survivors = {}
        for round_no in range(60):
            aru = lld.begin_aru()
            blocks = []
            previous = FIRST
            for index in range(8):
                block = lld.new_block(lst, predecessor=previous, aru=aru)
                payload = f"r{round_no}i{index}".encode()
                lld.write(block, payload, aru=aru)
                blocks.append((block, payload))
                previous = block
            lld.end_aru(aru)
            # Overwrite the previous round's blocks to create garbage.
            for block, _payload in survivors.get(round_no - 1, []):
                lld.delete_block(block)
            survivors[round_no] = blocks
        assert lld.cleanings > 0
        lld.flush()
        problems = verify_lld(lld)
        assert problems == [], problems[:5]
        # The last round's data is intact.
        for block, payload in survivors[59]:
            assert lld.read(block).startswith(payload)

    def test_cleaning_preserves_other_arus_shadow_state(self):
        """An open ARU's shadow data must survive cleaning passes
        triggered by other activity (shadow data is memory-only, but
        the persistent versions it shadows must not be lost)."""
        disk, lld = tight_lld(num_segments=30)
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"precious-base")
        lld.flush()
        aru = lld.begin_aru()
        lld.write(block, b"precious-shadow", aru=aru)
        # Hammer the disk with other traffic until cleaning happens.
        churn_list = lld.new_list()
        victim = lld.new_block(churn_list)
        for round_no in range(600):
            lld.write(victim, f"junk-{round_no}".encode() * 200)
            if round_no % 10 == 9:
                lld.flush()
        assert lld.cleanings > 0
        assert lld.read(block, aru=aru).startswith(b"precious-shadow")
        assert lld.read(block).startswith(b"precious-base")
        lld.end_aru(aru)
        lld.flush()
        assert lld.read(block).startswith(b"precious-shadow")
        # Crash check: the committed shadow survived all the churn.
        lld2, _report = recover(
            disk.power_cycle(), checkpoint_slot_segments=1, clean_low_water=3
        )
        assert lld2.read(block).startswith(b"precious-shadow")


class TestNearFullDisk:
    def test_fill_until_full_then_recover_space(self):
        disk, lld = tight_lld(num_segments=24)
        lst = lld.new_list()
        blocks = []
        previous = FIRST
        with pytest.raises(DiskFullError):
            for index in range(10_000):
                block = lld.new_block(lst, predecessor=previous)
                lld.write(block, f"fill-{index}".encode())
                blocks.append(block)
                previous = block
        # Everything written before the failure is still readable.
        written = len(blocks) - 1  # the last may have failed mid-op
        for index in range(written):
            assert lld.read(blocks[index]).startswith(f"fill-{index}".encode())
        # Deleting half frees space for new work (via cleaning).
        for block in blocks[: written // 2]:
            lld.delete_block(block)
        lld.flush()
        fresh = lld.new_block(lst)
        lld.write(fresh, b"room again")
        lld.flush()
        assert lld.read(fresh).startswith(b"room again")

    def test_repeated_lifecycles_converge(self):
        """Ten generations of work + crash + recover on one disk;
        state stays consistent and bounded."""
        geo = DiskGeometry.small(num_segments=48)
        disk = SimulatedDisk(geo)
        lld = LLD(disk, checkpoint_slot_segments=1, clean_low_water=3)
        fs = MinixFS.mkfs(lld, n_inodes=64)
        fs.create("/cycle")
        for generation in range(10):
            fs.write_file("/cycle", f"generation-{generation}".encode() * 150)
            fs.sync()
            if generation % 3 == 2:
                lld.write_checkpoint()
            lld2, _report = recover(
                disk.power_cycle(), checkpoint_slot_segments=1,
                clean_low_water=3,
            )
            lld = lld2
            fs = MinixFS.mount(lld)
            expected = f"generation-{generation}".encode()
            assert fs.read_file("/cycle").startswith(expected)
            assert fsck(fs).clean
            assert verify_lld(lld) == []


class TestManyARUs:
    def test_hundred_concurrent_arus(self):
        disk, lld = tight_lld(num_segments=64)
        lst = lld.new_list()
        arus = [lld.begin_aru() for _ in range(100)]
        blocks = {}
        for index, aru in enumerate(arus):
            block = lld.new_block(lst, aru=aru)
            lld.write(block, f"aru{index}".encode(), aru=aru)
            blocks[index] = block
        # Commit evens, abort odds.
        for index, aru in enumerate(arus):
            if index % 2 == 0:
                lld.end_aru(aru)
            else:
                lld.abort_aru(aru)
        lld.flush()
        orphans = lld.sweep_orphan_blocks()
        assert len(orphans) == 50
        members = lld.list_blocks(lst)
        assert len(members) == 50
        for index in range(0, 100, 2):
            assert lld.read(blocks[index]).startswith(f"aru{index}".encode())
        assert verify_lld(lld) == []
