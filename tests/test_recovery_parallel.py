"""Differential test: the batched/parallel recovery scan must rebuild
byte-identical logical-disk state to the serial fallback.

Recovery performs no disk writes, so the same crashed platter can be
recovered repeatedly; we recover it once with each scan and compare
the serialized persistent state, the rebuilt usage table, and the
report's classification counters at every crash point of a canonical
meta-data-heavy workload (whole-write drops and torn writes alike).
"""

import pytest

from repro.disk.faults import CrashPlan, FaultInjector, MediaFault
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskCrashedError
from repro.fs import MinixFS
from repro.lld.lld import LLD
from repro.lld.recovery import recover


def build(injector=None, num_segments=96):
    geo = DiskGeometry.small(num_segments=num_segments)
    disk = SimulatedDisk(geo, injector=injector)
    return disk, LLD(disk, checkpoint_slot_segments=2)


def workload(fs):
    for index in range(60):
        path = f"/f{index}"
        fs.create(path)
        fs.write_file(path, f"payload-{index}".encode() * (index % 4 + 1))
        if index % 4 == 1:
            fs.rename(path, f"/r{index}")
        if index % 5 == 2:
            try:
                fs.unlink(f"/f{index - 1}")
            except Exception:
                pass
        if index % 3 == 0:
            fs.sync()
    fs.sync()


def state_fingerprint(lld, report):
    """Everything recovery rebuilds, in comparable form."""
    return {
        "checkpoint": lld.checkpoints._serialize(lld._snapshot_checkpoint()),
        "free_count": lld.usage.free_count,
        "dirty": sorted(lld.usage.dirty_segments()),
        "buffer_segment": (
            lld._buffer.segment_no if lld._buffer is not None else None
        ),
        "next_block": lld._next_block_id,
        "next_list": lld._next_list_id,
        "next_seq": lld._next_seq,
        "commit_on_disk": set(lld._commit_on_disk),
        "report": (
            report.checkpoint_seq,
            report.segments_scanned,
            report.segments_replayed,
            report.segments_invalid,
            report.segments_unreadable,
            report.entries_replayed,
            report.entries_discarded,
            report.replay_conflicts,
            report.arus_committed,
            report.arus_discarded,
            tuple(report.discarded_aru_ids),
            tuple(report.orphan_blocks_freed),
        ),
    }


def assert_equivalent(disk):
    """Recover twice (serial, parallel) and compare the rebuilt state."""
    serial_lld, serial_report = recover(
        disk.power_cycle(), parallel=False, checkpoint_slot_segments=2
    )
    parallel_lld, parallel_report = recover(
        disk.power_cycle(), parallel=True, checkpoint_slot_segments=2
    )
    assert parallel_report.parallel and not serial_report.parallel
    serial_state = state_fingerprint(serial_lld, serial_report)
    parallel_state = state_fingerprint(parallel_lld, parallel_report)
    assert parallel_state == serial_state
    return serial_lld, parallel_lld


def total_writes():
    disk, ld = build()
    fs = MinixFS.mkfs(ld, n_inodes=256)
    workload(fs)
    return disk.write_count


class TestParallelSerialEquivalence:
    def test_clean_shutdown(self):
        disk, ld = build()
        fs = MinixFS.mkfs(ld, n_inodes=256)
        workload(fs)
        assert_equivalent(disk)

    @pytest.mark.parametrize("torn", [False, True])
    def test_every_crash_point(self, torn):
        limit = total_writes()
        assert limit > 10, "workload too small to be interesting"
        for crash_after in range(1, limit + 1):
            injector = FaultInjector(
                CrashPlan(after_writes=crash_after, torn=torn, seed=crash_after)
            )
            disk, ld = build(injector=injector)
            fs = MinixFS.mkfs(ld, n_inodes=256)
            try:
                workload(fs)
                continue  # the budget outlived the workload
            except DiskCrashedError:
                pass
            assert_equivalent(disk)

    def test_media_faulted_segments_classified_identically(self):
        disk, ld = build()
        fs = MinixFS.mkfs(ld, n_inodes=256)
        workload(fs)
        # Knock out a few written segments behind recovery's back.
        written = sorted(
            seg for seg in disk._segments if seg >= ld.checkpoints.reserved_segments
        )
        for seg in written[-3:]:
            disk.injector.add_media_fault(
                MediaFault(segment_no=seg, kind="unreadable")
            )
        disk.injector.add_media_fault(
            MediaFault(segment_no=written[len(written) // 2], kind="corrupt")
        )
        serial_lld, _ = assert_equivalent(disk)
        assert serial_lld is not None

    def test_parallel_data_readable(self):
        disk, ld = build()
        fs = MinixFS.mkfs(ld, n_inodes=256)
        workload(fs)
        _serial, parallel_lld = assert_equivalent(disk)
        mounted = MinixFS.mount(parallel_lld)
        for name in mounted.listdir("/"):
            mounted.read_file(f"/{name}")

    def test_worker_count_does_not_change_state(self):
        disk, ld = build()
        fs = MinixFS.mkfs(ld, n_inodes=256)
        workload(fs)
        states = []
        for workers in (1, 2, 8):
            lld, report = recover(
                disk.power_cycle(),
                parallel=True,
                workers=workers,
                checkpoint_slot_segments=2,
            )
            states.append(state_fingerprint(lld, report))
        assert states[0] == states[1] == states[2]

    def test_invalid_workers_rejected(self):
        disk, ld = build()
        ld.flush()
        with pytest.raises(ValueError):
            recover(disk.power_cycle(), workers=0)
