"""Crash-consistency tests for MinixLLD: the "no fsck" property.

The paper's claim (Section 5.1): after a failure, all or none of the
Minix meta-data describing each file is persistent, so no fsck pass
is needed — LD recovery alone restores a consistent file system.
These tests crash the system at systematically chosen write counts
and verify that claim with the (deliberately redundant) checker.
"""

import pytest

from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskCrashedError
from repro.fs import MinixFS, fsck
from repro.lld.lld import LLD
from repro.lld.recovery import recover


def crashy_fs(after_writes, torn=False, seed=0, num_segments=96):
    geo = DiskGeometry.small(num_segments=num_segments)
    injector = FaultInjector(
        CrashPlan(after_writes=after_writes, torn=torn, seed=seed)
    )
    disk = SimulatedDisk(geo, injector=injector)
    lld = LLD(disk, checkpoint_slot_segments=2)
    return disk, MinixFS.mkfs(lld, n_inodes=256)


def recover_and_mount(disk):
    lld, report = recover(disk.power_cycle(), checkpoint_slot_segments=2)
    return MinixFS.mount(lld), report


def churn(fs, rounds, prefix="f"):
    """A create/write/delete workload that keeps hitting the disk."""
    for index in range(rounds):
        path = f"/{prefix}{index}"
        fs.create(path)
        fs.write_file(path, f"contents-{index}".encode() * 50)
        if index % 3 == 2:
            fs.unlink(f"/{prefix}{index - 1}")
        fs.sync()


class TestCrashConsistency:
    @pytest.mark.parametrize("crash_after", [1, 2, 3, 5, 8, 13, 21])
    def test_fsck_clean_after_any_crash_point(self, crash_after):
        disk, fs = crashy_fs(after_writes=crash_after)
        with pytest.raises(DiskCrashedError):
            churn(fs, rounds=200)
        mounted, _report = recover_and_mount(disk)
        report = fsck(mounted)
        assert report.clean, [str(p) for p in report.problems]

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_fsck_clean_after_torn_crash(self, seed):
        disk, fs = crashy_fs(after_writes=4, torn=True, seed=seed)
        with pytest.raises(DiskCrashedError):
            churn(fs, rounds=200)
        mounted, _report = recover_and_mount(disk)
        report = fsck(mounted)
        assert report.clean, [str(p) for p in report.problems]

    def test_files_created_before_sync_survive_whole(self):
        disk, fs = crashy_fs(after_writes=10_000)  # never crashes
        for index in range(20):
            fs.create(f"/keep{index}")
            fs.write_file(f"/keep{index}", b"K" * 500)
        fs.sync()
        # Unsynced extra work that will be lost.
        fs.create("/lost")
        fs.write_file("/lost", b"L")
        mounted, _report = recover_and_mount(disk)
        for index in range(20):
            assert mounted.read_file(f"/keep{index}") == b"K" * 500
        assert not mounted.exists("/lost")
        assert fsck(mounted).clean

    def test_unlink_is_atomic(self):
        """A file is never half-deleted: either still fully present
        or fully gone."""
        disk, fs = crashy_fs(after_writes=6)
        fs.create("/victim")
        fs.write_file("/victim", b"V" * 9000)
        fs.sync()
        with pytest.raises(DiskCrashedError):
            while True:
                if fs.exists("/victim"):
                    fs.unlink("/victim")
                else:
                    fs.create("/victim")
                    fs.write_file("/victim", b"V" * 9000)
                fs.sync()
        mounted, _report = recover_and_mount(disk)
        if mounted.exists("/victim"):
            assert mounted.read_file("/victim") == b"V" * 9000
        assert fsck(mounted).clean

    def test_mkdir_rename_crash_consistency(self):
        disk, fs = crashy_fs(after_writes=7)
        with pytest.raises(DiskCrashedError):
            index = 0
            while True:
                fs.mkdir(f"/dir{index}")
                fs.create(f"/dir{index}/inner")
                fs.rename(f"/dir{index}/inner", f"/dir{index}/renamed")
                fs.sync()
                index += 1
        mounted, _report = recover_and_mount(disk)
        report = fsck(mounted)
        assert report.clean, [str(p) for p in report.problems]
        # Every surviving directory has the renamed file, not the
        # original: rename was atomic.
        for name in mounted.listdir("/"):
            entries = mounted.listdir(f"/{name}")
            assert entries in ([], ["renamed"]), entries

    def test_remount_after_double_crash(self):
        disk, fs = crashy_fs(after_writes=5)
        with pytest.raises(DiskCrashedError):
            churn(fs, rounds=100)
        mounted, _report = recover_and_mount(disk)
        assert fsck(mounted).clean
        # Continue working, then crash again via a new plan.
        disk.injector.crash_plan = CrashPlan(after_writes=3)
        disk.injector.writes_seen = 0
        with pytest.raises(DiskCrashedError):
            churn(mounted, rounds=100, prefix="g")
        mounted2, _report = recover_and_mount(disk)
        assert fsck(mounted2).clean


class TestOldVariantLosesAtomicity:
    def test_old_minix_can_be_left_inconsistent(self):
        """Motivation check: without ARUs, a crash between the i-node
        write and the directory write leaves inconsistent meta-data
        (an orphan i-node) — exactly what the paper's design
        eliminates.

        The exposure requires a create's two meta-data writes to
        straddle a segment boundary (within one segment the write is
        atomic anyway), so we pad the segment buffer to every
        possible fill level and require that at least one level
        leaves fsck unhappy after the crash."""
        found_inconsistency = False
        for pad_blocks in range(0, 16):
            geo = DiskGeometry.small(num_segments=96)
            disk = SimulatedDisk(geo)
            lld = LLD(disk, aru_mode="sequential", checkpoint_slot_segments=2)
            fs = MinixFS.mkfs(lld, n_inodes=256, use_arus=False)
            fs.create("/pad")
            fs.sync()
            if pad_blocks:
                # Data-only writes (the i-node update is deferred in
                # core), so the buffer fills without holding the
                # i-node or directory blocks.
                fs.write_file("/pad", b"p" * (pad_blocks * fs.block_size))
            # The victim create's i-node write may now trigger a
            # segment write, leaving the dirent write unflushed.
            fs.create("/victim")
            # Power off without syncing: only auto-written segments
            # survive.
            lld2, _report = recover(
                disk.power_cycle(),
                aru_mode="sequential",
                checkpoint_slot_segments=2,
            )
            mounted = MinixFS.mount(lld2, use_arus=False)
            if not fsck(mounted).clean:
                found_inconsistency = True
                break
        assert found_inconsistency, (
            "expected some segment-boundary crash point to leave the "
            "no-ARU file system inconsistent"
        )
