"""repro — Atomic Recovery Units for Logical Disks (ICDCS 1996).

A faithful reproduction of Grimm, Hsieh, Kaashoek and de Jonge,
*"Atomic Recovery Units: Failure Atomicity for Logical Disks"*:

* :mod:`repro.ld` — the Logical Disk interface (blocks, lists, ARUs),
* :mod:`repro.lld` — the log-structured LD with concurrent ARUs
  ("new") and the sequential baseline ("old"), plus crash recovery
  and a segment cleaner,
* :mod:`repro.core` — the shadow/committed/persistent version
  machinery and the list-operation log,
* :mod:`repro.disk` — the simulated disk, clock and cost models that
  substitute for the paper's SPARC-5 + HP C3010 testbed,
* :mod:`repro.fs` — a Minix-style file system client whose create
  and delete paths run inside ARUs (MinixLLD),
* :mod:`repro.txn` — durable, isolated transactions layered on ARUs,
* :mod:`repro.workloads` / :mod:`repro.harness` — the paper's
  benchmarks and the experiment harness.

Quickstart::

    from repro import make_system

    sys = make_system(num_segments=64)
    ld = sys.ld
    aru = ld.begin_aru()
    lst = ld.new_list(aru=aru)
    blk = ld.new_block(lst, aru=aru)
    ld.write(blk, b"hello, failure atomicity", aru=aru)
    ld.end_aru(aru)
    ld.flush()
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.visibility import Visibility
from repro.disk.clock import CostModel, SimClock
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.disk.timing import DiskModel, HP_C3010
from repro.errors import LDError
from repro.ld.interface import LogicalDisk
from repro.ld.types import ARUId, BlockId, FIRST, ListId
from repro.jld.jld import JLD, recover_jld
from repro.lld.config import LLDConfig
from repro.lld.lld import LLD
from repro.lld.recovery import RecoveryReport
from repro.recovery import recover
from repro.shard.config import ArrayConfig
from repro.shard.recovery import ShardRecoveryReport

__version__ = "1.0.0"

__all__ = [
    "ARUId",
    "ArrayConfig",
    "BlockId",
    "CostModel",
    "DiskGeometry",
    "DiskModel",
    "FIRST",
    "HP_C3010",
    "JLD",
    "LDError",
    "LLD",
    "LLDConfig",
    "ListId",
    "LogicalDisk",
    "RecoveryReport",
    "ShardRecoveryReport",
    "SimClock",
    "SimulatedDisk",
    "System",
    "Visibility",
    "make_system",
    "recover",
    "recover_jld",
]


@dataclasses.dataclass
class System:
    """A bundled simulated machine: disk + logical disk."""

    disk: SimulatedDisk
    ld: LogicalDisk

    @property
    def clock(self) -> SimClock:
        """The shared simulated clock."""
        return self.disk.clock


def make_system(
    num_segments: int = 128,
    block_size: int = 4096,
    segment_size: Optional[int] = None,
    substrate: str = "lld",
    aru_mode: str = "concurrent",
    visibility: Visibility = Visibility.ARU_LOCAL,
    cost_model: Optional[CostModel] = None,
    disk_model: DiskModel = HP_C3010,
    **ld_kwargs,
) -> System:
    """Build a ready-to-use simulated disk + logical-disk pair.

    The defaults give a small, fast log-structured system for
    experimentation; pass ``num_segments=800, segment_size=512 * 1024``
    for the paper's 400 MB partition, or ``substrate="jld"`` for the
    journaling implementation (concurrent-only).
    """
    geometry = DiskGeometry(
        block_size=block_size,
        segment_size=segment_size if segment_size is not None else 32 * block_size,
        num_segments=num_segments,
    )
    disk = SimulatedDisk(geometry, model=disk_model)
    if substrate == "lld":
        ld: LogicalDisk = LLD(
            disk,
            cost_model=cost_model,
            aru_mode=aru_mode,
            visibility=visibility,
            **ld_kwargs,
        )
    elif substrate == "jld":
        if aru_mode != "concurrent":
            raise ValueError("JLD supports only concurrent ARUs")
        ld = JLD(
            disk,
            cost_model=cost_model,
            visibility=visibility,
            **ld_kwargs,
        )
    else:
        raise ValueError(f"unknown substrate {substrate!r}")
    return System(disk=disk, ld=ld)
