"""Sharded multi-volume logical disks.

:class:`ShardedLLD` stripes logical block and list identifiers across
N independent :class:`~repro.lld.lld.LLD` volumes (each with its own
simulated disk, clock, cleaner, write-behind queue and metrics
registry) behind the ordinary :class:`~repro.ld.interface.LogicalDisk`
API, keeping ``begin_aru``/``end_aru`` failure-atomic *across* the
volumes via a two-phase coordinator commit on shard 0.
:func:`recover_sharded` scans every shard in parallel and rolls each
shard's prepared state forward or discards it according to the
coordinator's decisions.  See ``docs/SHARDING.md``.
"""

from repro.shard.recovery import ShardRecoveryReport, recover_sharded
from repro.shard.sharded import (
    ShardedLLD,
    build_sharded,
    shard_of,
    to_global,
    to_local,
)

__all__ = [
    "ShardedLLD",
    "ShardRecoveryReport",
    "build_sharded",
    "recover_sharded",
    "shard_of",
    "to_global",
    "to_local",
]
