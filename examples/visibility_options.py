#!/usr/bin/env python3
"""The three read-visibility options of Section 3.3, side by side.

The semantics of Read determine how isolated concurrent ARUs are:

  option 1  MOST_RECENT_SHADOW  every update visible to everyone
  option 2  COMMITTED_ONLY      updates visible only after commit
  option 3  ARU_LOCAL           your shadow is yours alone (the
                                paper's choice, and the default)

Run:  python examples/visibility_options.py
"""

from repro import Visibility, make_system


def show(policy: Visibility) -> None:
    system = make_system(num_segments=64, visibility=policy,
                         checkpoint_slot_segments=2)
    ld = system.ld
    lst = ld.new_list()
    block = ld.new_block(lst)
    ld.write(block, b"committed-v0")

    writer = ld.begin_aru()
    bystander = ld.begin_aru()
    ld.write(block, b"writer-shadow", aru=writer)

    def peek(aru=None) -> str:
        return ld.read(block, aru=aru).rstrip(b"\x00").decode()

    print(f"\n=== {policy.name} (option {policy.value}) ===")
    print(f"  writer's own read : {peek(writer)}")
    print(f"  another ARU reads : {peek(bystander)}")
    print(f"  simple read       : {peek()}")
    ld.end_aru(writer)
    print(f"  ... after commit  : {peek()}")
    ld.abort_aru(bystander)


def main() -> None:
    print("one block, committed as 'committed-v0'; an ARU then writes")
    print("'writer-shadow' without committing.  Who sees what?")
    for policy in (
        Visibility.MOST_RECENT_SHADOW,
        Visibility.COMMITTED_ONLY,
        Visibility.ARU_LOCAL,
    ):
        show(policy)
    print(
        "\nOption 3 keeps every ARU's shadow state private until its\n"
        "atomic publication at EndARU — the semantics the paper chose\n"
        "and evaluated."
    )


if __name__ == "__main__":
    main()
