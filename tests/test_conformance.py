"""Logical-Disk interface conformance suite.

One set of semantic requirements, executed against every
implementation (LLD concurrent, JLD).  Anything added here is
automatically enforced on both substrates; the sequential-ARU LLD is
excluded because concurrency semantics differ by design (it has its
own tests).
"""

import pytest

from repro.core.visibility import Visibility
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import (
    BadARUError,
    BadBlockError,
    BadListError,
    ConcurrencyError,
)
from repro.jld import JLD
from repro.ld.types import FIRST
from repro.lld.lld import LLD


def _lld(**kwargs):
    geo = DiskGeometry.small(num_segments=96)
    kwargs.setdefault("checkpoint_slot_segments", 2)
    return LLD(SimulatedDisk(geo), **kwargs)


def _jld(**kwargs):
    geo = DiskGeometry.small(num_segments=96)
    kwargs.setdefault("checkpoint_slot_segments", 2)
    kwargs.setdefault("journal_segments", 6)
    return JLD(SimulatedDisk(geo), **kwargs)


@pytest.fixture(params=["lld", "jld"])
def make(request):
    return {"lld": _lld, "jld": _jld}[request.param]


class TestBlockSemantics:
    def test_fresh_blocks_read_zero(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        assert ld.read(block) == b"\x00" * ld.geometry.block_size

    def test_write_is_padded(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"ab")
        data = ld.read(block)
        assert data[:2] == b"ab" and set(data[2:]) == {0}

    def test_last_write_wins(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        for value in (b"v1", b"v2", b"v3"):
            ld.write(block, value)
        assert ld.read(block).startswith(b"v3")

    def test_identifiers_start_at_one_and_increase(self, make):
        ld = make()
        lst = ld.new_list()
        assert int(lst) == 1
        a = ld.new_block(lst)
        b = ld.new_block(lst)
        assert int(a) == 1 and int(b) == 2

    def test_identifiers_never_reused(self, make):
        ld = make()
        lst = ld.new_list()
        a = ld.new_block(lst)
        ld.delete_block(a)
        assert ld.new_block(lst) != a

    def test_errors_on_unknown_ids(self, make):
        ld = make()
        with pytest.raises(BadBlockError):
            ld.read(404)
        with pytest.raises(BadListError):
            ld.list_blocks(404)
        with pytest.raises(BadListError):
            ld.new_block(404)
        with pytest.raises(BadARUError):
            ld.end_aru(404)


class TestListSemantics:
    def test_insertion_positions(self, make):
        ld = make()
        lst = ld.new_list()
        a = ld.new_block(lst)                      # [a]
        b = ld.new_block(lst, predecessor=a)       # [a, b]
        c = ld.new_block(lst)                      # [c, a, b]
        d = ld.new_block(lst, predecessor=a)       # [c, a, d, b]
        assert ld.list_blocks(lst) == [c, a, d, b]

    def test_predecessor_must_belong_to_list(self, make):
        ld = make()
        one = ld.new_list()
        two = ld.new_list()
        block = ld.new_block(one)
        with pytest.raises(BadBlockError):
            ld.new_block(two, predecessor=block)

    def test_delete_middle_relinks(self, make):
        ld = make()
        lst = ld.new_list()
        a = ld.new_block(lst)
        b = ld.new_block(lst, predecessor=a)
        c = ld.new_block(lst, predecessor=b)
        ld.delete_block(b)
        assert ld.list_blocks(lst) == [a, c]
        d = ld.new_block(lst, predecessor=a)
        assert ld.list_blocks(lst) == [a, d, c]

    def test_delete_list_removes_members(self, make):
        ld = make()
        lst = ld.new_list()
        members = [ld.new_block(lst) for _ in range(4)]
        ld.delete_list(lst)
        for block in members:
            with pytest.raises(BadBlockError):
                ld.read(block)


class TestARUConformance:
    def test_option3_visibility_matrix(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"committed")
        writer = ld.begin_aru()
        observer = ld.begin_aru()
        ld.write(block, b"mine", aru=writer)
        assert ld.read(block, aru=writer).startswith(b"mine")
        assert ld.read(block, aru=observer).startswith(b"committed")
        assert ld.read(block).startswith(b"committed")
        ld.end_aru(writer)
        assert ld.read(block, aru=observer).startswith(b"mine")
        ld.abort_aru(observer)

    def test_structural_shadowing(self, make):
        ld = make()
        lst = ld.new_list()
        base = ld.new_block(lst)
        aru = ld.begin_aru()
        extra = ld.new_block(lst, predecessor=base, aru=aru)
        ld.delete_block(base, aru=aru)
        assert ld.list_blocks(lst, aru=aru) == [extra]
        assert ld.list_blocks(lst) == [base]
        ld.end_aru(aru)
        assert ld.list_blocks(lst) == [extra]

    def test_abort_restores_everything(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"original")
        aru = ld.begin_aru()
        ld.write(block, b"mutant", aru=aru)
        extra = ld.new_block(lst, aru=aru)
        ld.delete_block(block, aru=aru)
        ld.abort_aru(aru)
        assert ld.read(block).startswith(b"original")
        assert ld.list_blocks(lst) == [block]
        # The aborted ARU's allocation lingers until swept.
        assert extra in ld.sweep_orphan_blocks()

    def test_commit_order_is_end_aru_order(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        first = ld.begin_aru()
        second = ld.begin_aru()
        ld.write(block, b"from-first", aru=first)
        ld.write(block, b"from-second", aru=second)
        ld.end_aru(second)
        ld.end_aru(first)
        assert ld.read(block).startswith(b"from-first")

    def test_operations_on_finished_aru_rejected(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        aru = ld.begin_aru()
        ld.end_aru(aru)
        with pytest.raises(BadARUError):
            ld.write(block, b"late", aru=aru)
        with pytest.raises(BadARUError):
            ld.end_aru(aru)

    def test_conflicting_structural_commits_surface(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        a = ld.begin_aru()
        b = ld.begin_aru()
        ld.delete_block(block, aru=a)
        ld.delete_block(block, aru=b)
        ld.end_aru(a)
        with pytest.raises(ConcurrencyError):
            ld.end_aru(b)

    def test_deep_interleaving(self, make):
        ld = make()
        lst = ld.new_list()
        arus = [ld.begin_aru() for _ in range(6)]
        blocks = []
        for index, aru in enumerate(arus):
            block = ld.new_block(lst, aru=aru)
            ld.write(block, f"stream-{index}".encode(), aru=aru)
            blocks.append(block)
        for index in (1, 3, 5):
            ld.abort_aru(arus[index])
        for index in (0, 2, 4):
            ld.end_aru(arus[index])
        ld.flush()
        members = ld.list_blocks(lst)
        assert set(members) == {blocks[0], blocks[2], blocks[4]}
        for index in (0, 2, 4):
            assert ld.read(blocks[index]).startswith(
                f"stream-{index}".encode()
            )


class TestDurabilityConformance:
    def _recover(self, kind, disk):
        if kind == "lld":
            from repro.lld.recovery import recover

            ld, _ = recover(disk.power_cycle(), checkpoint_slot_segments=2)
        else:
            from repro.jld import recover_jld

            ld, _ = recover_jld(
                disk.power_cycle(),
                journal_segments=6,
                checkpoint_slot_segments=2,
            )
        return ld

    @pytest.mark.parametrize("kind", ["lld", "jld"])
    def test_flush_is_a_durability_barrier(self, kind):
        ld = {"lld": _lld, "jld": _jld}[kind]()
        disk = ld.disk
        lst = ld.new_list()
        durable = ld.new_block(lst)
        ld.write(durable, b"durable")
        ld.flush()
        volatile = ld.new_block(lst, predecessor=durable)
        ld.write(volatile, b"volatile")  # never flushed
        recovered = self._recover(kind, disk)
        assert recovered.read(durable).startswith(b"durable")
        members = recovered.list_blocks(lst)
        assert members[0] == durable

    @pytest.mark.parametrize("kind", ["lld", "jld"])
    def test_commit_without_flush_is_not_durable_by_itself(self, kind):
        ld = {"lld": _lld, "jld": _jld}[kind]()
        disk = ld.disk
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"base")
        ld.flush()
        aru = ld.begin_aru()
        ld.write(block, b"committed-in-memory", aru=aru)
        ld.end_aru(aru)  # commit record still in the buffer
        recovered = self._recover(kind, disk)
        assert recovered.read(block).startswith(b"base")


class TestEdgeConformance:
    """Corner semantics both implementations must share."""

    def test_empty_write_and_full_block_write(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"")
        assert ld.read(block) == b"\x00" * ld.geometry.block_size
        full = bytes(range(256)) * (ld.geometry.block_size // 256)
        ld.write(block, full)
        assert ld.read(block) == full

    def test_oversized_write_rejected(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        with pytest.raises(ValueError):
            ld.write(block, b"x" * (ld.geometry.block_size + 1))

    def test_delete_list_inside_aru_is_shadowed(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"content")
        aru = ld.begin_aru()
        ld.delete_list(lst, aru=aru)
        with pytest.raises(BadListError):
            ld.list_blocks(lst, aru=aru)
        # Outside the ARU the list is intact until commit.
        assert ld.list_blocks(lst) == [block]
        assert ld.read(block).startswith(b"content")
        ld.end_aru(aru)
        with pytest.raises(BadListError):
            ld.list_blocks(lst)
        with pytest.raises(BadBlockError):
            ld.read(block)

    def test_new_list_inside_aru_is_globally_visible(self, make):
        """List allocation commits immediately: other streams can see
        the (empty) list at once."""
        ld = make()
        aru = ld.begin_aru()
        lst = ld.new_list(aru=aru)
        assert ld.list_blocks(lst) == []
        ld.end_aru(aru)

    def test_flush_is_idempotent(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"once")
        ld.flush()
        ld.flush()
        ld.flush()
        assert ld.read(block).startswith(b"once")

    def test_interleaved_list_edits_from_two_arus(self, make):
        """Two ARUs append to the same list; both commits merge (the
        list-operation replay's whole purpose)."""
        ld = make()
        lst = ld.new_list()
        anchor = ld.new_block(lst)
        a = ld.begin_aru()
        b = ld.begin_aru()
        from_a = ld.new_block(lst, predecessor=anchor, aru=a)
        from_b = ld.new_block(lst, predecessor=anchor, aru=b)
        ld.end_aru(a)
        ld.end_aru(b)
        members = ld.list_blocks(lst)
        assert members[0] == anchor
        assert set(members[1:]) == {from_a, from_b}
        # b committed later, so its insert-after-anchor lands closest.
        assert members[1] == from_b

    def test_write_then_delete_then_fresh_alloc_in_one_aru(self, make):
        ld = make()
        lst = ld.new_list()
        aru = ld.begin_aru()
        doomed = ld.new_block(lst, aru=aru)
        ld.write(doomed, b"never seen", aru=aru)
        ld.delete_block(doomed, aru=aru)
        keeper = ld.new_block(lst, aru=aru)
        ld.write(keeper, b"kept", aru=aru)
        ld.end_aru(aru)
        assert ld.list_blocks(lst) == [keeper]
        assert ld.read(keeper).startswith(b"kept")
        with pytest.raises(BadBlockError):
            ld.read(doomed)

    def test_sweep_refused_with_active_arus(self, make):
        ld = make()
        ld.begin_aru()
        with pytest.raises(ConcurrencyError):
            ld.sweep_orphan_blocks()

    def test_stats_have_common_fields(self, make):
        ld = make()
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"s")
        ld.flush()
        stats = ld.stats()
        assert stats["ops"]["write"] == 1
        assert "disk" in stats
