"""Open-loop, arrival-rate-driven transactional workload.

The other workloads in this package are **closed-loop**: each
operation starts when the previous one finishes, so the system under
test sets its own pace and saturation is invisible (`postmark.py`
measures throughput, never backlog).  An open-loop generator instead
fixes an *offered* arrival rate in host wall-clock time and submits a
transaction at every arrival whether or not earlier ones finished.
When the front end saturates, arrivals are shed by admission control
and counted — offered load beyond capacity becomes a measured
quantity instead of a stalled generator.

Workload shape: ``n_tenants`` tenants, each owning a private list of
blocks on its home shard.  Every request is one transaction that
reads and rewrites a few of its tenant's blocks; a ``hot_fraction``
of requests also read-modify-write one globally shared *hot* block,
which manufactures genuine cross-tenant (and cross-lane) lock
conflicts — the contention that exercises wait-die, timestamp
inheritance and the lock-leak fixes under fire.

Deterministic given the seed **in structure** (which tenant, which
blocks, what payload); arrival timing is host wall-clock and shed
counts depend on host speed, which is the nature of an open-loop rig.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Callable, Dict, List, Optional

from repro.frontend.scheduler import FrontEnd
from repro.ld.types import BlockId


@dataclasses.dataclass
class TenantState:
    """One tenant's provisioned blocks and home placement."""

    name: str
    list_id: int
    blocks: List[BlockId]
    shard: int


@dataclasses.dataclass
class OpenLoopConfig:
    """Shape and rate of one open-loop run."""

    rate: float = 500.0            # offered arrivals per wall second
    n_requests: int = 500          # total arrivals
    n_tenants: int = 16
    blocks_per_tenant: int = 4
    touches_per_request: int = 2   # tenant blocks rewritten per txn
    hot_fraction: float = 0.1      # also hit the shared hot block
    read_fraction: float = 0.25    # pure-read requests
    payload: int = 64
    seed: int = 2026
    pace: bool = True              # False: fire arrivals immediately

    def validate(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        if not 1 <= self.touches_per_request <= self.blocks_per_tenant:
            raise ValueError("touches_per_request out of range")


@dataclasses.dataclass
class OpenLoopResult:
    """What one run offered and what the system did with it."""

    offered: int
    offered_rate: float
    admitted: int
    shed: int
    completed: int
    gave_up: int
    failed: int
    wall_s: float
    achieved_tps: float            # completed per wall second
    hot_value: int                 # final shared-counter value
    frontend: dict                 # FrontEnd.stats() at quiesce


def provision_tenants(
    ld, n_tenants: int, blocks_per_tenant: int, payload: int = 64
) -> Dict[str, TenantState]:
    """Create each tenant's list and blocks (outside any contention).

    The home shard is wherever the volume's round-robin allocator
    placed the tenant's list, so a tenant's private traffic is wholly
    local to one lane.
    """
    from repro.shard.sharded import shard_of

    n_shards = getattr(ld, "n", 1)
    tenants: Dict[str, TenantState] = {}
    for index in range(n_tenants):
        name = f"tenant{index}"
        lst = ld.new_list()
        blocks = [ld.new_block(lst) for _ in range(blocks_per_tenant)]
        for block in blocks:
            ld.write(block, b"\0" * payload)
        tenants[name] = TenantState(
            name=name,
            list_id=int(lst),
            blocks=blocks,
            shard=shard_of(lst, n_shards) if n_shards > 1 else 0,
        )
    ld.flush()
    return tenants


def provision_hot_block(ld, payload: int = 64) -> BlockId:
    """The shared read-modify-write counter every tenant fights over."""
    lst = ld.new_list()
    block = ld.new_block(lst)
    ld.write(block, (0).to_bytes(8, "little").ljust(payload, b"\0"))
    ld.flush()
    return block


def _make_body(
    tenant: TenantState,
    hot_block: Optional[BlockId],
    rng: random.Random,
    config: OpenLoopConfig,
    stamp: int,
) -> Callable:
    """Build one request's transaction body (pure closure: the body
    may run several times under wait-die retries, so it derives
    everything from its captured arguments)."""
    touched = rng.sample(tenant.blocks, config.touches_per_request)
    is_read = rng.random() < config.read_fraction
    hit_hot = hot_block is not None and rng.random() < config.hot_fraction
    fill = bytes([stamp & 0xFF]) * config.payload

    def body(txn):
        total = 0
        for block in touched:
            data = txn.read(block)
            total += data[0] if data else 0
            if not is_read:
                txn.write(block, fill)
        if hit_hot:
            # Cross-tenant conflict point: exclusive via upgrade.
            counter = int.from_bytes(txn.read(hot_block)[:8], "little")
            txn.write(
                hot_block,
                (counter + 1)
                .to_bytes(8, "little")
                .ljust(config.payload, b"\0"),
            )
        return total

    return body


def run_openloop(
    frontend: FrontEnd,
    tenants: Dict[str, TenantState],
    config: OpenLoopConfig,
    hot_block: Optional[BlockId] = None,
) -> OpenLoopResult:
    """Offer ``n_requests`` arrivals at ``rate`` and drain.

    Arrivals follow a uniform schedule (arrival *i* at ``i/rate``
    seconds); a generator running behind schedule fires immediately
    rather than stretching the experiment — bursts are part of the
    offered load.  Saturated arrivals are shed, not queued.
    """
    config.validate()
    rng = random.Random(config.seed)
    names = sorted(tenants)
    start = time.monotonic()
    interval = 1.0 / config.rate
    shed = 0
    handles = []
    for index in range(config.n_requests):
        if config.pace:
            due = start + index * interval
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        tenant = tenants[names[rng.randrange(len(names))]]
        body = _make_body(tenant, hot_block, rng, config, index)
        handle = frontend.try_submit(body, tenant.name, shard=tenant.shard)
        if handle is None:
            shed += 1
        else:
            handles.append(handle)
    frontend.drain()
    wall_s = time.monotonic() - start
    stats = frontend.stats()
    hot_value = 0
    if hot_block is not None:
        hot_value = int.from_bytes(
            frontend.ld.read(hot_block)[:8], "little"
        )
    completed = sum(1 for handle in handles if handle.state == "done")
    return OpenLoopResult(
        offered=config.n_requests,
        offered_rate=config.rate,
        admitted=len(handles),
        shed=shed,
        completed=completed,
        gave_up=sum(1 for h in handles if h.state == "gave_up"),
        failed=sum(1 for h in handles if h.state == "failed"),
        wall_s=wall_s,
        achieved_tps=completed / wall_s if wall_s else 0.0,
        hot_value=hot_value,
        frontend=stats,
    )
