"""Full transactions: ARUs + two-phase locking + flush-on-commit.

A :class:`Transaction` proxies the LD operations, acquiring the
appropriate lock before each access (shared for reads, exclusive for
writes and structural changes), executing the operation inside its
ARU, and — at commit — ending the ARU and flushing the disk so the
effects are durable.  Abort discards the ARU's shadow state and
releases the locks; because ARUs already isolate shadow state, abort
needs no undo log.

This is the paper's claim made concrete: "failure atomicity over
several disk operations is necessary to efficiently support
transaction-based systems as direct disk system clients."
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, TypeVar

from repro.errors import LockError, TransactionAborted
from repro.ld.interface import LogicalDisk
from repro.ld.types import ARUId, BlockId, FIRST, ListId, Predecessor
from repro.txn.locks import LockManager, LockMode

T = TypeVar("T")


class TxnBreakdown:
    """Where one request's wall-clock time went, across retries.

    The front end hands one instance per request to
    :func:`run_transaction` (or the async runner); every attempt's
    transaction accumulates into it, so at completion the request's
    service time decomposes into **lock wait** (inside
    :meth:`LockManager.acquire`), **storage** (inside the logical
    disk's operations, commit and flush included) and a scheduling/
    CPU remainder.  All values are host wall-clock microseconds — the
    same time base as the front end's service histograms, so the
    components of one request genuinely sum (the simulated-µs commit
    latency is a different, per-shard story).
    """

    __slots__ = ("lock_wait_us", "storage_us", "attempts")

    def __init__(self) -> None:
        self.lock_wait_us = 0.0
        self.storage_us = 0.0
        self.attempts = 0


class Transaction:
    """One ACID transaction over a logical disk.

    Obtain from :meth:`TransactionManager.begin`; use as a context
    manager (commits on clean exit, aborts on exception) or call
    :meth:`commit` / :meth:`abort` explicitly.
    """

    def __init__(
        self,
        manager: "TransactionManager",
        aru: ARUId,
        txn_id: int,
        durable: bool,
        timestamp: int,
        breakdown: Optional[TxnBreakdown] = None,
    ) -> None:
        self.manager = manager
        self.ld = manager.ld
        self.aru = aru
        self.txn_id = txn_id
        self.durable = durable
        #: Wait-die priority.  A retry of a died transaction carries
        #: the *original* timestamp forward (see ``run_transaction``),
        #: so a victim ages instead of starving.
        self.timestamp = timestamp
        self.state = "active"
        self.breakdown = breakdown
        if breakdown is not None:
            breakdown.attempts += 1

    # ------------------------------------------------------------------
    # Locking helpers
    # ------------------------------------------------------------------

    def _lock_block(self, block_id: BlockId, mode: LockMode) -> None:
        waited = self.manager.locks.acquire(
            self.txn_id, ("block", int(block_id)), mode
        )
        if self.breakdown is not None:
            self.breakdown.lock_wait_us += waited

    def _lock_list(self, list_id: ListId, mode: LockMode) -> None:
        waited = self.manager.locks.acquire(
            self.txn_id, ("list", int(list_id)), mode
        )
        if self.breakdown is not None:
            self.breakdown.lock_wait_us += waited

    def _ld_call(self, fn, *args, **kwargs):
        """Run one logical-disk operation, charging its wall time to
        the breakdown's storage component when one is attached."""
        if self.breakdown is None:
            return fn(*args, **kwargs)
        start = time.monotonic()
        try:
            return fn(*args, **kwargs)
        finally:
            self.breakdown.storage_us += (time.monotonic() - start) * 1e6

    def _check_active(self) -> None:
        if self.state != "active":
            raise TransactionAborted(
                f"transaction {self.txn_id} is {self.state}"
            )

    # ------------------------------------------------------------------
    # Proxied LD operations
    # ------------------------------------------------------------------

    def read(self, block_id: BlockId) -> bytes:
        """Read a block under a shared lock."""
        self._check_active()
        self._lock_block(block_id, LockMode.SHARED)
        return self._ld_call(self.ld.read, block_id, aru=self.aru)

    def write(self, block_id: BlockId, data: bytes) -> None:
        """Write a block under an exclusive lock."""
        self._check_active()
        self._lock_block(block_id, LockMode.EXCLUSIVE)
        self._ld_call(self.ld.write, block_id, data, aru=self.aru)

    def new_list(self) -> ListId:
        """Allocate a list (exclusively locked to this transaction)."""
        self._check_active()
        list_id = self._ld_call(self.ld.new_list, aru=self.aru)
        self._lock_list(list_id, LockMode.EXCLUSIVE)
        return list_id

    def delete_list(self, list_id: ListId) -> None:
        """Delete a list under an exclusive lock."""
        self._check_active()
        self._lock_list(list_id, LockMode.EXCLUSIVE)
        for block_id in self._ld_call(
            self.ld.list_blocks, list_id, aru=self.aru
        ):
            self._lock_block(block_id, LockMode.EXCLUSIVE)
        self._ld_call(self.ld.delete_list, list_id, aru=self.aru)

    def new_block(
        self, list_id: ListId, predecessor: Predecessor = FIRST
    ) -> BlockId:
        """Allocate a block in a list under an exclusive list lock."""
        self._check_active()
        self._lock_list(list_id, LockMode.EXCLUSIVE)
        block_id = self._ld_call(
            self.ld.new_block, list_id, predecessor, aru=self.aru
        )
        self._lock_block(block_id, LockMode.EXCLUSIVE)
        return block_id

    def delete_block(self, block_id: BlockId) -> None:
        """Delete a block under exclusive block and list locks."""
        self._check_active()
        self._lock_block(block_id, LockMode.EXCLUSIVE)
        self._ld_call(self.ld.delete_block, block_id, aru=self.aru)

    def list_blocks(self, list_id: ListId) -> List[BlockId]:
        """Enumerate a list under a shared lock."""
        self._check_active()
        self._lock_list(list_id, LockMode.SHARED)
        return self._ld_call(self.ld.list_blocks, list_id, aru=self.aru)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Commit: EndARU, then (optionally) flush for durability.

        A failing ``end_aru`` aborts the transaction (the ARU's
        shadow state is discarded best-effort) before re-raising; a
        failing ``flush`` leaves the ARU committed but still releases
        every lock and finishes the transaction (state ``"failed"``).
        Either way no lock — and no wait-die timestamp registration —
        outlives the attempt.
        """
        self._check_active()
        try:
            self._ld_call(self.ld.end_aru, self.aru)
        except BaseException:
            self._fail(discard_aru=True)
            raise
        try:
            if self.durable:
                self._ld_call(self.ld.flush)
        except BaseException:
            # The ARU is already committed (and durable at the next
            # successful flush); only the transaction bookkeeping and
            # its locks remain to clean up.
            self._fail(discard_aru=False)
            raise
        self.state = "committed"
        self.manager.locks.release_all(self.txn_id)
        self.manager._finished(self)

    def _fail(self, discard_aru: bool) -> None:
        """Tear down after a failed commit: best-effort ARU abort,
        unconditional lock release and manager bookkeeping."""
        self.state = "failed"
        try:
            if discard_aru:
                self.ld.abort_aru(self.aru)
        except Exception:
            # The primary error (about to be re-raised by commit) is
            # what the caller must see; a dead disk rejecting the
            # abort as well adds nothing.
            pass
        finally:
            self.manager.locks.release_all(self.txn_id)
            self.manager._finished(self)

    def abort(self) -> None:
        """Abort: discard the ARU's shadow state and release locks.

        Lock release and manager bookkeeping happen even when the
        disk rejects the ARU abort (e.g. the volume died mid-body) —
        leaking locks on the way out would wedge every other
        transaction until its timeout.
        """
        if self.state != "active":
            return
        self.state = "aborted"
        try:
            self.ld.abort_aru(self.aru)
        finally:
            self.manager.locks.release_all(self.txn_id)
            self.manager._finished(self)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False


class TransactionManager:
    """Creates transactions over one logical disk."""

    def __init__(self, ld: LogicalDisk, lock_timeout_s: float = 10.0) -> None:
        self.ld = ld
        self.locks = LockManager(timeout_s=lock_timeout_s)
        self._mutex = threading.Lock()
        self._next_txn = 1
        self.committed = 0
        self.aborted = 0

    def begin(
        self,
        durable: bool = True,
        timestamp: Optional[int] = None,
        breakdown: Optional[TxnBreakdown] = None,
    ) -> Transaction:
        """Start a transaction (an ARU plus a lock-owner identity).

        ``timestamp`` overrides the wait-die priority (default: the
        fresh transaction id).  Retry loops pass the died attempt's
        original timestamp so the victim gets relatively older each
        round instead of starting over as the youngest — the
        starvation-freedom half of the wait-die contract.

        ``breakdown`` attaches a :class:`TxnBreakdown` the transaction
        charges its lock waits and storage calls to.
        """
        with self._mutex:
            txn_id = self._next_txn
            self._next_txn += 1
        # The ARU begins before the owner registers: if the disk
        # rejects the ARU there must be nothing to unregister (a
        # stale _owner_ts entry is exactly the leak this layer
        # promises not to make).
        aru = self.ld.begin_aru()
        ts = txn_id if timestamp is None else timestamp
        self.locks.register(txn_id, ts)
        return Transaction(self, aru, txn_id, durable, ts, breakdown)

    def next_txn_id(self) -> int:
        """Allot the next transaction id (shared with the async
        path, so sync and async transactions draw wait-die ages from
        one ordered sequence)."""
        with self._mutex:
            txn_id = self._next_txn
            self._next_txn += 1
        return txn_id

    def _finished(self, txn: Transaction) -> None:
        with self._mutex:
            if txn.state == "committed":
                self.committed += 1
            else:
                self.aborted += 1

    def stats(self) -> dict:
        """Commit/abort totals plus the lock manager's counters and
        live table sizes (all table sizes 0 once quiesced)."""
        with self._mutex:
            totals = {
                "begun": self._next_txn - 1,
                "committed": self.committed,
                "aborted": self.aborted,
            }
        return {**totals, "locks": self.locks.snapshot()}


def run_batch(
    manager: TransactionManager,
    bodies,
    max_attempts: int = 10,
) -> list:
    """Group commit: run several transaction bodies, one flush.

    The related-work section of the paper credits FSD's group commit
    with amortizing the cost of forcing the log; ARUs compose the
    same way — each body commits its ARU without flushing, and a
    single flush at the end makes the whole batch durable together.

    Atomicity stays per-body: on the first failing body the batch
    stops, that body's transaction aborts, the flush still runs (so
    the already-committed bodies are durable), and the error is
    re-raised.

    Returns the list of body results, in order.
    """
    results = []
    try:
        for body in bodies:
            results.append(
                run_transaction(
                    manager, body, max_attempts=max_attempts, durable=False
                )
            )
    finally:
        manager.ld.flush()
    return results


def run_transaction(
    manager: TransactionManager,
    body: Callable[[Transaction], T],
    max_attempts: int = 10,
    durable: bool = True,
    retry_backoff_s: float = 0.001,
    breakdown: Optional[TxnBreakdown] = None,
) -> T:
    """Run ``body`` in a transaction, retrying on wait-die aborts.

    The retry contract (see ``docs/CONCURRENCY.md``):

    * Every retry reuses the **first attempt's timestamp**, so a
      wait-die victim ages relative to newly begun transactions and
      cannot starve.
    * :class:`~repro.errors.LockError` timeouts retry too — the lock
      manager documents them as a deadlock symptom, and under load a
      popular lock's wait can simply exceed one timeout budget.
      (:class:`~repro.errors.DeadlockError` is a ``LockError``
      subclass, so one handler covers both.)
    * Retries back off linearly (``retry_backoff_s`` × attempts so
      far, capped at 50 ms).  A death means an *older* transaction
      holds the conflict; retrying instantly just burns the attempt
      budget inside the same conflict window.  Pass 0 to disable
      (single-threaded tests don't need to sleep).
    * Any *other* exception — from the body or from the commit —
      aborts the transaction (releasing its locks and its timestamp
      registration) and propagates.  Nothing leaks on any path.
    """
    last_error: Optional[Exception] = None
    timestamp: Optional[int] = None
    for attempt in range(max_attempts):
        if attempt and retry_backoff_s > 0:
            time.sleep(min(retry_backoff_s * attempt, 0.05))
        txn = manager.begin(
            durable=durable, timestamp=timestamp, breakdown=breakdown
        )
        timestamp = txn.timestamp
        try:
            result = body(txn)
        except LockError as exc:
            txn.abort()
            last_error = exc
            continue
        except BaseException:
            try:
                txn.abort()
            except Exception:
                # The body's error is the story; a disk that also
                # rejects the abort must not displace it.  Locks are
                # already released (abort's finally ran).
                pass
            raise
        try:
            txn.commit()
        except LockError as exc:
            # commit() already tore the transaction down.
            last_error = exc
            continue
        return result
    raise TransactionAborted(
        f"transaction failed after {max_attempts} wait-die retries"
    ) from last_error
