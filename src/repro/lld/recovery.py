"""Crash recovery: rebuilding LLD's state from the disk.

Recovery is always to the most recent *persistent* version
(Section 3.1).  The procedure:

1. Load the newest valid checkpoint (or start from the empty state).
2. Scan every log segment; keep those whose trailer validates and
   whose sequence number exceeds the checkpoint's.  Torn or
   corrupted segments (interrupted writes, media faults) fail the
   CRC and are treated as free space.
3. First pass over the surviving summaries: collect the set of ARU
   identifiers with a flushed COMMIT record.
4. Second pass, in log order: replay entries.  Simple entries
   (tag 0) and block/list *allocations* always apply; entries tagged
   with an ARU apply only if that ARU's commit record was found —
   this is the undo of uncommitted ARUs, by never redoing them.
5. Rebuild the segment-usage table and free anything invalid.
6. Consistency sweep: blocks that remain allocated but belong to no
   list were allocated by ARUs that never committed; free them
   ("A disk consistency check during recovery should free such
   blocks").

The result is a fully operational :class:`~repro.lld.lld.LLD` plus a
:class:`RecoveryReport` describing what was found.

Two scan implementations share the classification rules:

* The **batched pipeline** (default, ``parallel=True``) reads
  trailers — or, when segments are small enough that streaming beats
  seeking, whole segments in one sequential sweep — via
  :meth:`~repro.disk.simdisk.SimulatedDisk.read_many`, then
  CRC-checks and decodes the replay candidates on a
  ``concurrent.futures`` worker pool (``zlib.crc32`` releases the
  GIL, so the host-side work overlaps on multi-core machines) while
  the simulated CPU cost is charged at the critical-path share via
  :meth:`~repro.disk.clock.CostMeter.charge` ``lanes``.
* The **serial fallback** (``parallel=False``) peeks and decodes one
  segment at a time, exactly as a minimal implementation would.

Both rebuild byte-identical logical-disk state; the pipeline is just
faster, which the differential tests and ``bench_recovery`` pin down.

Wall-clock fast paths (host speed; simulated time is unaffected):

* The decode pool flavor is selectable via the ``recovery_executor``
  config knob: ``"thread"`` (default) or ``"process"``, a
  ``multiprocessing`` pool that sidesteps the GIL for the Python-side
  summary decode and falls back to threads when the host cannot spawn
  processes.  Either flavor charges the same simulated ``lanes``.
* Replay consumes the raw summary field tuples
  (:attr:`~repro.lld.segment.DecodedSegment.entry_tuples`) through
  :meth:`_ReplayState.apply_tuple` — no ``SummaryEntry``/``EntryKind``
  objects on the hot path.  ``recover(replay="object")`` keeps the
  original object-based replay as a differential reference; the
  crash-sweep identity tests run both and compare state.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Set, Tuple

from repro.core.records import BlockVersion, ListVersion
from repro.core.versions import VersionState
from repro.disk.geometry import TRAILER_SIZE, DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import MediaError
from repro.ld.types import ARU_NONE, SYSTEM_ID_BASE, BlockId, ListId, PhysAddr
from repro.lld.checkpoint import CheckpointData
from repro.lld.lld import LLD
from repro.lld.segment import (
    DecodedSegment,
    decode_segment,
    decode_segment_tail,
    parse_trailer,
)
from repro.lld.summary import (
    KIND_ALLOC_BLOCK,
    KIND_COMMIT,
    KIND_DECIDE,
    KIND_DELETE_BLOCK,
    KIND_DELETE_LIST,
    KIND_LINK,
    KIND_NEW_LIST,
    KIND_PREPARE,
    KIND_WRITE,
    EntryKind,
    SummaryEntry,
)
from repro.lld.usage import QUARANTINE_SEQ, SegmentState


@dataclasses.dataclass
class RecoveryReport:
    """What recovery found and did."""

    checkpoint_seq: int
    segments_scanned: int = 0
    segments_replayed: int = 0
    segments_invalid: int = 0
    segments_unreadable: int = 0
    #: Segments retired from use: unreadable media found during this
    #: scan, plus segments the checkpoint roster records as
    #: quarantined by an earlier scrub (the QUARANTINE_SEQ sentinel).
    segments_quarantined: int = 0
    entries_replayed: int = 0
    entries_discarded: int = 0
    replay_conflicts: int = 0
    arus_committed: int = 0
    arus_discarded: int = 0
    discarded_aru_ids: List[int] = dataclasses.field(default_factory=list)
    #: Cross-volume (sharded) commit accounting: ARUs found prepared,
    #: the coordinator transaction ids known decided, and how each
    #: prepared ARU was resolved (rolled forward vs discarded).
    arus_prepared: int = 0
    xids_decided: List[int] = dataclasses.field(default_factory=list)
    xids_rolled_forward: List[int] = dataclasses.field(default_factory=list)
    xids_discarded: List[int] = dataclasses.field(default_factory=list)
    #: Highest coordinator transaction id seen in any PREPARE/DECIDE
    #: record or checkpoint (for rebuilding the coordinator counter).
    max_xid: int = 0
    orphan_blocks_freed: List[int] = dataclasses.field(default_factory=list)
    recovery_time_us: float = 0.0
    #: Scan implementation actually used and its worker count.
    parallel: bool = False
    workers: int = 1
    #: Decode pool flavor actually used by the batched scan:
    #: ``"thread"``, ``"process"``, or ``"serial"`` when no pool ran
    #: (serial scan, or a single candidate).
    executor: str = "serial"
    #: Replay representation used: ``"tuple"`` (fast path) or
    #: ``"object"`` (the reference implementation).
    replay: str = "tuple"
    #: Simulated microseconds per phase: ``scan`` (classification
    #: reads), ``decode`` (CRC + summary decode), ``replay`` (the two
    #: passes and the orphan sweep), ``install`` (tables, usage,
    #: fresh buffer).
    phase_us: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Host wall-clock seconds for the whole recovery.
    wall_seconds: float = 0.0
    #: Batched-read statistics (deltas over this recovery).
    read_batches: int = 0
    batched_runs: int = 0
    #: Recovery mode: ``"eager"`` (full scan before the volume opens)
    #: or ``"instant"`` (open immediately, redo-on-demand).
    mode: str = "eager"
    #: Instant restore: requests that had to synchronously replay a
    #: log suffix before they could be served.
    on_demand_replays: int = 0
    #: Instant restore: simulated µs spent applying pending segments
    #: after the volume opened (on-demand + background sweep).
    background_sweep_us: float = 0.0
    #: Simulated µs until the volume could serve its first request:
    #: equals ``recovery_time_us`` for eager mode, the phase-A setup
    #: time for instant mode.
    ttfr_us: float = 0.0

    # -- unified-report surface (shared with ShardRecoveryReport, so
    # callers of repro.recovery.recover can read one shape) --

    @property
    def shards(self) -> int:
        """Member count of the recovered volume: always 1 here."""
        return 1

    @property
    def dead_shards(self) -> List[int]:
        """Lost members: a single volume either recovers or raises."""
        return []

    @property
    def parallel_us(self) -> float:
        """Critical-path simulated time (= total for one volume)."""
        return self.recovery_time_us

    @property
    def serial_us(self) -> float:
        return self.recovery_time_us


def peek_trailer_seq(disk: SimulatedDisk, seg: int) -> Optional[int]:
    """Read just a segment's trailer and return its log sequence
    number, or None when the trailer is not a valid LLD trailer.

    This does not checksum the body; callers must fully decode any
    segment whose contents they intend to replay.
    """
    geometry = disk.geometry
    raw = disk.read(seg, geometry.segment_size - TRAILER_SIZE, TRAILER_SIZE)
    parsed = parse_trailer(raw)
    return None if parsed is None else parsed[0]


class _ReplayState:
    """Mutable table state during replay (plain dicts for speed)."""

    def __init__(self) -> None:
        # block id -> [allocated, addr(seg,slot) | None, successor|0,
        #              list_id|0, timestamp]
        self.blocks: Dict[int, List] = {}
        self.lists: Dict[int, List] = {}
        self.max_block = 0
        self.max_list = 0
        self.max_aru = 0

    def load_checkpoint(self, ckpt: CheckpointData) -> None:
        for blk in ckpt.blocks:
            addr = (blk.segment, blk.slot) if blk.has_addr else None
            self.blocks[blk.block_id] = [
                True,
                addr,
                blk.successor,
                blk.list_id,
                blk.timestamp,
            ]
        for lst in ckpt.lists:
            self.lists[lst.list_id] = [
                True,
                lst.first,
                lst.last,
                lst.count,
                lst.timestamp,
            ]

    # -- entry application -------------------------------------------
    #
    # Two entry representations funnel into one set of replay rules:
    # ``apply`` takes the reference ``SummaryEntry`` objects,
    # ``apply_tuple`` the raw field tuples of the batch decoder.  The
    # non-trivial rules (delete, link, unlink) live in shared helpers
    # taking plain ints, so the two paths cannot drift.

    def apply(self, entry: SummaryEntry, segment_no: int) -> bool:
        """Apply one summary entry (reference path); False on conflict."""
        kind = entry.kind
        if kind is EntryKind.WRITE:
            blk = self.blocks.get(entry.a)
            if blk is None or not blk[0]:
                return False
            blk[1] = (segment_no, entry.b)
            blk[4] = entry.timestamp
            return True
        if kind is EntryKind.ALLOC_BLOCK:
            self.blocks[entry.a] = [True, None, 0, 0, entry.timestamp]
            if entry.a < SYSTEM_ID_BASE:
                self.max_block = max(self.max_block, entry.a)
            return True
        if kind is EntryKind.DELETE_BLOCK:
            return self._apply_delete_block(entry.a)
        if kind is EntryKind.NEW_LIST:
            self.lists[entry.a] = [True, 0, 0, 0, entry.timestamp]
            if entry.a < SYSTEM_ID_BASE:
                self.max_list = max(self.max_list, entry.a)
            return True
        if kind is EntryKind.DELETE_LIST:
            return self._apply_delete_list(entry.a)
        if kind is EntryKind.LINK:
            return self._apply_link(entry.a, entry.b, entry.c, entry.timestamp)
        return True  # COMMIT entries carry no table state

    def apply_tuple(self, fields: Tuple[int, ...], segment_no: int) -> bool:
        """Apply one raw entry tuple (fast path); False on conflict.

        ``fields`` is ``(kind, aru_tag, timestamp, a[, b[, c]])``
        exactly as :func:`~repro.lld.summary.decode_entry_tuples`
        unpacked it.
        """
        kind = fields[0]
        if kind == KIND_WRITE:
            blk = self.blocks.get(fields[3])
            if blk is None or not blk[0]:
                return False
            blk[1] = (segment_no, fields[4])
            blk[4] = fields[2]
            return True
        if kind == KIND_ALLOC_BLOCK:
            a = fields[3]
            self.blocks[a] = [True, None, 0, 0, fields[2]]
            if a > self.max_block and a < SYSTEM_ID_BASE:
                self.max_block = a
            return True
        if kind == KIND_DELETE_BLOCK:
            return self._apply_delete_block(fields[3])
        if kind == KIND_NEW_LIST:
            a = fields[3]
            self.lists[a] = [True, 0, 0, 0, fields[2]]
            if a > self.max_list and a < SYSTEM_ID_BASE:
                self.max_list = a
            return True
        if kind == KIND_DELETE_LIST:
            return self._apply_delete_list(fields[3])
        if kind == KIND_LINK:
            return self._apply_link(fields[3], fields[4], fields[5], fields[2])
        return True  # COMMIT entries carry no table state

    def _apply_delete_block(self, block_id: int) -> bool:
        blk = self.blocks.get(block_id)
        if blk is None or not blk[0]:
            return False
        list_id = blk[3]
        if list_id:
            lst = self.lists.get(list_id)
            if lst is not None and lst[0]:
                self._unlink(lst, block_id)
        del self.blocks[block_id]
        return True

    def _apply_delete_list(self, list_id: int) -> bool:
        lst = self.lists.get(list_id)
        if lst is None or not lst[0]:
            return False
        cursor = lst[1]
        while cursor:
            member = self.blocks.get(cursor)
            nxt = member[2] if member else 0
            if member is not None:
                del self.blocks[cursor]
            cursor = nxt
        del self.lists[list_id]
        return True

    def _apply_link(
        self, list_id: int, block_id: int, pred_id: int, timestamp: int
    ) -> bool:
        lst = self.lists.get(list_id)
        blk = self.blocks.get(block_id)
        if lst is None or not lst[0] or blk is None or not blk[0]:
            return False
        if blk[3]:
            return False  # already in a list
        if pred_id == 0:
            blk[2] = lst[1]
            if not lst[1]:
                lst[2] = block_id
            lst[1] = block_id
        else:
            pred = self.blocks.get(pred_id)
            if pred is None or not pred[0] or pred[3] != list_id:
                return False
            blk[2] = pred[2]
            pred[2] = block_id
            if lst[2] == pred_id:
                lst[2] = block_id
        blk[3] = list_id
        lst[3] += 1
        lst[4] = timestamp
        return True

    def _unlink(self, lst: List, block_id: int) -> None:
        """Remove ``block_id`` from list state ``lst`` (best effort)."""
        target = self.blocks.get(block_id)
        successor = target[2] if target else 0
        if lst[1] == block_id:
            lst[1] = successor
            if lst[2] == block_id:
                lst[2] = 0
            lst[3] -= 1
            return
        cursor = lst[1]
        while cursor:
            node = self.blocks.get(cursor)
            if node is None:
                return
            if node[2] == block_id:
                node[2] = successor
                if lst[2] == block_id:
                    lst[2] = cursor
                lst[3] -= 1
                return
            cursor = node[2]

    # -- consistency sweep -------------------------------------------

    def sweep_orphans(self) -> List[int]:
        """Free allocated blocks that are members of no list."""
        members: Set[int] = set()
        for lst in self.lists.values():
            cursor = lst[1]
            while cursor and cursor not in members:
                members.add(cursor)
                node = self.blocks.get(cursor)
                cursor = node[2] if node else 0
        orphans = [
            bid
            for bid, blk in self.blocks.items()
            if blk[0] and bid not in members and not blk[3]
        ]
        for bid in orphans:
            del self.blocks[bid]
        return orphans


def _charge_decode(lld: LLD, raw_kb: float, entries: int, lanes: int) -> None:
    """Charge CRC + summary-decode CPU time for a decode attempt.

    ``lanes`` > 1 models the worker pool overlapping the work: the
    counters record everything, the clock only advances the
    critical-path share.
    """
    if raw_kb:
        lld.meter.charge("crc_kb_us", raw_kb, lanes=lanes)
    if entries:
        lld.meter.charge("decode_entry_us", entries, lanes=lanes)


def _scan_serial(
    lld: LLD,
    disk: SimulatedDisk,
    ckpt: CheckpointData,
    reserved: int,
    report: RecoveryReport,
) -> Tuple[
    List[DecodedSegment],
    Dict[int, Tuple[int, int, int]],
    List[int],
    List[int],
]:
    """One-segment-at-a-time scan: trailer peek, then body decode."""
    geometry = disk.geometry
    clock = disk.clock
    raw_kb = geometry.segment_size / 1024.0
    replayable: List[DecodedSegment] = []
    ckpt_segments: Dict[int, Tuple[int, int, int]] = {}
    invalid: List[int] = []
    quarantined: List[int] = []
    decode_us = 0.0
    scan_start = clock.now_us
    for seg in range(reserved, geometry.num_segments):
        report.segments_scanned += 1
        roster = ckpt.segments.get(seg)
        if roster is not None and roster[0] == QUARANTINE_SEQ:
            # An earlier scrub retired this segment; whatever the
            # platter holds now must never be trusted — don't read it.
            quarantined.append(seg)
            continue
        try:
            trailer_seq = peek_trailer_seq(disk, seg)
        except MediaError:
            # The hardware reports the fault, so the retirement can be
            # made permanent (unlike a failed CRC, which could just be
            # a torn rewrite of a freed segment).
            report.segments_unreadable += 1
            quarantined.append(seg)
            continue
        if trailer_seq is None:
            report.segments_invalid += 1
            invalid.append(seg)
            continue
        if trailer_seq > ckpt.last_log_seq:
            try:
                raw = disk.read_segment(seg)
            except MediaError:
                report.segments_unreadable += 1
                quarantined.append(seg)
                continue
            mark = clock.now_us
            decoded = decode_segment(raw, geometry, seg)
            _charge_decode(
                lld, raw_kb, decoded.entry_count if decoded else 0, lanes=1
            )
            decode_us += clock.now_us - mark
            if decoded is None:
                # Valid-looking trailer but a torn/corrupt body.
                report.segments_invalid += 1
                invalid.append(seg)
                continue
            replayable.append(decoded)
        elif roster is not None and roster[0] == trailer_seq:
            ckpt_segments[seg] = roster
        else:
            # Valid trailer but freed before the checkpoint: stale.
            invalid.append(seg)
    report.phase_us["scan"] = clock.now_us - scan_start - decode_us
    report.phase_us["decode"] = decode_us
    return replayable, ckpt_segments, invalid, quarantined


#: Geometry handed to decode worker processes once at pool start, so
#: each task ships only (segment number, raw bytes).
_POOL_GEOMETRY: Optional[DiskGeometry] = None


def _decode_pool_init(
    block_size: int, segment_size: int, num_segments: int
) -> None:
    global _POOL_GEOMETRY
    _POOL_GEOMETRY = DiskGeometry(block_size, segment_size, num_segments)


def _decode_pool_task(item: Tuple[int, bytes]):
    """Decode one segment in a worker process.

    Returns the picklable essence of a :class:`DecodedSegment` — the
    parent reattaches the raw body it already holds, so the large
    image crosses the process boundary only once (parent → child).
    """
    seg, raw = item
    decoded = decode_segment(raw, _POOL_GEOMETRY, seg)
    if decoded is None:
        return None
    return (
        decoded.seq,
        decoded.block_count,
        decoded.entry_tuples,
        decoded.summary_start,
        decoded.summary_len,
    )


def _decode_with_processes(
    geometry: DiskGeometry,
    bodies: Dict[int, bytes],
    decodable: List[int],
    lanes: int,
) -> Optional[List[Optional[DecodedSegment]]]:
    """Decode candidates on a ``multiprocessing`` pool.

    Returns the decoded list (entries aligned with ``decodable``), or
    None when the host cannot run a process pool — the caller falls
    back to threads.  Wall-clock only: the simulated cost charge is
    identical for every pool flavor.
    """
    try:
        with ProcessPoolExecutor(
            max_workers=lanes,
            initializer=_decode_pool_init,
            initargs=(
                geometry.block_size,
                geometry.segment_size,
                geometry.num_segments,
            ),
        ) as pool:
            packed = list(
                pool.map(
                    _decode_pool_task,
                    [(seg, bodies[seg]) for seg in decodable],
                    chunksize=max(1, len(decodable) // (lanes * 4) or 1),
                )
            )
    except (OSError, ImportError, BrokenProcessPool):
        return None
    out: List[Optional[DecodedSegment]] = []
    for seg, item in zip(decodable, packed):
        if item is None:
            out.append(None)
            continue
        seq, nblocks, entry_tuples, summary_start, summary_len = item
        out.append(
            DecodedSegment(
                segment_no=seg,
                seq=seq,
                entry_tuples=entry_tuples,
                block_count=nblocks,
                raw=bodies[seg],
                geometry=geometry,
                summary_start=summary_start,
                summary_len=summary_len,
            )
        )
    return out


def _scan_batched(
    lld: LLD,
    disk: SimulatedDisk,
    ckpt: CheckpointData,
    reserved: int,
    report: RecoveryReport,
    workers: int,
    executor: str = "thread",
) -> Tuple[
    List[DecodedSegment],
    Dict[int, Tuple[int, int, int]],
    List[int],
    List[int],
]:
    """Batched, pipelined scan.

    Phase 1 (scan): one :meth:`read_many` batch fetches either every
    trailer or — when the geometry makes streaming a whole segment
    cheaper than seeking past it — every segment body in a single
    sequential sweep.  Phase 2 (decode): replay candidates are
    CRC-checked and decoded on a thread pool; simulated CPU cost is
    charged at the critical-path share (``lanes``).

    Classification is rule-for-rule identical to :func:`_scan_serial`,
    and statuses are resolved in ascending segment order, so the
    rebuilt state (including the usage free-list order) matches the
    serial scan byte for byte.
    """
    geometry = disk.geometry
    clock = disk.clock
    segment_size = geometry.segment_size
    model = disk.timer.model
    scan_start = clock.now_us

    segs = list(range(reserved, geometry.num_segments))
    report.segments_scanned += len(segs)

    # Segments the checkpoint roster records as quarantined are never
    # read: whatever the platter holds must not be trusted.
    status: Dict[int, str] = {}
    for seg in segs:
        roster = ckpt.segments.get(seg)
        if roster is not None and roster[0] == QUARANTINE_SEQ:
            status[seg] = "quarantined"
    scan_segs = [seg for seg in segs if seg not in status]

    # Streaming a segment costs its transfer time; skipping to the
    # next trailer costs a seek.  When the transfer is cheaper, the
    # fastest scan reads *everything* in one sequential sweep (and the
    # replay candidates then need no second read at all).
    random_cost = (
        model.avg_seek_us + model.avg_rotational_us + model.controller_overhead_us
    )
    sweep_bodies = model.transfer_us(segment_size) <= random_cost

    bodies: Dict[int, bytes] = {}
    trailer_by_seg: Dict[int, Optional[bytes]] = {}
    if sweep_bodies:
        results = disk.read_many(
            [(seg, 0, segment_size) for seg in scan_segs], errors="none"
        )
        for seg, body in zip(scan_segs, results):
            if body is not None:
                bodies[seg] = body
                trailer_by_seg[seg] = body[segment_size - TRAILER_SIZE :]
            else:
                trailer_by_seg[seg] = None
    else:
        results = disk.read_many(
            [
                (seg, segment_size - TRAILER_SIZE, TRAILER_SIZE)
                for seg in scan_segs
            ],
            errors="none",
        )
        for seg, raw in zip(scan_segs, results):
            trailer_by_seg[seg] = raw

    # Classify in ascending segment order (the order determines the
    # rebuilt free list, so it must match the serial scan).
    ckpt_segments: Dict[int, Tuple[int, int, int]] = {}
    candidates: List[int] = []
    for seg in scan_segs:
        raw_trailer = trailer_by_seg[seg]
        if raw_trailer is None:
            # Hardware-reported fault: retire the segment permanently
            # (a failed CRC could just be a torn rewrite; an I/O error
            # cannot).
            report.segments_unreadable += 1
            status[seg] = "quarantined"
            continue
        parsed = parse_trailer(raw_trailer)
        if parsed is None:
            report.segments_invalid += 1
            status[seg] = "invalid"
            continue
        trailer_seq = parsed[0]
        roster = ckpt.segments.get(seg)
        if trailer_seq > ckpt.last_log_seq:
            status[seg] = "candidate"
            candidates.append(seg)
        elif roster is not None and roster[0] == trailer_seq:
            ckpt_segments[seg] = roster
            status[seg] = "ckpt"
        else:
            # Valid trailer but freed before the checkpoint: stale.
            status[seg] = "invalid"

    # Fetch candidate bodies not already in hand, as one batch whose
    # contiguous runs coalesce into sequential transfers.
    missing = [seg for seg in candidates if seg not in bodies]
    if missing:
        results = disk.read_many(
            [(seg, 0, segment_size) for seg in missing], errors="none"
        )
        for seg, body in zip(missing, results):
            if body is None:
                report.segments_unreadable += 1
                status[seg] = "quarantined"
            else:
                bodies[seg] = body
    decodable = [seg for seg in candidates if seg in bodies]
    report.phase_us["scan"] = clock.now_us - scan_start

    # Decode pipeline: CRC + summary parse per candidate, overlapped
    # across workers.  decode_segment is pure, so threads share
    # nothing; results are collected in submission order.
    decode_start = clock.now_us
    lanes = max(1, min(workers, len(decodable)))
    decoded_list: Optional[List[Optional[DecodedSegment]]] = None
    pool_flavor = "serial"
    if lanes > 1 and executor == "process":
        decoded_list = _decode_with_processes(geometry, bodies, decodable, lanes)
        if decoded_list is not None:
            pool_flavor = "process"
    if decoded_list is None and lanes > 1:
        with ThreadPoolExecutor(max_workers=lanes) as pool:
            decoded_list = list(
                pool.map(
                    lambda seg: decode_segment(
                        bodies[seg], geometry, seg
                    ),
                    decodable,
                )
            )
        pool_flavor = "thread"
    if decoded_list is None:
        decoded_list = [
            decode_segment(bodies[seg], geometry, seg)
            for seg in decodable
        ]
    report.executor = pool_flavor
    replayable: List[DecodedSegment] = []
    total_entries = 0
    for seg, decoded in zip(decodable, decoded_list):
        if decoded is None:
            # Valid-looking trailer but a torn/corrupt body.
            report.segments_invalid += 1
            status[seg] = "invalid"
        else:
            total_entries += decoded.entry_count
            replayable.append(decoded)
    _charge_decode(
        lld,
        len(decodable) * segment_size / 1024.0,
        total_entries,
        lanes=lanes,
    )
    report.phase_us["decode"] = clock.now_us - decode_start

    invalid = [seg for seg in segs if status.get(seg) == "invalid"]
    quarantined = [seg for seg in segs if status.get(seg) == "quarantined"]
    return replayable, ckpt_segments, invalid, quarantined


def recover(
    disk: SimulatedDisk,
    sweep_orphans: bool = True,
    parallel: Optional[bool] = None,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    replay: str = "tuple",
    config=None,
    decided_xids: Optional[Set[int]] = None,
    mode: Optional[str] = None,
    **lld_kwargs,
) -> Tuple[LLD, RecoveryReport]:
    """Recover an :class:`LLD` instance from a (crashed) disk.

    Accepts the same keyword arguments as :class:`LLD` (mode,
    visibility, cost model, ...) or a prebuilt
    :class:`~repro.lld.config.LLDConfig` via ``config=``.
    ``sweep_orphans=False`` skips the consistency sweep, exposing the
    paper's intermediate state where blocks allocated by undone ARUs
    remain allocated.

    ``mode`` selects the recovery strategy (default: the config's
    ``recovery_mode`` knob).  ``"eager"`` replays the whole log before
    returning; ``"instant"`` loads the checkpoint, indexes the pending
    log suffix from per-segment tail reads, and returns an *open*
    volume immediately — requests touching a block or list whose
    covering log suffix is not yet applied trigger redo-on-demand,
    and a background sweep (auto-draining
    ``restore_drain_segments`` per operation, or explicitly via
    :meth:`~repro.lld.lld.LLD.restore_drain` /
    :meth:`~repro.lld.lld.LLD.complete_restore`) drains the rest in
    log order.  Once drained, the final state is byte-identical to
    eager recovery (see docs/RECOVERY.md).

    ``decided_xids`` supplies coordinator decisions from *another*
    volume's log: a participant shard of a sharded volume
    (:mod:`repro.shard`) rolls a PREPARE-tagged ARU forward iff its
    transaction id appears in its own log/checkpoint or in this set,
    and discards it otherwise (presumed abort).

    ``parallel=True`` (the config default) uses the batched,
    pipelined scan; ``parallel=False`` falls back to the serial
    one-segment-at-a-time scan.  Both produce identical logical-disk
    state; ``workers`` bounds the decode pool (and the simulated
    overlap) of the pipeline.  When omitted, both come from the
    config's ``recovery_parallel`` / ``recovery_workers`` knobs, as
    does ``executor`` (``"thread"`` or ``"process"``, the host-side
    decode pool flavor — wall-clock only, never simulated time).

    ``replay`` selects the replay representation: ``"tuple"`` (the
    wall-clock fast path over raw summary field tuples, the default)
    or ``"object"`` (the original ``SummaryEntry``-based replay, kept
    as a differential reference).  Both rebuild identical state.
    """
    from repro.lld.config import LLDConfig

    cost_model = lld_kwargs.pop("cost_model", None)
    cfg = LLDConfig.from_kwargs(config, **lld_kwargs)
    if parallel is None:
        parallel = cfg.recovery_parallel
    if workers is None:
        workers = cfg.recovery_workers
    if executor is None:
        executor = cfg.recovery_executor
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if executor not in ("thread", "process"):
        raise ValueError(f"unknown recovery executor: {executor!r}")
    if replay not in ("tuple", "object"):
        raise ValueError(f"unknown replay mode: {replay!r}")
    if mode is None:
        mode = cfg.recovery_mode
    if mode not in ("eager", "instant"):
        raise ValueError(f"unknown recovery mode: {mode!r}")
    if mode == "instant":
        return _recover_instant(
            disk, sweep_orphans, workers, cfg, cost_model, decided_xids
        )
    wall_start = time.perf_counter()
    start_us = disk.clock.now_us
    batches_before = disk.timer.batches
    runs_before = disk.timer.batched_runs
    lld = LLD(disk, cost_model=cost_model, config=cfg, _defer_init=True)
    lld.obs.record(
        "recovery.start", parallel=parallel, workers=workers, executor=executor
    )
    lld.obs.metrics.counter("lld.recovery.recoveries").inc()
    ckpt = lld.checkpoints.load()
    report = RecoveryReport(
        checkpoint_seq=ckpt.ckpt_seq,
        parallel=parallel,
        workers=workers,
        replay=replay,
    )

    state = _ReplayState()
    state.load_checkpoint(ckpt)
    state.max_block = ckpt.next_block_id - 1
    state.max_list = ckpt.next_list_id - 1
    state.max_aru = ckpt.next_aru_id - 1

    # ---- scan segments ---------------------------------------------
    # Trailer-first scan: only segments newer than the checkpoint need
    # their bodies read and checksummed; checkpoint-covered segments
    # are attested by the roster, everything else is free space.  This
    # is what makes checkpoints shrink recovery *time*, not just
    # replay work.
    reserved = lld.checkpoints.reserved_segments
    if parallel:
        replayable, ckpt_segments, invalid, quarantined = _scan_batched(
            lld, disk, ckpt, reserved, report, workers, executor
        )
    else:
        replayable, ckpt_segments, invalid, quarantined = _scan_serial(
            lld, disk, ckpt, reserved, report
        )
    report.segments_quarantined = len(quarantined)
    replayable.sort(key=lambda d: d.seq)

    # ---- pass 1: committed ARUs and coordinator decisions ----------
    # COMMIT records commit their tag outright.  PREPARE records park
    # their tag on a coordinator transaction id, which commits iff a
    # DECIDE record for that xid is durable — in this volume's own
    # checkpoint or log (the coordinator shard resolves itself), or in
    # the ``decided_xids`` the sharded recovery read from shard 0.
    replay_start = disk.clock.now_us
    committed: Set[int] = set()
    prepared: Dict[int, int] = {}
    own_decided: Set[int] = set(ckpt.decided_xids)
    if replay == "tuple":
        max_aru = state.max_aru
        for decoded in replayable:
            for fields in decoded.entry_tuples:
                kind = fields[0]
                if kind == KIND_COMMIT:
                    tag = fields[1]
                    committed.add(tag)
                    if tag > max_aru:
                        max_aru = tag
                elif kind == KIND_PREPARE:
                    tag = fields[1]
                    prepared[tag] = fields[4]
                    if tag > max_aru:
                        max_aru = tag
                elif kind == KIND_DECIDE:
                    own_decided.add(fields[3])
        state.max_aru = max_aru
    else:
        for decoded in replayable:
            for entry in decoded.entries:
                if entry.kind is EntryKind.COMMIT:
                    committed.add(entry.aru_tag)
                    state.max_aru = max(state.max_aru, entry.aru_tag)
                elif entry.kind is EntryKind.PREPARE:
                    prepared[entry.aru_tag] = entry.b
                    state.max_aru = max(state.max_aru, entry.aru_tag)
                elif entry.kind is EntryKind.DECIDE:
                    own_decided.add(entry.a)
    decided = own_decided | (decided_xids or set())
    report.arus_prepared = len(prepared)
    report.xids_decided = sorted(own_decided)
    rolled_forward: Set[int] = set()
    undecided: Set[int] = set()
    for tag, xid in prepared.items():
        if xid in decided:
            committed.add(tag)
            rolled_forward.add(xid)
        else:
            undecided.add(xid)
    report.xids_rolled_forward = sorted(rolled_forward)
    report.xids_discarded = sorted(undecided)
    report.max_xid = max(
        [0, *prepared.values(), *own_decided]
    )
    report.arus_committed = len(committed)

    # ---- pass 2: replay ---------------------------------------------
    discarded_arus: Set[int] = set()
    if replay == "tuple":
        # Fast path: raw field tuples, local counters, no attribute
        # traffic in the inner loop.
        replayed = discarded = conflicts = 0
        max_aru = state.max_aru
        apply_tuple = state.apply_tuple
        for decoded in replayable:
            report.segments_replayed += 1
            segment_no = decoded.segment_no
            for fields in decoded.entry_tuples:
                tag = fields[1]
                if tag > max_aru:
                    max_aru = tag
                if tag and tag not in committed and fields[0] != KIND_COMMIT:
                    discarded += 1
                    discarded_arus.add(tag)
                    continue
                if apply_tuple(fields, segment_no):
                    replayed += 1
                else:
                    conflicts += 1
        state.max_aru = max_aru
        report.entries_replayed += replayed
        report.entries_discarded += discarded
        report.replay_conflicts += conflicts
    else:
        for decoded in replayable:
            report.segments_replayed += 1
            for entry in decoded.entries:
                state.max_aru = max(state.max_aru, entry.aru_tag)
                tag = entry.aru_tag
                if (
                    tag
                    and tag not in committed
                    and entry.kind is not EntryKind.COMMIT
                ):
                    report.entries_discarded += 1
                    discarded_arus.add(tag)
                    continue
                if state.apply(entry, decoded.segment_no):
                    report.entries_replayed += 1
                else:
                    report.replay_conflicts += 1
    report.arus_discarded = len(discarded_arus)
    report.discarded_aru_ids = sorted(discarded_arus)

    # ---- consistency sweep ------------------------------------------
    if sweep_orphans:
        report.orphan_blocks_freed = sorted(state.sweep_orphans())
    report.phase_us["replay"] = disk.clock.now_us - replay_start

    # ---- install tables ----------------------------------------------
    install_start = disk.clock.now_us
    for bid, blk in state.blocks.items():
        record = BlockVersion(
            BlockId(bid),
            VersionState.PERSISTENT,
            allocated=True,
            address=PhysAddr(*blk[1]) if blk[1] is not None else None,
            successor=BlockId(blk[2]) if blk[2] else None,
            list_id=ListId(blk[3]) if blk[3] else None,
            timestamp=blk[4],
        )
        lld.bmap.install_persistent(record)
    for lid, lst in state.lists.items():
        record = ListVersion(
            ListId(lid),
            VersionState.PERSISTENT,
            allocated=True,
            first=BlockId(lst[1]) if lst[1] else None,
            last=BlockId(lst[2]) if lst[2] else None,
            count=lst[3],
            timestamp=lst[4],
        )
        lld.ltable.install_persistent(record)

    # ---- rebuild usage ------------------------------------------------
    live_counts: Dict[int, int] = {}
    for _bid, blk in state.blocks.items():
        if blk[1] is not None:
            live_counts[blk[1][0]] = live_counts.get(blk[1][0], 0) + 1
    max_seq = ckpt.last_log_seq
    for seg in invalid:
        lld.usage.restore(seg, SegmentState.FREE, -1, 0, 0)
    for seg in quarantined:
        # Failed media stays retired; addresses still pointing here
        # are tombstones for lost blocks (reads raise
        # UnrecoverableBlockError instead of returning garbage).
        lld.usage.restore(seg, SegmentState.QUARANTINED, -1, 0, 0)
    for seg, (seq, _live, total) in ckpt_segments.items():
        lld.usage.restore(
            seg, SegmentState.DIRTY, seq, live_counts.get(seg, 0), total
        )
    for decoded in replayable:
        lld.usage.restore(
            decoded.segment_no,
            SegmentState.DIRTY,
            decoded.seq,
            live_counts.get(decoded.segment_no, 0),
            decoded.block_count,
        )
        max_seq = max(max_seq, decoded.seq)

    # ---- counters and the fresh buffer -------------------------------
    lld._next_block_id = state.max_block + 1
    lld._next_list_id = state.max_list + 1
    lld.arus.set_next_id(state.max_aru + 1)
    lld._next_seq = max_seq + 1
    lld._last_written_seq = max_seq
    lld._ckpt_seq = ckpt.ckpt_seq
    lld._commit_on_disk = committed
    # The coordinator's decision memory survives recovery: checkpoint
    # set plus every DECIDE found in the log (never the borrowed
    # ``decided_xids`` — those belong to the volume that logged them).
    lld._decided_xids = own_decided
    try:
        lld._open_new_buffer()
    except Exception:
        # A completely full disk recovers with no open buffer; the
        # lazy buffer machinery opens one when (and if) space allows
        # — deletions can still run via the emergency reserve.
        pass
    report.phase_us["install"] = disk.clock.now_us - install_start

    report.recovery_time_us = disk.clock.now_us - start_us
    report.ttfr_us = report.recovery_time_us
    report.wall_seconds = time.perf_counter() - wall_start
    report.read_batches = disk.timer.batches - batches_before
    report.batched_runs = disk.timer.batched_runs - runs_before
    for phase, us in report.phase_us.items():
        lld.obs.metrics.counter(f"lld.recovery.{phase}_us").add(us)
        lld.obs.record("recovery.phase", phase=phase, us=round(us, 3))
    lld.obs.record(
        "recovery.done",
        segments_replayed=report.segments_replayed,
        arus_committed=report.arus_committed,
        arus_discarded=report.arus_discarded,
        total_us=round(report.recovery_time_us, 3),
    )
    return lld, report


# ======================================================================
# Instant restore: open immediately, redo-on-demand, background sweep
# ======================================================================


class RestoreController:
    """Redo-on-demand replay engine behind an instantly-restored LLD.

    Phase A of :func:`_recover_instant` installs the checkpoint tables
    and decodes every pending segment's *summary* from a tail window;
    this controller then owns the pending suffix.  The **watermark**
    is the number of pending segments (in log-sequence order) whose
    entries have been applied to the live persistent records.  The
    invariant served to traffic: before any block or list id is read
    or modified, every pending entry naming it lies below the
    watermark — enforced by :meth:`ensure_block` / :meth:`ensure_list`
    hooks in the LLD operations, which advance the watermark as a
    strict log-order prefix (never cherry-picking entries, so replay
    order is exactly eager recovery's).

    Why a prefix per-id ensure suffices: ``block_index[b]`` is the
    *last* pending position naming ``b``, so once the watermark passes
    it no later pending entry can touch ``b`` directly; and ``b``'s
    list membership is frozen beyond that point, so any later
    ``DELETE_LIST`` that could delete ``b`` indexes the list ``b``
    currently belongs to — which the second ensure step also drains.

    The controller performs no disk writes: a crash mid-sweep leaves
    the platter exactly as the original crash did, which is why a
    second crash recovers byte-identically to a single eager recovery.
    """

    def __init__(
        self,
        lld: LLD,
        report: RecoveryReport,
        pending: List[DecodedSegment],
        committed: Set[int],
        sweep_orphans: bool,
    ) -> None:
        self.lld = lld
        self.report = report
        self.pending = pending
        self.committed = committed
        self.sweep_orphans = sweep_orphans
        #: Pending segments fully applied (index of the next to apply).
        self.watermark = 0
        self.done = False
        #: id -> last pending position whose entries name the id.
        self.block_index: Dict[int, int] = {}
        self.list_index: Dict[int, int] = {}
        #: Counter values at open: ids at or above these were handed
        #: out by live traffic and are never restore-era state.
        self.open_next_block = 0
        self.open_next_list = 0
        #: Dirty segments whose live counts are provisional until the
        #: sweep completes (checkpoint roster + pending suffix).
        self.restore_era: Set[int] = set()
        self.discarded_arus: Set[int] = set()
        self.orphans_freed: Set[int] = set()
        #: Simulated µs spent applying entries after the volume opened.
        self.apply_us = 0.0
        #: Watermark-invariant violations (must stay empty; verify_lld
        #: surfaces them).
        self.violations: List[str] = []
        m = lld.obs.metrics
        self._c_on_demand = m.counter("lld.recovery.on_demand_replays")
        self._g_pending = m.gauge(
            "lld.recovery.pending_segments", initial=len(pending)
        )
        self._g_watermark = m.gauge("lld.recovery.watermark", initial=0)
        bindex = self.block_index
        lindex = self.list_index
        for pos, decoded in enumerate(pending):
            for fields in decoded.entry_tuples:
                kind = fields[0]
                if kind == KIND_WRITE or kind == KIND_ALLOC_BLOCK:
                    bindex[fields[3]] = pos
                elif kind == KIND_DELETE_BLOCK:
                    bindex[fields[3]] = pos
                    if fields[4]:
                        lindex[fields[4]] = pos
                elif kind == KIND_NEW_LIST or kind == KIND_DELETE_LIST:
                    lindex[fields[3]] = pos
                elif kind == KIND_LINK:
                    lindex[fields[3]] = pos
                    bindex[fields[4]] = pos
                    if fields[5]:
                        bindex[fields[5]] = pos

    # -- public surface ----------------------------------------------

    @property
    def pending_count(self) -> int:
        """Pending segments not yet applied."""
        return len(self.pending) - self.watermark

    def tick(self) -> None:
        """Background sweep quantum: auto-drain per public operation."""
        if self.done:
            return
        step = self.lld.config.restore_drain_segments
        if step and self.watermark < len(self.pending):
            self._advance(
                min(len(self.pending), self.watermark + step) - 1
            )
        if step and self.watermark >= len(self.pending):
            # The sweep just retired the last pending segment: run
            # the completion pass so the volume collapses back to
            # normal operation without an explicit call.
            self.complete()

    def drain(self, max_segments: Optional[int] = None) -> None:
        """Apply up to ``max_segments`` pending segments in log order."""
        if max_segments is None:
            max_segments = self.pending_count
        if max_segments > 0 and self.watermark < len(self.pending):
            self._advance(
                min(len(self.pending), self.watermark + max_segments) - 1
            )

    def ensure_block(self, block_id: int) -> None:
        """Drain every pending entry that could affect ``block_id``.

        Two prefix advances: to the block's own last pending mention,
        then to the last mention of the list it (now) belongs to —
        which covers membership-changing entries (``DELETE_LIST`` of
        its list, unlinks by neighbors).  Afterwards the block's
        persistent record is final with respect to the log, so the
        orphan rule eager recovery applies at the end is applied here,
        lazily: a still-unlinked restore-era block is freed before it
        can be served.
        """
        if self.done:
            return
        bid = int(block_id)
        advanced = False
        pos = self.block_index.get(bid, -1)
        if pos >= self.watermark:
            advanced = self._advance(pos)
        rec = self._blk(bid)
        if rec is not None and rec.list_id is not None:
            lpos = self.list_index.get(int(rec.list_id), -1)
            if lpos >= self.watermark:
                advanced = self._advance(lpos) or advanced
        if advanced:
            self._c_on_demand.inc()
            self.report.on_demand_replays += 1
        if self.block_index.get(bid, -1) >= self.watermark:
            self.violations.append(
                f"block {bid} served below the replay watermark"
            )
        if self.sweep_orphans and bid < self.open_next_block:
            rec = self._blk(bid)
            if (
                rec is not None
                and rec.allocated
                and rec.list_id is None
                and rec.successor is None
            ):
                self._drop_block(bid)
                self.orphans_freed.add(bid)

    def ensure_list(self, list_id: int) -> None:
        """Drain every pending entry that could affect ``list_id``.

        Every entry that changes a list's chain structure (LINK,
        DELETE_BLOCK of a member, DELETE_LIST, NEW_LIST) indexes the
        list id, so one prefix advance makes the whole chain — member
        successor fields included — final with respect to the log.
        """
        if self.done:
            return
        lid = int(list_id)
        pos = self.list_index.get(lid, -1)
        if pos >= self.watermark:
            if self._advance(pos):
                self._c_on_demand.inc()
                self.report.on_demand_replays += 1
        if self.list_index.get(lid, -1) >= self.watermark:
            self.violations.append(
                f"list {lid} served below the replay watermark"
            )

    def complete(self) -> None:
        """Drain everything and collapse to normal operation.

        Runs eager recovery's consistency sweep (silently, on the
        persistent records — never the logging public
        ``sweep_orphan_blocks``) and replaces the provisional live
        counts of every restore-era segment with counts derived from
        the final persistent addresses, exactly what eager recovery's
        usage rebuild computes.
        """
        if self.done:
            return
        lld = self.lld
        if self.watermark < len(self.pending):
            self._advance(len(self.pending) - 1)
        start = lld.clock.now_us
        if self.sweep_orphans:
            self._sweep_restore_orphans()
        live_counts: Dict[int, int] = {}
        for _bid, rec in lld.bmap.persistent_blocks():
            if rec.address is not None:
                seg = rec.address.segment
                live_counts[seg] = live_counts.get(seg, 0) + 1
        for seg in self.restore_era:
            if lld.usage.state(seg) is SegmentState.DIRTY:
                lld.usage.set_live(seg, live_counts.get(seg, 0))
        self.apply_us += lld.clock.now_us - start
        report = self.report
        report.orphan_blocks_freed = sorted(
            set(report.orphan_blocks_freed) | self.orphans_freed
        )
        report.background_sweep_us = self.apply_us
        report.arus_discarded = len(self.discarded_arus)
        report.discarded_aru_ids = sorted(self.discarded_arus)
        self.done = True
        self._g_pending.set(0)
        self._g_watermark.set(self.watermark)
        lld._restore = None
        lld.obs.record(
            "restore.complete",
            on_demand_replays=report.on_demand_replays,
            sweep_us=round(self.apply_us, 3),
        )

    # -- record plumbing ---------------------------------------------

    def _blk(self, block_id: int) -> Optional[BlockVersion]:
        root = self.lld.bmap.root(BlockId(block_id))
        return root.persistent if root is not None else None

    def _lst(self, list_id: int) -> Optional[ListVersion]:
        root = self.lld.ltable.root(ListId(list_id))
        return root.persistent if root is not None else None

    def _drop_block(self, block_id: int) -> None:
        ident = BlockId(block_id)
        root = self.lld.bmap.root(ident)
        if root is not None:
            root.persistent = None
            self.lld.bmap.drop_if_empty(ident)

    def _drop_list(self, list_id: int) -> None:
        ident = ListId(list_id)
        root = self.lld.ltable.root(ident)
        if root is not None:
            root.persistent = None
            self.lld.ltable.drop_if_empty(ident)

    # -- log application ---------------------------------------------

    def _advance(self, pos: int) -> bool:
        """Apply pending segments through position ``pos`` (inclusive).

        Strict log-order prefix: segments are applied whole, in
        sequence order, with exactly eager recovery's per-entry rules
        (commit filtering included).  The summary-decode CPU cost is
        charged here, to whoever triggered the advance — a foreground
        requester pays for its own redo-on-demand.
        """
        if pos < self.watermark or self.done:
            return False
        lld = self.lld
        clock = lld.clock
        report = self.report
        committed = self.committed
        start = clock.now_us
        while self.watermark <= pos:
            decoded = self.pending[self.watermark]
            report.segments_replayed += 1
            segment_no = decoded.segment_no
            if decoded.entry_count:
                lld.meter.charge("decode_entry_us", decoded.entry_count)
            for fields in decoded.entry_tuples:
                tag = fields[1]
                if tag and tag not in committed and fields[0] != KIND_COMMIT:
                    report.entries_discarded += 1
                    self.discarded_arus.add(tag)
                    continue
                if self._apply(fields, segment_no):
                    report.entries_replayed += 1
                else:
                    report.replay_conflicts += 1
            self.watermark += 1
        self.apply_us += clock.now_us - start
        self._g_watermark.set(self.watermark)
        self._g_pending.set(self.pending_count)
        return True

    def _apply(self, fields: Tuple[int, ...], segment_no: int) -> bool:
        """One entry, by eager recovery's rules, on the live records."""
        lld = self.lld
        kind = fields[0]
        if kind == KIND_WRITE:
            rec = self._blk(fields[3])
            if rec is None or not rec.allocated:
                return False
            rec.address = PhysAddr(segment_no, fields[4])
            rec.timestamp = fields[2]
            return True
        if kind == KIND_ALLOC_BLOCK:
            bid = BlockId(fields[3])
            root = lld.bmap.root(bid, create=True)
            root.persistent = BlockVersion(
                bid,
                VersionState.PERSISTENT,
                allocated=True,
                timestamp=fields[2],
            )
            return True
        if kind == KIND_DELETE_BLOCK:
            return self._apply_delete_block(fields[3])
        if kind == KIND_NEW_LIST:
            lid = ListId(fields[3])
            root = lld.ltable.root(lid, create=True)
            root.persistent = ListVersion(
                lid,
                VersionState.PERSISTENT,
                allocated=True,
                count=0,
                timestamp=fields[2],
            )
            return True
        if kind == KIND_DELETE_LIST:
            return self._apply_delete_list(fields[3])
        if kind == KIND_LINK:
            return self._apply_link(fields[3], fields[4], fields[5], fields[2])
        return True  # COMMIT/PREPARE/DECIDE carry no table state

    def _apply_delete_block(self, block_id: int) -> bool:
        rec = self._blk(block_id)
        if rec is None or not rec.allocated:
            return False
        if rec.list_id is not None:
            lst = self._lst(int(rec.list_id))
            if lst is not None and lst.allocated:
                self._unlink(lst, block_id)
        self._drop_block(block_id)
        return True

    def _apply_delete_list(self, list_id: int) -> bool:
        lst = self._lst(list_id)
        if lst is None or not lst.allocated:
            return False
        cursor = lst.first
        while cursor is not None:
            member = self._blk(int(cursor))
            nxt = member.successor if member is not None else None
            if member is not None:
                self._drop_block(int(cursor))
            cursor = nxt
        self._drop_list(list_id)
        return True

    def _apply_link(
        self, list_id: int, block_id: int, pred_id: int, timestamp: int
    ) -> bool:
        lst = self._lst(list_id)
        blk = self._blk(block_id)
        if lst is None or not lst.allocated or blk is None or not blk.allocated:
            return False
        if blk.list_id is not None:
            return False  # already in a list
        ident = BlockId(block_id)
        if pred_id == 0:
            blk.successor = lst.first
            if lst.first is None:
                lst.last = ident
            lst.first = ident
        else:
            pred = self._blk(pred_id)
            if pred is None or not pred.allocated or pred.list_id != list_id:
                return False
            blk.successor = pred.successor
            pred.successor = ident
            if lst.last == pred_id:
                lst.last = ident
        blk.list_id = ListId(list_id)
        lst.count += 1
        lst.timestamp = timestamp
        return True

    def _unlink(self, lst: ListVersion, block_id: int) -> None:
        """Remove ``block_id`` from list record ``lst`` (best effort)."""
        target = self._blk(block_id)
        successor = target.successor if target is not None else None
        if lst.first == block_id:
            lst.first = successor
            if lst.last == block_id:
                lst.last = None
            lst.count -= 1
            return
        cursor = lst.first
        while cursor is not None:
            node = self._blk(int(cursor))
            if node is None:
                return
            if node.successor == block_id:
                node.successor = successor
                if lst.last == block_id:
                    lst.last = cursor
                lst.count -= 1
                return
            cursor = node.successor

    # -- consistency sweep -------------------------------------------

    def _sweep_restore_orphans(self) -> None:
        """Eager recovery's orphan sweep, on the persistent records.

        Restricted to restore-era ids (below the open-time counters):
        ids handed out by live traffic may legitimately sit in
        unfolded committed versions the persistent walk cannot see.
        Traffic can never link a restore-era block into a list (blocks
        are only ever inserted at allocation), so membership computed
        from the persistent chains is exact for the ids considered.
        """
        lld = self.lld
        members: Set[int] = set()
        for _lid, rec in lld.ltable.persistent_lists():
            cursor = rec.first
            while cursor is not None and int(cursor) not in members:
                members.add(int(cursor))
                node = self._blk(int(cursor))
                cursor = node.successor if node is not None else None
        orphans = [
            int(bid)
            for bid, rec in lld.bmap.persistent_blocks()
            if rec.allocated
            and int(bid) < self.open_next_block
            and int(bid) not in members
            and rec.list_id is None
        ]
        for bid in orphans:
            self._drop_block(bid)
        self.orphans_freed.update(orphans)


def _recover_instant(
    disk: SimulatedDisk,
    sweep_orphans: bool,
    workers: int,
    cfg,
    cost_model,
    decided_xids: Optional[Set[int]],
) -> Tuple[LLD, RecoveryReport]:
    """Instant-restore phase A: open the volume without reading bodies.

    Loads the checkpoint, classifies every log segment from one
    batched *tail-window* read (trailer + summary validated by the
    summary CRC — the same acceptance rule the eager scans use, so
    both modes replay exactly the same set of segments), resolves
    committed ARUs and 2PC decisions over the full pending suffix,
    installs the checkpoint tables and counters, and opens the volume
    with a :class:`RestoreController` holding the undecoded-body
    pending segments.  Time to first request is the simulated time of
    this function alone.
    """
    wall_start = time.perf_counter()
    clock = disk.clock
    start_us = clock.now_us
    batches_before = disk.timer.batches
    runs_before = disk.timer.batched_runs
    lld = LLD(disk, cost_model=cost_model, config=cfg, _defer_init=True)
    lld.obs.record(
        "recovery.start",
        parallel=True,
        workers=workers,
        executor="serial",
        mode="instant",
    )
    m = lld.obs.metrics
    m.counter("lld.recovery.recoveries").inc()
    m.counter("lld.recovery.instant_restores").inc()
    ckpt = lld.checkpoints.load()
    report = RecoveryReport(
        checkpoint_seq=ckpt.ckpt_seq,
        parallel=True,
        workers=workers,
        replay="tuple",
        mode="instant",
    )

    # ---- scan: batched tail windows --------------------------------
    geometry = disk.geometry
    segment_size = geometry.segment_size
    reserved = lld.checkpoints.reserved_segments
    scan_start = clock.now_us
    segs = list(range(reserved, geometry.num_segments))
    report.segments_scanned = len(segs)
    status: Dict[int, str] = {}
    for seg in segs:
        roster = ckpt.segments.get(seg)
        if roster is not None and roster[0] == QUARANTINE_SEQ:
            status[seg] = "quarantined"
    scan_segs = [seg for seg in segs if seg not in status]
    window = min(segment_size, max(TRAILER_SIZE, cfg.restore_tail_window))
    tails = disk.read_many(
        [(seg, segment_size - window, window) for seg in scan_segs],
        errors="none",
    )
    ckpt_segments: Dict[int, Tuple[int, int, int]] = {}
    candidates: List[Tuple[int, bytes]] = []
    for seg, tail in zip(scan_segs, tails):
        if tail is None:
            report.segments_unreadable += 1
            status[seg] = "quarantined"
            continue
        parsed = parse_trailer(tail[window - TRAILER_SIZE :])
        if parsed is None:
            report.segments_invalid += 1
            status[seg] = "invalid"
            continue
        trailer_seq = parsed[0]
        roster = ckpt.segments.get(seg)
        if trailer_seq > ckpt.last_log_seq:
            status[seg] = "candidate"
            candidates.append((seg, tail))
        elif roster is not None and roster[0] == trailer_seq:
            ckpt_segments[seg] = roster
            status[seg] = "ckpt"
        else:
            # Valid trailer but freed before the checkpoint: stale.
            status[seg] = "invalid"

    # ---- decode: summaries from the tails --------------------------
    decode_start = clock.now_us
    decoded_by_seg: Dict[int, DecodedSegment] = {}
    followup: List[Tuple[int, int]] = []
    for seg, tail in candidates:
        result = decode_segment_tail(tail, geometry, seg)
        if result is None:
            report.segments_invalid += 1
            status[seg] = "invalid"
        elif isinstance(result, int):
            followup.append((seg, result))
        else:
            decoded_by_seg[seg] = result
    if followup:
        raws = disk.read_many(
            [(seg, segment_size - needed, needed) for seg, needed in followup],
            errors="none",
        )
        for (seg, _needed), raw in zip(followup, raws):
            if raw is None:
                report.segments_unreadable += 1
                status[seg] = "quarantined"
                continue
            result = decode_segment_tail(raw, geometry, seg)
            if result is None or isinstance(result, int):
                report.segments_invalid += 1
                status[seg] = "invalid"
            else:
                decoded_by_seg[seg] = result
    pending = sorted(decoded_by_seg.values(), key=lambda d: d.seq)
    lanes = max(1, min(workers, len(pending)))
    tail_kb = sum(
        (d.summary_len + TRAILER_SIZE) / 1024.0 for d in pending
    )
    _charge_decode(lld, tail_kb, 0, lanes=lanes)
    report.phase_us["scan"] = decode_start - scan_start
    report.phase_us["decode"] = clock.now_us - decode_start

    # ---- pass 1: committed ARUs, decisions, counter bounds ---------
    # Exactly eager recovery's resolution, over the whole pending
    # suffix — 2PC decided-xid resolution completes *before* the
    # volume opens, so a participant's prepared ARUs are never visible
    # undecided.  ALLOC/NEW_LIST entries always carry tag 0 and always
    # apply, so the final id counters are exact already.
    replay_start = clock.now_us
    committed: Set[int] = set()
    prepared: Dict[int, int] = {}
    own_decided: Set[int] = set(ckpt.decided_xids)
    max_aru = ckpt.next_aru_id - 1
    max_block = ckpt.next_block_id - 1
    max_list = ckpt.next_list_id - 1
    for decoded in pending:
        for fields in decoded.entry_tuples:
            kind = fields[0]
            tag = fields[1]
            if tag > max_aru:
                max_aru = tag
            if kind == KIND_COMMIT:
                committed.add(tag)
            elif kind == KIND_PREPARE:
                prepared[tag] = fields[4]
            elif kind == KIND_DECIDE:
                own_decided.add(fields[3])
            elif kind == KIND_ALLOC_BLOCK:
                # System-range ids (replica mirrors) are forced, not
                # counter-allocated; they never advance the counters.
                if fields[3] > max_block and fields[3] < SYSTEM_ID_BASE:
                    max_block = fields[3]
            elif kind == KIND_NEW_LIST:
                if fields[3] > max_list and fields[3] < SYSTEM_ID_BASE:
                    max_list = fields[3]
    decided = own_decided | (decided_xids or set())
    report.arus_prepared = len(prepared)
    report.xids_decided = sorted(own_decided)
    rolled_forward: Set[int] = set()
    undecided: Set[int] = set()
    for tag, xid in prepared.items():
        if xid in decided:
            committed.add(tag)
            rolled_forward.add(xid)
        else:
            undecided.add(xid)
    report.xids_rolled_forward = sorted(rolled_forward)
    report.xids_discarded = sorted(undecided)
    report.max_xid = max([0, *prepared.values(), *own_decided])
    report.arus_committed = len(committed)
    report.phase_us["replay"] = clock.now_us - replay_start

    # ---- install: checkpoint tables, usage, counters ---------------
    install_start = clock.now_us
    for blk in ckpt.blocks:
        lld.bmap.install_persistent(
            BlockVersion(
                BlockId(blk.block_id),
                VersionState.PERSISTENT,
                allocated=True,
                address=(
                    PhysAddr(blk.segment, blk.slot) if blk.has_addr else None
                ),
                successor=BlockId(blk.successor) if blk.successor else None,
                list_id=ListId(blk.list_id) if blk.list_id else None,
                timestamp=blk.timestamp,
            )
        )
    for lst in ckpt.lists:
        lld.ltable.install_persistent(
            ListVersion(
                ListId(lst.list_id),
                VersionState.PERSISTENT,
                allocated=True,
                first=BlockId(lst.first) if lst.first else None,
                last=BlockId(lst.last) if lst.last else None,
                count=lst.count,
                timestamp=lst.timestamp,
            )
        )
    invalid = [seg for seg in segs if status.get(seg) == "invalid"]
    quarantined = [seg for seg in segs if status.get(seg) == "quarantined"]
    report.segments_quarantined = len(quarantined)
    max_seq = ckpt.last_log_seq
    for seg in invalid:
        lld.usage.restore(seg, SegmentState.FREE, -1, 0, 0)
    for seg in quarantined:
        lld.usage.restore(seg, SegmentState.QUARANTINED, -1, 0, 0)
    for seg, (seq, live, total) in ckpt_segments.items():
        lld.usage.restore(seg, SegmentState.DIRTY, seq, live, total)
    for decoded in pending:
        # Provisional: every written slot counted live until the sweep
        # recomputes from the final addresses (verify_lld knows).
        lld.usage.restore(
            decoded.segment_no,
            SegmentState.DIRTY,
            decoded.seq,
            decoded.block_count,
            decoded.block_count,
        )
        if decoded.seq > max_seq:
            max_seq = decoded.seq
    lld._next_block_id = max_block + 1
    lld._next_list_id = max_list + 1
    lld.arus.set_next_id(max_aru + 1)
    lld._next_seq = max_seq + 1
    lld._last_written_seq = max_seq
    lld._ckpt_seq = ckpt.ckpt_seq
    lld._commit_on_disk = committed
    lld._decided_xids = own_decided

    controller = RestoreController(
        lld, report, pending, committed, sweep_orphans
    )
    controller.open_next_block = lld._next_block_id
    controller.open_next_list = lld._next_list_id
    controller.restore_era = set(ckpt_segments) | {
        d.segment_no for d in pending
    }
    lld._restore = controller
    try:
        lld._open_new_buffer()
    except Exception:
        # A completely full disk recovers with no open buffer; the
        # lazy buffer machinery opens one when (and if) space allows.
        pass
    report.phase_us["install"] = clock.now_us - install_start

    report.recovery_time_us = clock.now_us - start_us
    report.ttfr_us = report.recovery_time_us
    report.wall_seconds = time.perf_counter() - wall_start
    report.read_batches = disk.timer.batches - batches_before
    report.batched_runs = disk.timer.batched_runs - runs_before
    for phase, us in report.phase_us.items():
        lld.obs.metrics.counter(f"lld.recovery.{phase}_us").add(us)
        lld.obs.record("recovery.phase", phase=phase, us=round(us, 3))
    lld.obs.record(
        "restore.open",
        pending_segments=len(pending),
        ttfr_us=round(report.ttfr_us, 3),
    )
    lld.obs.record(
        "recovery.done",
        segments_replayed=report.segments_replayed,
        arus_committed=report.arus_committed,
        arus_discarded=report.arus_discarded,
        total_us=round(report.recovery_time_us, 3),
    )
    if not pending:
        # Nothing to drain: run the consistency sweep and collapse to
        # normal operation before the first request.
        controller.complete()
    return lld, report
