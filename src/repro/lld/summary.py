"""Segment-summary entries: LLD's on-disk operation log.

The mapping between logical and physical block identifiers, and all
list information, is contained in the segment summaries; the
in-memory tables can be reconstructed by scanning them (Section 2).
Entries produced inside an ARU carry the ARU's identifier as a tag;
recovery only applies tagged entries whose ARU has a flushed COMMIT
entry.  Simple operations are tagged ``0`` and are valid as soon as
their segment is on disk.

The COMMIT entry is deliberately compact (25 bytes): Section 5.3
reports that beginning and ending an ARU 500,000 times writes 24
segments of commit records, i.e. ~25 bytes per commit in 0.5 MB
segments.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import Iterator, List, Tuple


class EntryKind(enum.IntEnum):
    """Operation kinds recorded in segment summaries."""

    #: Block data written: ``a`` = block id, ``b`` = data slot.
    WRITE = 1
    #: Block allocated (always committed immediately): ``a`` = block
    #: id, ``b`` = the list it was allocated for (informational).
    ALLOC_BLOCK = 2
    #: Block removed from its list and deallocated: ``a`` = block id,
    #: ``b`` = the list it was removed from (0 = none; informational
    #: for replay, load-bearing for instant restore's per-list index).
    DELETE_BLOCK = 3
    #: List allocated: ``a`` = list id.
    NEW_LIST = 4
    #: List deallocated along with remaining members: ``a`` = list id.
    DELETE_LIST = 5
    #: Link record, insert-block-after-predecessor: ``a`` = list id,
    #: ``b`` = block id, ``c`` = predecessor block id (0 = first).
    LINK = 6
    #: ARU commit record: the tag is the committing ARU, ``a`` = the
    #: number of operations the ARU performed (diagnostic).
    COMMIT = 7
    #: Cross-volume prepare record (first phase of a sharded commit):
    #: the tag is the preparing ARU, ``a`` = its operation count,
    #: ``b`` = the coordinator transaction id (xid).  A prepared ARU
    #: commits iff its xid has a durable DECIDE record — on this
    #: volume's own log for the coordinator shard, or supplied to
    #: recovery from the coordinator's log otherwise.
    PREPARE = 8
    #: Coordinator decision record: ``a`` = the xid now decided
    #: committed.  Always tagged 0 (the decision is not itself inside
    #: any ARU); written only on the coordinator volume (shard 0).
    DECIDE = 9


#: struct format of the fixed entry header: kind, aru tag, timestamp.
_HEADER_FMT = "<BQQ"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)

#: Per-kind payload formats (fields a, b, c as needed).
_PAYLOAD_FMT = {
    EntryKind.WRITE: "<QI",
    EntryKind.ALLOC_BLOCK: "<QQ",
    EntryKind.DELETE_BLOCK: "<QQ",
    EntryKind.NEW_LIST: "<Q",
    EntryKind.DELETE_LIST: "<Q",
    EntryKind.LINK: "<QQQ",
    EntryKind.COMMIT: "<Q",
    EntryKind.PREPARE: "<QQ",
    EntryKind.DECIDE: "<Q",
}

_PAYLOAD_FIELDS = {
    EntryKind.WRITE: 2,
    EntryKind.ALLOC_BLOCK: 2,
    EntryKind.DELETE_BLOCK: 2,
    EntryKind.NEW_LIST: 1,
    EntryKind.DELETE_LIST: 1,
    EntryKind.LINK: 3,
    EntryKind.COMMIT: 1,
    EntryKind.PREPARE: 2,
    EntryKind.DECIDE: 1,
}

#: Precompiled whole-entry codecs (header + payload in one struct —
#: "<" formats have no padding, so the concatenation is layout
#: identical to packing header and payload separately).  Keyed by the
#: raw kind byte so the decode loop does a single dict lookup and a
#: single ``unpack_from`` per entry.
_ENTRY_STRUCTS: dict = {
    int(kind): struct.Struct(_HEADER_FMT + _PAYLOAD_FMT[kind][1:])
    for kind in EntryKind
}

_ENTRY_CODECS: dict = {
    raw_kind: (codec, EntryKind(raw_kind), _PAYLOAD_FIELDS[EntryKind(raw_kind)])
    for raw_kind, codec in _ENTRY_STRUCTS.items()
}

#: Raw kind bytes as plain ints, for consumers of the tuple decoder
#: (:func:`decode_entry_tuples`) that dispatch with ``==`` instead of
#: paying an ``EntryKind`` lookup per entry.
KIND_WRITE = int(EntryKind.WRITE)
KIND_ALLOC_BLOCK = int(EntryKind.ALLOC_BLOCK)
KIND_DELETE_BLOCK = int(EntryKind.DELETE_BLOCK)
KIND_NEW_LIST = int(EntryKind.NEW_LIST)
KIND_DELETE_LIST = int(EntryKind.DELETE_LIST)
KIND_LINK = int(EntryKind.LINK)
KIND_COMMIT = int(EntryKind.COMMIT)
KIND_PREPARE = int(EntryKind.PREPARE)
KIND_DECIDE = int(EntryKind.DECIDE)


@dataclasses.dataclass(frozen=True)
class SummaryEntry:
    """One segment-summary entry.

    The meaning of fields ``a``/``b``/``c`` depends on ``kind``; see
    :class:`EntryKind`.  ``aru_tag`` is 0 for simple operations.
    """

    kind: EntryKind
    aru_tag: int
    timestamp: int
    a: int = 0
    b: int = 0
    c: int = 0

    def encoded_size(self) -> int:
        """Size of this entry's on-disk encoding in bytes."""
        return _ENTRY_STRUCTS[int(self.kind)].size

    def encode(self) -> bytes:
        """Serialize to the on-disk representation."""
        codec = _ENTRY_STRUCTS[int(self.kind)]
        fields = (self.a, self.b, self.c)[: _PAYLOAD_FIELDS[self.kind]]
        return codec.pack(self.kind, self.aru_tag, self.timestamp, *fields)


def entry_size(kind: EntryKind) -> int:
    """On-disk size of an entry of ``kind``."""
    return _ENTRY_STRUCTS[int(kind)].size


#: Size of a COMMIT entry; exposed for the ARU-latency analysis.
COMMIT_ENTRY_SIZE = entry_size(EntryKind.COMMIT)


def encode_entries(entries: List[SummaryEntry]) -> bytes:
    """Serialize a summary as the concatenation of its entries."""
    return b"".join(entry.encode() for entry in entries)


def encode_entries_into(
    entries: List[SummaryEntry], buf: bytearray, offset: int
) -> int:
    """Serialize ``entries`` directly into ``buf`` starting at ``offset``.

    Uses ``pack_into`` with the precompiled codecs, so the segment
    buffer is filled in place with no intermediate per-entry byte
    objects.  Returns the offset just past the last entry written.
    """
    structs = _ENTRY_STRUCTS
    nfields = _PAYLOAD_FIELDS
    for entry in entries:
        codec = structs[int(entry.kind)]
        fields = (entry.a, entry.b, entry.c)[: nfields[entry.kind]]
        codec.pack_into(
            buf, offset, entry.kind, entry.aru_tag, entry.timestamp, *fields
        )
        offset += codec.size
    return offset


def decode_entries(raw) -> Iterator[SummaryEntry]:
    """Parse a serialized summary back into entries, in order.

    ``raw`` may be ``bytes`` or any buffer (e.g. a ``memoryview`` into
    a segment image); decoding never copies the underlying bytes.

    This is the *reference* codec: it materializes one frozen
    :class:`SummaryEntry` (with its :class:`EntryKind`) per entry,
    which is convenient but expensive.  Hot paths use
    :func:`decode_entry_tuples` instead; the differential tests in
    ``tests/test_wallclock_fastpath.py`` pin the two decoders to each
    other field for field.

    Raises:
        ValueError: On a malformed entry stream (callers treat the
            whole segment as invalid; the checksum normally catches
            this first).
    """
    offset = 0
    total = len(raw)
    codecs = _ENTRY_CODECS
    while offset < total:
        kind_raw = raw[offset]
        entry = codecs.get(kind_raw)
        if entry is None:
            if offset + _HEADER_SIZE > total:
                raise ValueError("truncated summary entry header")
            raise ValueError(f"unknown summary entry kind {kind_raw}")
        codec, kind, count = entry
        if offset + codec.size > total:
            if offset + _HEADER_SIZE > total:
                raise ValueError("truncated summary entry header")
            raise ValueError("truncated summary entry payload")
        fields: Tuple[int, ...] = codec.unpack_from(raw, offset)
        offset += codec.size
        padded = fields[3:] + (0,) * (3 - count)
        yield SummaryEntry(kind, fields[1], fields[2], *padded)


def decode_entry_tuples(raw) -> List[Tuple[int, ...]]:
    """Batch-decode a serialized summary into raw field tuples.

    Each tuple is exactly what the entry's precompiled struct unpacks:
    ``(kind, aru_tag, timestamp, a[, b[, c]])`` with the payload tail
    cut to the kind's field count (no zero padding).  ``kind`` is the
    raw int byte — compare against the ``KIND_*`` constants.

    This is the wall-clock fast path: one dict lookup and one
    ``unpack_from`` per entry, no dataclass or ``EntryKind``
    construction, the whole summary in a single pass.  It accepts and
    rejects byte-for-byte the same streams as :func:`decode_entries`
    (same ``ValueError`` cases), which the differential tests enforce.
    """
    offset = 0
    total = len(raw)
    codecs = _ENTRY_CODECS
    out: List[Tuple[int, ...]] = []
    append = out.append
    while offset < total:
        kind_raw = raw[offset]
        entry = codecs.get(kind_raw)
        if entry is None:
            if offset + _HEADER_SIZE > total:
                raise ValueError("truncated summary entry header")
            raise ValueError(f"unknown summary entry kind {kind_raw}")
        codec = entry[0]
        end = offset + codec.size
        if end > total:
            if offset + _HEADER_SIZE > total:
                raise ValueError("truncated summary entry header")
            raise ValueError("truncated summary entry payload")
        append(codec.unpack_from(raw, offset))
        offset = end
    return out
