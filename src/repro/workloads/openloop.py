"""Open-loop, arrival-rate-driven transactional workload.

The other workloads in this package are **closed-loop**: each
operation starts when the previous one finishes, so the system under
test sets its own pace and saturation is invisible (`postmark.py`
measures throughput, never backlog).  An open-loop generator instead
fixes an *offered* arrival rate in host wall-clock time and submits a
transaction at every arrival whether or not earlier ones finished.
When the front end saturates, arrivals are shed by admission control
and counted — offered load beyond capacity becomes a measured
quantity instead of a stalled generator.

Workload shape: ``n_tenants`` tenants, each owning a private list of
blocks on its home shard.  Every request is one transaction that
reads and rewrites a few of its tenant's blocks; a ``hot_fraction``
of requests also read-modify-write one globally shared *hot* block,
which manufactures genuine cross-tenant (and cross-lane) lock
conflicts — the contention that exercises wait-die, timestamp
inheritance and the lock-leak fixes under fire.

Deterministic given the seed **in structure** (which tenant, which
blocks, what payload); arrival timing is host wall-clock and shed
counts depend on host speed, which is the nature of an open-loop rig.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import time
from typing import Callable, Dict, List, Optional

from repro.frontend.scheduler import FrontEnd
from repro.ld.types import BlockId


@dataclasses.dataclass
class TenantState:
    """One tenant's provisioned blocks and home placement."""

    name: str
    list_id: int
    blocks: List[BlockId]
    shard: int


@dataclasses.dataclass
class OpenLoopConfig:
    """Shape and rate of one open-loop run."""

    rate: float = 500.0            # offered arrivals per wall second
    n_requests: int = 500          # total arrivals
    n_tenants: int = 16
    blocks_per_tenant: int = 4
    touches_per_request: int = 2   # tenant blocks rewritten per txn
    hot_fraction: float = 0.1      # also hit the shared hot block
    read_fraction: float = 0.25    # pure-read requests
    payload: int = 64
    seed: int = 2026
    pace: bool = True              # False: fire arrivals immediately

    def validate(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        if not 1 <= self.touches_per_request <= self.blocks_per_tenant:
            raise ValueError("touches_per_request out of range")


@dataclasses.dataclass
class OpenLoopResult:
    """What one run offered and what the system did with it."""

    offered: int
    offered_rate: float
    admitted: int
    shed: int
    completed: int
    gave_up: int
    failed: int
    wall_s: float
    achieved_tps: float            # completed per wall second
    hot_value: int                 # final shared-counter value
    frontend: dict                 # FrontEnd.stats() at quiesce


def provision_tenants(
    ld, n_tenants: int, blocks_per_tenant: int, payload: int = 64
) -> Dict[str, TenantState]:
    """Create each tenant's list and blocks (outside any contention).

    The home shard is wherever the volume's round-robin allocator
    placed the tenant's list, so a tenant's private traffic is wholly
    local to one lane.
    """
    from repro.shard.sharded import shard_of

    n_shards = getattr(ld, "n", 1)
    tenants: Dict[str, TenantState] = {}
    for index in range(n_tenants):
        name = f"tenant{index}"
        lst = ld.new_list()
        blocks = [ld.new_block(lst) for _ in range(blocks_per_tenant)]
        for block in blocks:
            ld.write(block, b"\0" * payload)
        tenants[name] = TenantState(
            name=name,
            list_id=int(lst),
            blocks=blocks,
            shard=shard_of(lst, n_shards) if n_shards > 1 else 0,
        )
    ld.flush()
    return tenants


def provision_hot_block(ld, payload: int = 64) -> BlockId:
    """The shared read-modify-write counter every tenant fights over."""
    lst = ld.new_list()
    block = ld.new_block(lst)
    ld.write(block, (0).to_bytes(8, "little").ljust(payload, b"\0"))
    ld.flush()
    return block


@dataclasses.dataclass(frozen=True)
class _RequestPlan:
    """One request's deterministic structure.

    Drawn from the seeded rng in a fixed order, so the *same* plan
    sequence drives the thread and async swarms — the two lane
    implementations see structurally identical offered load and the
    comparison measures scheduling, not workload luck.
    """

    touched: List[BlockId]
    is_read: bool
    hit_hot: bool
    hot_block: Optional[BlockId]
    fill: bytes
    payload: int


def _make_plan(
    tenant: TenantState,
    hot_block: Optional[BlockId],
    rng: random.Random,
    config: OpenLoopConfig,
    stamp: int,
) -> _RequestPlan:
    return _RequestPlan(
        touched=rng.sample(tenant.blocks, config.touches_per_request),
        is_read=rng.random() < config.read_fraction,
        hit_hot=hot_block is not None
        and rng.random() < config.hot_fraction,
        hot_block=hot_block,
        fill=bytes([stamp & 0xFF]) * config.payload,
        payload=config.payload,
    )


def _make_body(plan: _RequestPlan) -> Callable:
    """One request's sync transaction body (pure closure: the body
    may run several times under wait-die retries, so it derives
    everything from its captured plan)."""

    def body(txn):
        total = 0
        for block in plan.touched:
            data = txn.read(block)
            total += data[0] if data else 0
            if not plan.is_read:
                txn.write(block, plan.fill)
        if plan.hit_hot:
            # Cross-tenant conflict point: exclusive via upgrade.
            counter = int.from_bytes(txn.read(plan.hot_block)[:8], "little")
            txn.write(
                plan.hot_block,
                (counter + 1)
                .to_bytes(8, "little")
                .ljust(plan.payload, b"\0"),
            )
        return total

    return body


def _make_async_body(plan: _RequestPlan) -> Callable:
    """The coroutine twin of :func:`_make_body` — byte-for-byte the
    same reads and writes, awaiting each operation so lock waits and
    storage handoffs yield to the event loop."""

    async def body(txn):
        total = 0
        for block in plan.touched:
            data = await txn.read(block)
            total += data[0] if data else 0
            if not plan.is_read:
                await txn.write(block, plan.fill)
        if plan.hit_hot:
            data = await txn.read(plan.hot_block)
            counter = int.from_bytes(data[:8], "little")
            await txn.write(
                plan.hot_block,
                (counter + 1)
                .to_bytes(8, "little")
                .ljust(plan.payload, b"\0"),
            )
        return total

    return body


def run_openloop(
    frontend: FrontEnd,
    tenants: Dict[str, TenantState],
    config: OpenLoopConfig,
    hot_block: Optional[BlockId] = None,
) -> OpenLoopResult:
    """Offer ``n_requests`` arrivals at ``rate`` and drain.

    Arrivals follow a uniform schedule (arrival *i* at ``i/rate``
    seconds); a generator running behind schedule fires immediately
    rather than stretching the experiment — bursts are part of the
    offered load.  Saturated arrivals are shed, not queued.
    """
    config.validate()
    rng = random.Random(config.seed)
    names = sorted(tenants)
    start = time.monotonic()
    interval = 1.0 / config.rate
    shed = 0
    handles = []
    for index in range(config.n_requests):
        if config.pace:
            due = start + index * interval
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        tenant = tenants[names[rng.randrange(len(names))]]
        plan = _make_plan(tenant, hot_block, rng, config, index)
        handle = frontend.try_submit(
            _make_body(plan), tenant.name, shard=tenant.shard
        )
        if handle is None:
            shed += 1
        else:
            handles.append(handle)
    frontend.drain()
    wall_s = time.monotonic() - start
    stats = frontend.stats()
    hot_value = 0
    if hot_block is not None:
        hot_value = int.from_bytes(
            frontend.ld.read(hot_block)[:8], "little"
        )
    completed = sum(1 for handle in handles if handle.state == "done")
    return OpenLoopResult(
        offered=config.n_requests,
        offered_rate=config.rate,
        admitted=len(handles),
        shed=shed,
        completed=completed,
        gave_up=sum(1 for h in handles if h.state == "gave_up"),
        failed=sum(1 for h in handles if h.state == "failed"),
        wall_s=wall_s,
        achieved_tps=completed / wall_s if wall_s else 0.0,
        hot_value=hot_value,
        frontend=stats,
    )


def run_openloop_async(
    frontend,
    tenants: Dict[str, TenantState],
    config: OpenLoopConfig,
    hot_block: Optional[BlockId] = None,
    admit_wait: bool = False,
) -> OpenLoopResult:
    """The coroutine-client swarm: same offered load, on the loop.

    Each arrival spawns one client *coroutine* on the async front
    end's event loop; the client admits itself via ``submit_async``
    (shedding when saturated, matching the threaded generator's
    ``try_submit`` contract — ``admit_wait=True`` makes saturated
    clients poll-wait instead) and awaits its request's outcome.
    Thousands of in-flight clients therefore cost one parked task
    each, which is exactly the concurrency regime the bench pushes
    past 2000.

    The seeded rng draws the identical plan sequence as
    :func:`run_openloop` — tenant choice, blocks touched, read/write
    mix, hot-block hits — so a thread-lane run and an async-lane run
    at the same seed offer structurally identical load.

    ``frontend`` must be an :class:`~repro.frontend.asyncsched.
    AsyncFrontEnd`; call from outside its loop (the swarm is driven
    via ``run_on_loop``).
    """
    from repro.frontend.asyncsched import AsyncFrontEnd

    if not isinstance(frontend, AsyncFrontEnd):
        raise TypeError(
            "run_openloop_async needs an AsyncFrontEnd "
            "(lane_impl='async'); use run_openloop for thread lanes"
        )
    config.validate()
    rng = random.Random(config.seed)
    names = sorted(tenants)
    interval = 1.0 / config.rate
    counts = {"shed": 0, "done": 0, "gave_up": 0, "failed": 0}

    async def client(tenant: TenantState, plan: _RequestPlan) -> None:
        from repro.frontend.scheduler import RequestRejected

        try:
            request = await frontend.submit_async(
                _make_async_body(plan),
                tenant.name,
                shard=tenant.shard,
                wait=admit_wait,
            )
        except RequestRejected:
            counts["shed"] += 1
            return
        try:
            await request.wait_async()
        except BaseException:  # noqa: BLE001 — tallied from state
            pass
        counts[request.state] += 1

    async def swarm() -> float:
        start = time.monotonic()
        clients = []
        for index in range(config.n_requests):
            if config.pace:
                due = start + index * interval
                delay = due - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
            tenant = tenants[names[rng.randrange(len(names))]]
            plan = _make_plan(tenant, hot_block, rng, config, index)
            clients.append(
                asyncio.get_running_loop().create_task(
                    client(tenant, plan)
                )
            )
        await asyncio.gather(*clients)
        return time.monotonic() - start

    wall_s = frontend.run_on_loop(swarm()).result()
    frontend.drain()
    stats = frontend.stats()
    hot_value = 0
    if hot_block is not None:
        hot_value = int.from_bytes(
            frontend.ld.read(hot_block)[:8], "little"
        )
    admitted = config.n_requests - counts["shed"]
    return OpenLoopResult(
        offered=config.n_requests,
        offered_rate=config.rate,
        admitted=admitted,
        shed=counts["shed"],
        completed=counts["done"],
        gave_up=counts["gave_up"],
        failed=counts["failed"],
        wall_s=wall_s,
        achieved_tps=counts["done"] / wall_s if wall_s else 0.0,
        hot_value=hot_value,
        frontend=stats,
    )
