"""Unit tests for segment buffers and the on-disk segment codec."""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.ld.types import BlockId, PhysAddr
from repro.lld.segment import SegmentBuffer, decode_segment
from repro.lld.summary import EntryKind, SummaryEntry


@pytest.fixture
def geo():
    return DiskGeometry.small(num_segments=8)


def _block(geo, fill):
    return bytes([fill]) * geo.block_size


class TestSegmentBuffer:
    def test_empty(self, geo):
        buf = SegmentBuffer(geo, seq=1, segment_no=2)
        assert buf.is_empty
        assert buf.block_count == 0

    def test_add_block_assigns_slots(self, geo):
        buf = SegmentBuffer(geo, 1, 2)
        a = buf.add_block(BlockId(10), _block(geo, 1))
        b = buf.add_block(BlockId(11), _block(geo, 2))
        assert a == PhysAddr(2, 0)
        assert b == PhysAddr(2, 1)
        assert buf.block_count == 2

    def test_rewrite_dedups_in_place(self, geo):
        """Rewriting a block still in the unwritten buffer overwrites
        it in place — the absorption that makes repeated meta-data
        updates cheap."""
        buf = SegmentBuffer(geo, 1, 0)
        first = buf.add_block(BlockId(10), _block(geo, 1))
        second = buf.add_block(BlockId(10), _block(geo, 2))
        assert first == second
        assert buf.block_count == 1
        assert buf.get_block(BlockId(10)) == _block(geo, 2)

    def test_wrong_block_size_rejected(self, geo):
        buf = SegmentBuffer(geo, 1, 0)
        with pytest.raises(ValueError):
            buf.add_block(BlockId(1), b"tiny")

    def test_room_accounting(self, geo):
        buf = SegmentBuffer(geo, 1, 0)
        assert buf.has_room(geo.max_data_blocks, 0)
        assert not buf.has_room(geo.max_data_blocks + 1, 0)
        for index in range(geo.max_data_blocks):
            buf.add_block(BlockId(index + 1), _block(geo, index % 256))
        assert not buf.has_room(1, 0)

    def test_data_and_summary_share_space(self, geo):
        buf = SegmentBuffer(geo, 1, 0)
        entry = SummaryEntry(EntryKind.COMMIT, 1, 1, 0)
        # Fill almost all space with data, leaving less than a block.
        for index in range(geo.max_data_blocks):
            buf.add_block(BlockId(index + 1), _block(geo, 0))
        free = buf.bytes_free()
        assert free < geo.block_size
        n_entries = free // entry.encoded_size()
        for _ in range(n_entries):
            buf.add_entry(entry)
        assert not buf.has_room(0, entry.encoded_size())

    def test_overflow_raises(self, geo):
        buf = SegmentBuffer(geo, 1, 0)
        entry = SummaryEntry(EntryKind.COMMIT, 1, 1, 0)
        while buf.has_room(0, entry.encoded_size()):
            buf.add_entry(entry)
        with pytest.raises(RuntimeError):
            buf.add_entry(entry)


class TestSealAndDecode:
    def test_roundtrip(self, geo):
        buf = SegmentBuffer(geo, seq=7, segment_no=3)
        buf.add_block(BlockId(42), _block(geo, 0xCD))
        buf.add_entry(SummaryEntry(EntryKind.WRITE, 0, 5, 42, 0))
        buf.add_entry(SummaryEntry(EntryKind.COMMIT, 9, 6, 1))
        image = buf.seal()
        assert len(image) == geo.segment_size
        decoded = decode_segment(image, geo, segment_no=3)
        assert decoded is not None
        assert decoded.seq == 7
        assert decoded.block_count == 1
        assert [e.kind for e in decoded.entries] == [
            EntryKind.WRITE,
            EntryKind.COMMIT,
        ]
        assert decoded.slot_data(0) == _block(geo, 0xCD)

    def test_empty_segment_roundtrip(self, geo):
        image = SegmentBuffer(geo, seq=1, segment_no=0).seal()
        decoded = decode_segment(image, geo, 0)
        assert decoded is not None
        assert decoded.entries == []

    def test_never_written_is_invalid(self, geo):
        raw = b"\x00" * geo.segment_size
        assert decode_segment(raw, geo, 0) is None

    def test_torn_write_detected(self, geo):
        buf = SegmentBuffer(geo, 3, 0)
        buf.add_block(BlockId(1), _block(geo, 1))
        buf.add_entry(SummaryEntry(EntryKind.WRITE, 0, 1, 1, 0))
        image = buf.seal()
        torn = image[: geo.segment_size // 2] + b"\x00" * (
            geo.segment_size - geo.segment_size // 2
        )
        assert decode_segment(torn, geo, 0) is None

    def test_single_flipped_bit_detected(self, geo):
        buf = SegmentBuffer(geo, 3, 0)
        buf.add_block(BlockId(1), _block(geo, 1))
        image = bytearray(buf.seal())
        image[100] ^= 0x01
        assert decode_segment(bytes(image), geo, 0) is None

    def test_wrong_length_rejected(self, geo):
        assert decode_segment(b"abc", geo, 0) is None

    def test_slot_out_of_range(self, geo):
        buf = SegmentBuffer(geo, 1, 0)
        buf.add_block(BlockId(1), _block(geo, 1))
        decoded = decode_segment(buf.seal(), geo, 0)
        with pytest.raises(ValueError):
            decoded.slot_data(1)
