"""Regression tests pinning the wall-clock fast paths to their
reference implementations.

The fast paths (zero-copy segment assembly, the tuple summary
decoder, tuple-dispatch replay, the process decode pool, the dense
root tables) exist purely for wall-clock speed; every observable —
platter bytes, decoded fields, recovered state, simulated time — must
be byte-identical to the original code, which is kept in-tree as
oracles (:func:`repro.lld.segment.reference_seal`,
:func:`repro.lld.summary.decode_entries`, ``recover(replay="object")``).
"""

import random

import pytest

from repro.core.records import ChainRoot
from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskCrashedError
from repro.fs import MinixFS
from repro.ld.types import BlockId
from repro.lld.lld import LLD
from repro.lld.maps import _DENSE_SLACK, BlockNumberMap, ListTable
from repro.lld.recovery import recover
from repro.lld.segment import SegmentBuffer, decode_segment, reference_seal
from repro.lld.summary import (
    EntryKind,
    SummaryEntry,
    decode_entries,
    decode_entry_tuples,
    encode_entries,
)


# ----------------------------------------------------------------------
# Zero-copy assembly vs the copy-at-seal oracle
# ----------------------------------------------------------------------


def _filled_buffer(geometry, seed=7):
    """A buffer with a representative mix of payloads and entries."""
    rng = random.Random(seed)
    buf = SegmentBuffer(geometry, seq=42, segment_no=3)
    block_id = 1
    while buf.has_room(1, 64):
        data = bytes(rng.randrange(256) for _ in range(8)) * (
            geometry.block_size // 8
        )
        # Exercise all three input flavors the write path hands over:
        # bytes, bytearray, and a borrowed memoryview.
        flavor = block_id % 3
        if flavor == 1:
            payload = data
        elif flavor == 2:
            payload = bytearray(data)
        else:
            payload = memoryview(data)
        buf.add_block(BlockId(block_id), payload)
        buf.add_entry(
            SummaryEntry(
                EntryKind.WRITE, block_id % 5, block_id * 10, block_id,
                buf.block_count - 1,
            )
        )
        if block_id % 7 == 0:
            buf.add_entry(
                SummaryEntry(EntryKind.COMMIT, block_id % 5, block_id * 10 + 1, 3)
            )
        if block_id % 11 == 0:
            # Overwrite-in-place of an earlier block (dedup path).
            buf.add_block(BlockId(max(1, block_id // 2)), memoryview(data))
        block_id += 1
    return buf


class TestZeroCopyAssembly:
    def test_seal_matches_reference_assembly(self):
        geometry = DiskGeometry.small(block_size=1024)
        buf = _filled_buffer(geometry)
        reference = reference_seal(buf)  # before seal(); does not mutate
        image = buf.seal()
        assert isinstance(image, bytearray)
        assert bytes(image) == reference
        # Both images must decode, and identically.
        fast = decode_segment(bytes(image), geometry, 3)
        ref = decode_segment(reference, geometry, 3)
        assert fast is not None and ref is not None
        assert fast.entry_tuples == ref.entry_tuples
        assert fast.seq == ref.seq == 42

    def test_sealed_buffer_is_frozen_and_not_aliased(self):
        """seal() returns the internal bytearray; safety of that alias
        rests on the buffer refusing every mutation afterwards."""
        geometry = DiskGeometry.small(block_size=1024)
        buf = _filled_buffer(geometry, seed=11)
        reference = reference_seal(buf)
        image = buf.seal()
        snapshot = bytes(image)
        assert buf.is_sealed
        block = bytes(geometry.block_size)
        with pytest.raises(RuntimeError):
            buf.add_block(BlockId(1), block)
        with pytest.raises(RuntimeError):
            buf.add_block(BlockId(10_000), block)  # new block, same answer
        with pytest.raises(RuntimeError):
            buf.add_entry(SummaryEntry(EntryKind.COMMIT, 1, 2, 3))
        with pytest.raises(RuntimeError):
            buf.seal()
        # The rejected mutations must not have touched the image.
        assert bytes(image) == snapshot == reference

    def test_borrowed_views_are_consumed_not_retained(self):
        """A memoryview handed to add_block must be fully consumed
        before return: mutating the source afterwards cannot reach the
        buffer or the sealed image."""
        geometry = DiskGeometry.small(block_size=1024)
        buf = SegmentBuffer(geometry, seq=1, segment_no=0)
        source = bytearray(b"\xaa" * geometry.block_size)
        buf.add_block(BlockId(1), memoryview(source))
        buf.add_entry(SummaryEntry(EntryKind.WRITE, 0, 1, 1, 0))
        source[:] = b"\xbb" * geometry.block_size  # mutate after handoff
        assert buf.get_block(BlockId(1)) == b"\xaa" * geometry.block_size
        image = buf.seal()
        assert bytes(image[: geometry.block_size]) == (
            b"\xaa" * geometry.block_size
        )


# ----------------------------------------------------------------------
# Tuple decoder vs the reference object codec
# ----------------------------------------------------------------------


_PAYLOAD_FIELD_COUNT = {
    EntryKind.WRITE: 2,
    EntryKind.ALLOC_BLOCK: 2,
    EntryKind.DELETE_BLOCK: 2,
    EntryKind.NEW_LIST: 1,
    EntryKind.DELETE_LIST: 1,
    EntryKind.LINK: 3,
    EntryKind.COMMIT: 1,
    EntryKind.PREPARE: 2,
    EntryKind.DECIDE: 1,
}


def _random_entries(rng, count):
    entries = []
    for _ in range(count):
        kind = rng.choice(list(EntryKind))
        # WRITE's second payload field is a 32-bit slot; everything
        # else is 64-bit.
        b_max = 2**32 - 1 if kind is EntryKind.WRITE else 2**63
        entries.append(
            SummaryEntry(
                kind,
                aru_tag=rng.randrange(2**63),
                timestamp=rng.randrange(2**63),
                a=rng.randrange(2**63),
                b=rng.randrange(b_max),
                c=rng.randrange(2**63),
            )
        )
    return entries


class TestDecoderDifferential:
    def test_random_streams_decode_identically(self):
        rng = random.Random(1234)
        for trial in range(25):
            entries = _random_entries(rng, rng.randrange(1, 120))
            raw = encode_entries(entries)
            objects = list(decode_entries(raw))
            tuples = decode_entry_tuples(raw)
            assert len(objects) == len(tuples) == len(entries)
            for original, obj, fields in zip(entries, objects, tuples):
                count = _PAYLOAD_FIELD_COUNT[original.kind]
                expected = (original.a, original.b, original.c)[:count]
                assert obj.kind is original.kind
                assert fields[0] == int(original.kind)
                assert fields[1] == obj.aru_tag == original.aru_tag
                assert fields[2] == obj.timestamp == original.timestamp
                assert fields[3:] == expected
                assert (obj.a, obj.b, obj.c)[:count] == expected

    def test_memoryview_input(self):
        rng = random.Random(9)
        raw = encode_entries(_random_entries(rng, 40))
        view = memoryview(raw)
        assert decode_entry_tuples(view) == decode_entry_tuples(raw)
        assert list(decode_entries(view)) == list(decode_entries(raw))

    @pytest.mark.parametrize("cut", [1, 5, 16, 17, 24])
    def test_truncated_streams_raise_in_both(self, cut):
        entry = SummaryEntry(EntryKind.LINK, 1, 2, 3, 4, 5)
        raw = entry.encode()
        assert cut < len(raw)
        with pytest.raises(ValueError):
            decode_entry_tuples(raw[:cut])
        with pytest.raises(ValueError):
            list(decode_entries(raw[:cut]))

    def test_unknown_kind_raises_in_both(self):
        raw = b"\x7f" + b"\x00" * 24
        with pytest.raises(ValueError):
            decode_entry_tuples(raw)
        with pytest.raises(ValueError):
            list(decode_entries(raw))

    def test_empty_stream(self):
        assert decode_entry_tuples(b"") == []
        assert list(decode_entries(b"")) == []


# ----------------------------------------------------------------------
# Dense root tables
# ----------------------------------------------------------------------


class TestDenseRootTables:
    def test_create_lookup_len_contains(self):
        table = BlockNumberMap()
        assert len(table) == 0
        assert 5 not in table
        assert table.root(5) is None
        root = table.root(5, create=True)
        assert isinstance(root, ChainRoot)
        assert table.root(5) is root
        assert len(table) == 1
        assert 5 in table and 4 not in table

    def test_sparse_spill_for_huge_identifiers(self):
        table = ListTable()
        near = table.root(10, create=True)
        far_id = 10 + _DENSE_SLACK + 100  # beyond the dense growth window
        far = table.root(far_id, create=True)
        assert table.root(far_id) is far
        assert far_id in table
        assert len(table) == 2
        # The dense array must not have been grown out to the outlier.
        assert len(table._dense) <= 10 + _DENSE_SLACK + 1
        assert far_id in table._sparse
        assert table.root(10) is near

    def test_iteration_is_ascending_across_dense_and_sparse(self):
        table = BlockNumberMap()
        huge = [2**40 + 7, 2**40 + 3]
        idents = [9, 2, 5, *huge, 1]
        for ident in idents:
            table.root(ident, create=True)
        seen = [ident for ident, _root in table.items()]
        assert seen == [1, 2, 5, 9, *sorted(huge)]

    def test_drop_if_empty(self):
        table = BlockNumberMap()
        dense_id, sparse_id = 3, 2**40
        for ident in (dense_id, sparse_id):
            table.root(ident, create=True)
        assert len(table) == 2
        for ident in (dense_id, sparse_id):
            table.drop_if_empty(ident)  # roots are empty: both go
            assert ident not in table
        assert len(table) == 0
        table.drop_if_empty(999)  # never-seen ident is a no-op

    def test_drop_keeps_nonempty_roots(self):
        table = BlockNumberMap()
        root = table.root(4, create=True)
        root.persistent = object()
        assert not root.empty
        table.drop_if_empty(4)
        assert 4 in table and len(table) == 1


# ----------------------------------------------------------------------
# Recovery: tuple replay and the process pool vs the object oracle
# ----------------------------------------------------------------------


def build(injector=None, num_segments=96):
    geo = DiskGeometry.small(num_segments=num_segments)
    disk = SimulatedDisk(geo, injector=injector)
    return disk, LLD(disk, checkpoint_slot_segments=2)


def workload(fs):
    for index in range(60):
        path = f"/f{index}"
        fs.create(path)
        fs.write_file(path, f"payload-{index}".encode() * (index % 4 + 1))
        if index % 4 == 1:
            fs.rename(path, f"/r{index}")
        if index % 5 == 2:
            try:
                fs.unlink(f"/f{index - 1}")
            except Exception:
                pass
        if index % 3 == 0:
            fs.sync()
    fs.sync()


def state_fingerprint(lld, report):
    """Everything recovery rebuilds, in comparable form."""
    return {
        "checkpoint": lld.checkpoints._serialize(lld._snapshot_checkpoint()),
        "free_count": lld.usage.free_count,
        "dirty": sorted(lld.usage.dirty_segments()),
        "buffer_segment": (
            lld._buffer.segment_no if lld._buffer is not None else None
        ),
        "next_block": lld._next_block_id,
        "next_list": lld._next_list_id,
        "next_seq": lld._next_seq,
        "commit_on_disk": set(lld._commit_on_disk),
        "report": (
            report.checkpoint_seq,
            report.segments_scanned,
            report.segments_replayed,
            report.segments_invalid,
            report.segments_unreadable,
            report.entries_replayed,
            report.entries_discarded,
            report.replay_conflicts,
            report.arus_committed,
            report.arus_discarded,
            tuple(report.discarded_aru_ids),
            tuple(report.orphan_blocks_freed),
        ),
    }


def _recover_fingerprint(disk, **kwargs):
    lld, report = recover(
        disk.power_cycle(), checkpoint_slot_segments=2, **kwargs
    )
    return state_fingerprint(lld, report), report


class TestReplayByteIdentity:
    def test_clean_shutdown_tuple_vs_object(self):
        disk, ld = build()
        fs = MinixFS.mkfs(ld, n_inodes=256)
        workload(fs)
        tuple_state, tuple_report = _recover_fingerprint(disk, replay="tuple")
        object_state, object_report = _recover_fingerprint(
            disk, replay="object"
        )
        assert tuple_report.replay == "tuple"
        assert object_report.replay == "object"
        assert tuple_state == object_state
        # Simulated recovery time is identical too (tolerance only for
        # float summation order: the two runs start the absolute clock
        # at different magnitudes).
        assert abs(
            tuple_report.recovery_time_us - object_report.recovery_time_us
        ) < 0.01

    @pytest.mark.parametrize("torn", [False, True])
    def test_crash_sweep_tuple_vs_object(self, torn):
        """Sampled crash sweep: at every sampled crash point, tuple
        replay and object replay rebuild identical state from the same
        platter (test_recovery_parallel.py runs the exhaustive sweep
        for serial-vs-parallel; the replay codecs share its workload)."""
        probe, ld = build()
        fs = MinixFS.mkfs(ld, n_inodes=256)
        workload(fs)
        limit = probe.write_count
        assert limit > 10, "workload too small to be interesting"
        for crash_after in range(1, limit + 1, 7):
            injector = FaultInjector(
                CrashPlan(after_writes=crash_after, torn=torn, seed=crash_after)
            )
            disk, ld = build(injector=injector)
            fs = MinixFS.mkfs(ld, n_inodes=256)
            try:
                workload(fs)
                continue  # the budget outlived the workload
            except DiskCrashedError:
                pass
            tuple_state, _ = _recover_fingerprint(disk, replay="tuple")
            object_state, _ = _recover_fingerprint(disk, replay="object")
            assert tuple_state == object_state, (
                f"replay divergence at crash_after={crash_after} torn={torn}"
            )

    def test_data_readable_after_tuple_replay(self):
        disk, ld = build()
        fs = MinixFS.mkfs(ld, n_inodes=256)
        workload(fs)
        lld, report = recover(disk.power_cycle(), checkpoint_slot_segments=2)
        assert report.replay == "tuple"
        mounted = MinixFS.mount(lld)
        for name in mounted.listdir("/"):
            mounted.read_file(f"/{name}")

    def test_invalid_replay_and_executor_rejected(self):
        disk, ld = build()
        ld.flush()
        with pytest.raises(ValueError):
            recover(disk.power_cycle(), replay="bogus")
        with pytest.raises(ValueError):
            recover(disk.power_cycle(), executor="fibers")


class TestProcessExecutor:
    def test_process_pool_state_matches_threads(self):
        disk, ld = build()
        fs = MinixFS.mkfs(ld, n_inodes=256)
        workload(fs)
        thread_state, thread_report = _recover_fingerprint(
            disk, parallel=True, executor="thread"
        )
        process_state, process_report = _recover_fingerprint(
            disk, parallel=True, executor="process"
        )
        assert thread_report.executor == "thread"
        if process_report.executor != "process":
            pytest.skip("process pool unavailable on this host (fell back)")
        assert process_state == thread_state

    def test_executor_config_default(self):
        from repro.lld.config import LLDConfig

        disk, ld = build()
        fs = MinixFS.mkfs(ld, n_inodes=256)
        workload(fs)
        cfg = LLDConfig(recovery_executor="process", checkpoint_slot_segments=2)
        state_cfg, report = _recover_fingerprint(disk, parallel=True, config=cfg)
        state_default, _ = _recover_fingerprint(disk, parallel=True)
        assert report.executor in ("process", "thread")  # thread = fallback
        assert state_cfg == state_default

    def test_invalid_executor_config_rejected(self):
        from repro.lld.config import LLDConfig

        with pytest.raises(ValueError):
            LLDConfig(recovery_executor="fibers").validate()
