"""Shard-loss repair benchmark: time to restore full redundancy.

A 4-shard, rf=2 array is populated, one shard is destroyed, and the
array heals onto a replacement while a light foreground workload
keeps running.  Reported numbers: wall-clock repair time, entities
healed per second, degraded-read overhead while the shard is down,
and the paced repair_step budget that produced them.

Machine-readable results accumulate in
``benchmarks/results/BENCH_shard_repair.json``.
"""

import time

import pytest

from repro.disk.geometry import DiskGeometry
from repro.shard import build_sharded

from benchmarks.conftest import full_scale, report_json, report_table

N_SHARDS = 4
N_LISTS = 40 if full_scale() else 12
BLOCKS_PER_LIST = 25 if full_scale() else 8
PAYLOAD = b"repair-bench-payload".ljust(64, b".")


def build_populated():
    vol = build_sharded(
        N_SHARDS,
        geometry=DiskGeometry.small(num_segments=128),
        checkpoint_slot_segments=2,
        replication_factor=2,
    )
    blocks = []
    for _ in range(N_LISTS):
        lst = vol.new_list()
        for _ in range(BLOCKS_PER_LIST):
            blocks.append(vol.new_block(lst))
    for blk in blocks:
        vol.write(blk, PAYLOAD)
    vol.flush()
    return vol, blocks


def time_reads(vol, blocks, rounds=3):
    start = time.perf_counter()
    for _ in range(rounds):
        for blk in blocks:
            vol.read(blk)
    return (time.perf_counter() - start) / (rounds * len(blocks))


@pytest.mark.benchmark(group="repair")
def test_shard_repair_to_full_redundancy(benchmark):
    vol, blocks = build_populated()
    healthy_read_s = time_reads(vol, blocks)

    vol.lose_shard(1)
    degraded_read_s = time_reads(vol, blocks)

    # Paced repair: fixed step budget, a foreground write between
    # steps so the bench exercises the dirty-recopy path too.
    start = time.perf_counter()
    vol.start_repair(1)
    steps = 0
    while vol.repair_active:
        vol.repair_step(max_ops=32)
        steps += 1
        vol.write(blocks[steps % len(blocks)], PAYLOAD)
    repair_s = time.perf_counter() - start

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    stats = vol.stats()["sharding"]
    assert stats["dead_shards"] == 0
    assert stats["redundancy_full"]
    healed = stats["blocks_healed"] + stats["lists_healed"]
    healed_per_s = healed / repair_s if repair_s else 0.0

    repaired_read_s = time_reads(vol, blocks)
    for blk in blocks:
        assert vol.read(blk).startswith(PAYLOAD)

    rows = [
        ("entities healed", f"{healed}"),
        ("repair wall time", f"{repair_s * 1e3:.1f} ms"),
        ("heal rate", f"{healed_per_s:,.0f} entities/s"),
        ("repair steps (32-op budget)", f"{steps}"),
        ("read latency healthy", f"{healthy_read_s * 1e6:.1f} us"),
        ("read latency degraded", f"{degraded_read_s * 1e6:.1f} us"),
        ("read latency repaired", f"{repaired_read_s * 1e6:.1f} us"),
    ]
    width = max(len(label) for label, _ in rows) + 2
    table = "\n".join(
        [f"Shard repair ({N_SHARDS} shards, rf=2, {len(blocks)} blocks)"]
        + [f"{label.ljust(width)}{value}" for label, value in rows]
    )
    report_table("shard_repair", table)
    report_json(
        "shard_repair",
        {
            "shards": N_SHARDS,
            "replication_factor": 2,
            "blocks": len(blocks),
            "lists": N_LISTS,
            "entities_healed": healed,
            "repair_seconds": repair_s,
            "heal_rate_per_sec": healed_per_s,
            "repair_steps": steps,
            "step_budget_ops": 32,
            "read_us_healthy": healthy_read_s * 1e6,
            "read_us_degraded": degraded_read_s * 1e6,
            "read_us_repaired": repaired_read_s * 1e6,
            "full_scale": full_scale(),
        },
    )
    benchmark.extra_info["heal_rate_per_sec"] = round(healed_per_s)
