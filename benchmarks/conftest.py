"""Benchmark-suite plumbing.

Every benchmark registers a paper-style results table via
:func:`report_table`; a ``pytest_terminal_summary`` hook prints all
of them after the run (outside pytest's output capture), and each
table is also written to ``benchmarks/results/``.

Scale: by default the benchmarks run scaled-down versions of the
paper's experiments (seconds of wall time).  Set ``REPRO_FULL_SCALE=1``
to run the paper's full sizes (10,000/1,000 files, a 78.125 MB file,
500,000 ARU pairs) — minutes of wall time, same shapes.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import List, Tuple

_TABLES: List[Tuple[str, str]] = []

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    """True when the paper's full experiment sizes were requested."""
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")


def report_table(name: str, table: str) -> None:
    """Register a results table for the terminal summary and save it."""
    _TABLES.append((name, table))
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table + "\n", encoding="utf-8")


def report_json(name: str, payload: dict) -> pathlib.Path:
    """Save machine-readable benchmark results.

    Written to ``benchmarks/results/BENCH_<name>.json`` so successive
    PRs accumulate a perf trajectory that scripts (and CI) can diff
    without parsing the human-readable tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def merge_report_json(name: str, section: str, payload: dict) -> pathlib.Path:
    """Set one top-level ``section`` of ``BENCH_<name>.json`` in place.

    Lets several benchmark tests contribute to one artifact (the
    front-end file carries the saturation sweep, the thread-vs-async
    comparison and the maintenance-interference run) without the last
    writer clobbering the others; a missing or unreadable file starts
    fresh.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            merged = {}
    merged[section] = payload
    path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.section("reproduction results (simulated time)")
    for name, table in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"(tables saved under {RESULTS_DIR}; set REPRO_FULL_SCALE=1 for "
        "the paper's full sizes)"
    )
