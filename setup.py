"""Legacy setup shim: enables editable installs on environments whose
setuptools predates PEP 660 (the offline toolchain used here)."""

from setuptools import setup

setup()
