"""Tests for JLD, the journaling overwrite-in-place logical disk.

JLD implements the same interface and ARU semantics as LLD with a
completely different on-disk strategy, so these tests mirror the key
LLD semantic tests and then prove the headline property: MinixFS and
the transaction layer run on it unchanged.
"""

import pytest

from repro.core.visibility import Visibility
from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import (
    BadBlockError,
    BadListError,
    ConcurrencyError,
    DiskCrashedError,
)
from repro.fs import MinixFS, fsck
from repro.jld import JLD, JournalFullError, recover_jld
from repro.ld.types import FIRST


def make_jld(num_segments=96, injector=None, **kwargs):
    geo = DiskGeometry.small(num_segments=num_segments)
    disk = SimulatedDisk(geo, injector=injector)
    kwargs.setdefault("journal_segments", 6)
    kwargs.setdefault("checkpoint_slot_segments", 2)
    return disk, JLD(disk, **kwargs)


JLD_KW = {"journal_segments": 6, "checkpoint_slot_segments": 2}


class TestBasics:
    def test_write_read_roundtrip(self):
        _d, jld = make_jld()
        lst = jld.new_list()
        block = jld.new_block(lst)
        jld.write(block, b"payload")
        assert jld.read(block).startswith(b"payload")

    def test_fresh_block_reads_zero(self):
        _d, jld = make_jld()
        lst = jld.new_list()
        block = jld.new_block(lst)
        assert jld.read(block) == b"\x00" * jld.geometry.block_size

    def test_list_ordering(self):
        _d, jld = make_jld()
        lst = jld.new_list()
        a = jld.new_block(lst)
        b = jld.new_block(lst, predecessor=a)
        c = jld.new_block(lst)
        assert jld.list_blocks(lst) == [c, a, b]

    def test_delete_block_and_list(self):
        _d, jld = make_jld()
        lst = jld.new_list()
        a = jld.new_block(lst)
        b = jld.new_block(lst, predecessor=a)
        jld.delete_block(a)
        assert jld.list_blocks(lst) == [b]
        jld.delete_list(lst)
        with pytest.raises(BadListError):
            jld.list_blocks(lst)
        with pytest.raises(BadBlockError):
            jld.read(b)

    def test_home_slot_reuse_serves_fresh_data(self):
        """A freed home slot handed to a new block must never serve
        the dead block's cached bytes."""
        _d, jld = make_jld()
        lst = jld.new_list()
        a = jld.new_block(lst)
        jld.write(a, b"old-tenant")
        jld.apply()  # home written, cache warm
        assert jld.read(a).startswith(b"old-tenant")
        home = jld.blocks[a].home
        jld.delete_block(a)
        b = jld.new_block(lst)
        assert jld.blocks[b].home == home  # LIFO free list reuses it
        assert jld.read(b) == b"\x00" * jld.geometry.block_size

    def test_reads_after_apply_come_from_home(self):
        _d, jld = make_jld()
        lst = jld.new_list()
        block = jld.new_block(lst)
        jld.write(block, b"homeward")
        applied = jld.apply()
        assert applied == 1
        assert not jld.pending
        jld.cache.invalidate_all()
        assert jld.read(block).startswith(b"homeward")


class TestARUSemantics:
    def test_shadow_isolation(self):
        _d, jld = make_jld()
        lst = jld.new_list()
        block = jld.new_block(lst)
        jld.write(block, b"base")
        a = jld.begin_aru()
        b = jld.begin_aru()
        jld.write(block, b"from-a", aru=a)
        assert jld.read(block, aru=a).startswith(b"from-a")
        assert jld.read(block, aru=b).startswith(b"base")
        assert jld.read(block).startswith(b"base")
        jld.end_aru(a)
        assert jld.read(block).startswith(b"from-a")
        jld.abort_aru(b)

    def test_allocation_commits_immediately(self):
        _d, jld = make_jld()
        lst = jld.new_list()
        a = jld.begin_aru()
        b = jld.begin_aru()
        blocks = {
            jld.new_block(lst, aru=a),
            jld.new_block(lst, aru=b),
            jld.new_block(lst),
        }
        assert len(blocks) == 3
        jld.end_aru(a)
        jld.end_aru(b)

    def test_abort_discards(self):
        _d, jld = make_jld()
        lst = jld.new_list()
        block = jld.new_block(lst)
        jld.write(block, b"keep")
        aru = jld.begin_aru()
        jld.write(block, b"drop", aru=aru)
        jld.delete_block(block, aru=aru)
        jld.abort_aru(aru)
        assert jld.read(block).startswith(b"keep")
        assert jld.list_blocks(lst) == [block]

    def test_conflicting_deletes_raise(self):
        _d, jld = make_jld()
        lst = jld.new_list()
        block = jld.new_block(lst)
        a = jld.begin_aru()
        b = jld.begin_aru()
        jld.delete_block(block, aru=a)
        jld.delete_block(block, aru=b)
        jld.end_aru(a)
        with pytest.raises(ConcurrencyError):
            jld.end_aru(b)

    def test_visibility_options(self):
        for policy, own, other in (
            (Visibility.ARU_LOCAL, b"shadow", b"base"),
            (Visibility.COMMITTED_ONLY, b"base", b"base"),
            (Visibility.MOST_RECENT_SHADOW, b"shadow", b"shadow"),
        ):
            _d, jld = make_jld(visibility=policy)
            lst = jld.new_list()
            block = jld.new_block(lst)
            jld.write(block, b"base")
            writer = jld.begin_aru()
            reader = jld.begin_aru()
            jld.write(block, b"shadow", aru=writer)
            assert jld.read(block, aru=writer).startswith(own), policy
            assert jld.read(block, aru=reader).startswith(other), policy


class TestCrashRecovery:
    def test_committed_flushed_survives(self):
        disk, jld = make_jld()
        lst = jld.new_list()
        aru = jld.begin_aru()
        blocks = [jld.new_block(lst, aru=aru) for _ in range(3)]
        for index, block in enumerate(blocks):
            jld.write(block, f"part-{index}".encode(), aru=aru)
        jld.end_aru(aru)
        jld.flush()
        jld2, report = recover_jld(disk.power_cycle(), **JLD_KW)
        assert report["arus_committed"] == 1
        for index, block in enumerate(blocks):
            assert jld2.read(block).startswith(f"part-{index}".encode())

    def test_uncommitted_undone_and_swept(self):
        disk, jld = make_jld()
        lst = jld.new_list()
        base = jld.new_block(lst)
        jld.write(base, b"base")
        jld.flush()
        aru = jld.begin_aru()
        jld.write(base, b"doomed", aru=aru)
        orphan = jld.new_block(lst, aru=aru)
        jld.flush()
        jld2, report = recover_jld(disk.power_cycle(), **JLD_KW)
        assert jld2.read(base).startswith(b"base")
        assert int(orphan) in report["orphans_freed"]
        assert jld2.list_blocks(lst) == [base]

    def test_recovery_after_apply_and_checkpoint(self):
        disk, jld = make_jld()
        lst = jld.new_list()
        blocks = []
        previous = FIRST
        for index in range(20):
            block = jld.new_block(lst, predecessor=previous)
            jld.write(block, f"v-{index}".encode())
            blocks.append(block)
            previous = block
        jld.apply()
        # Post-checkpoint work.
        jld.write(blocks[0], b"newer")
        jld.flush()
        jld2, report = recover_jld(disk.power_cycle(), **JLD_KW)
        assert report["checkpoint_seq"] >= 1
        assert jld2.read(blocks[0]).startswith(b"newer")
        for index, block in enumerate(blocks[1:], start=1):
            assert jld2.read(block).startswith(f"v-{index}".encode())
        assert jld2.list_blocks(lst) == blocks

    def test_ring_wrap_under_churn(self):
        disk, jld = make_jld(num_segments=128, journal_segments=4)
        lst = jld.new_list()
        blocks = []
        previous = FIRST
        for index in range(30):
            block = jld.new_block(lst, predecessor=previous)
            blocks.append(block)
            previous = block
        # Enough distinct-writes to wrap the 4-segment ring repeatedly.
        for round_no in range(15):
            for index, block in enumerate(blocks):
                jld.write(block, f"r{round_no}-b{index}".encode())
            jld.flush()
        assert jld.applies > 0
        jld2, _report = recover_jld(
            disk.power_cycle(), journal_segments=4, checkpoint_slot_segments=2
        )
        for index, block in enumerate(blocks):
            assert jld2.read(block).startswith(f"r14-b{index}".encode())

    def test_torn_journal_segment_discarded(self):
        injector = FaultInjector(CrashPlan(after_writes=2, torn=True, seed=3))
        disk, jld = make_jld(injector=injector)
        lst = jld.new_list()
        committed = []
        with pytest.raises(DiskCrashedError):
            previous = FIRST
            for index in range(500):
                block = jld.new_block(lst, predecessor=previous)
                jld.write(block, f"d{index}".encode())
                committed.append(block)
                previous = block
                jld.flush()
        jld2, _report = recover_jld(disk.power_cycle(), **JLD_KW)
        survivors = jld2.list_blocks(lst)
        assert survivors == committed[: len(survivors)]
        for index, block in enumerate(survivors):
            assert jld2.read(block).startswith(f"d{index}".encode())

    def test_write_ahead_ordering_protects_homes(self):
        """Crash during an apply pass: homes may be half-updated, but
        every committed write is still reconstructible from the
        journal."""
        disk, jld = make_jld(num_segments=128, journal_segments=4)
        lst = jld.new_list()
        blocks = []
        previous = FIRST
        for index in range(10):
            block = jld.new_block(lst, predecessor=previous)
            jld.write(block, f"stable-{index}".encode())
            blocks.append(block)
            previous = block
        jld.flush()
        # Crash mid-apply: allow a couple of home writes through.
        disk.injector.crash_plan = CrashPlan(after_writes=2)
        disk.injector.writes_seen = 0
        with pytest.raises(DiskCrashedError):
            jld.apply()
        jld2, _report = recover_jld(disk.power_cycle(), **JLD_KW)
        for index, block in enumerate(blocks):
            assert jld2.read(block).startswith(f"stable-{index}".encode())


class TestJournalBounds:
    def test_oversized_aru_rejected(self):
        _d, jld = make_jld(num_segments=128, journal_segments=2)
        lst = jld.new_list()
        blocks = []
        previous = FIRST
        for index in range(64):
            block = jld.new_block(lst, predecessor=previous)
            blocks.append(block)
            previous = block
        jld.apply()
        aru = jld.begin_aru()
        with pytest.raises(JournalFullError):
            for index, block in enumerate(blocks):
                jld.write(block, bytes([index]) * 4096, aru=aru)
            jld.end_aru(aru)


class TestClientsRunUnchanged:
    """The Logical Disk promise: swap the implementation, keep the
    clients."""

    def test_minix_fs_on_jld(self):
        _d, jld = make_jld(num_segments=192)
        fs = MinixFS.mkfs(jld, n_inodes=128)
        fs.mkdir("/docs")
        fs.create("/docs/a.txt")
        fs.write_file("/docs/a.txt", b"same FS, different disk" * 40)
        fs.link("/docs/a.txt", "/docs/b.txt")
        fs.rename("/docs/b.txt", "/top")
        assert fs.read_file("/top").startswith(b"same FS")
        fs.unlink("/docs/a.txt")
        report = fsck(fs)
        assert report.clean, [str(p) for p in report.problems]

    def test_fs_crash_consistency_on_jld(self):
        injector = FaultInjector(CrashPlan(after_writes=6))
        disk, jld = make_jld(num_segments=192, injector=injector)
        fs = MinixFS.mkfs(jld, n_inodes=256)
        with pytest.raises(DiskCrashedError):
            for index in range(500):
                fs.create(f"/f{index}")
                fs.write_file(f"/f{index}", b"x" * 3000)
                if index % 2:
                    fs.sync()
        jld2, _report = recover_jld(disk.power_cycle(), **JLD_KW)
        mounted = MinixFS.mount(jld2)
        report = fsck(mounted)
        assert report.clean, [str(p) for p in report.problems]

    def test_transactions_on_jld(self):
        from repro.txn import TransactionManager, run_transaction

        _d, jld = make_jld(num_segments=128)
        manager = TransactionManager(jld)
        with manager.begin(durable=False) as txn:
            lst = txn.new_list()
            a = txn.new_block(lst)
            b = txn.new_block(lst, predecessor=a)
            txn.write(a, (100).to_bytes(8, "little"))
            txn.write(b, (50).to_bytes(8, "little"))

        def transfer(txn):
            x = int.from_bytes(txn.read(a)[:8], "little")
            y = int.from_bytes(txn.read(b)[:8], "little")
            txn.write(a, (x - 30).to_bytes(8, "little"))
            txn.write(b, (y + 30).to_bytes(8, "little"))

        run_transaction(manager, transfer, durable=False)
        assert int.from_bytes(jld.read(a)[:8], "little") == 70
        assert int.from_bytes(jld.read(b)[:8], "little") == 80
