"""The per-ARU list-operation log (Section 4).

List operations inside an ARU execute against the ARU's shadow state
but generate *no* segment-summary entries — concurrent ARUs may hold
different shadow versions of the same list, and logging their link
records eagerly could leave inconsistent list information in the
summaries.  Instead every list operation is appended to the owning
ARU's in-memory list-operation log.  On commit the log is re-executed
in original order against the committed state, and only then are the
summary (link) records generated, followed by the ARU's commit
record.

This re-execution is the dominant cost of concurrent ARUs for
meta-data heavy workloads (the file-deletion overhead of Figure 5
comes from running predecessor searches twice: once in the shadow
state, once at replay).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List, Optional

from repro.ld.types import BlockId, ListId


class ListOpKind(enum.Enum):
    """The loggable list operations."""

    #: Insert ``block_id`` into ``list_id`` after ``predecessor``
    #: (``None`` means at the beginning of the list).
    INSERT = "insert"
    #: Remove ``block_id`` from ``list_id`` and deallocate it.
    DELETE_BLOCK = "delete_block"
    #: Deallocate ``list_id`` and all its remaining member blocks.
    DELETE_LIST = "delete_list"


@dataclasses.dataclass(frozen=True)
class ListOp:
    """One log entry: ``insert-block-after-predecessor`` and friends."""

    kind: ListOpKind
    list_id: ListId
    block_id: Optional[BlockId] = None
    predecessor: Optional[BlockId] = None

    def __post_init__(self) -> None:
        if self.kind is not ListOpKind.DELETE_LIST and self.block_id is None:
            raise ValueError(f"{self.kind} requires a block_id")


class ListOpLog:
    """An append-only, replay-in-order log of list operations."""

    def __init__(self) -> None:
        self._ops: List[ListOp] = []

    def append(self, op: ListOp, meter=None) -> None:
        """Append one operation, charging the log-append cost."""
        if meter is not None:
            meter.charge("listop_log_us")
        self._ops.append(op)

    def replay(self) -> Iterator[ListOp]:
        """Yield operations in original execution order."""
        return iter(self._ops)

    def clear(self) -> None:
        """Discard the log (after commit or abort)."""
        self._ops.clear()

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[ListOp]:
        return iter(self._ops)
