"""The flight recorder: a bounded ring buffer of structured events.

Counters answer "how many"; the recorder answers "what just
happened".  Every notable transition — segment seal and drain, ARU
begin/commit/abort, cleaner pass, scrub salvage and quarantine,
recovery phases, crash detection — appends one event, and the ring
keeps the most recent ``capacity`` of them.  Events can be dumped as
JSON lines on demand, and the owning system dumps them automatically
when the disk crashes or verification fails, so the tail of history
that explains a failure is always available.

Like the registry (see :mod:`repro.obs.registry`), the recorder never
touches the simulated clock: it reads ``clock.now_us`` for timestamps
but never advances it and never draws ``tick()`` serials, so enabling
or disabling it cannot change any simulated result.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Iterator, Optional, Tuple


class FlightRecorder:
    """A fixed-capacity ring of ``(seq, t_us, kind, fields)`` events.

    ``seq`` is the recorder's own monotonic sequence number (it keeps
    counting after old events fall off the ring, so ``dropped`` is
    always derivable), and ``t_us`` is the simulated time the event
    was recorded at (0.0 until a clock is bound).
    """

    def __init__(self, capacity: int = 256, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._clock = None
        self._seq = 0
        self._ring: Deque[Tuple[int, float, str, dict]] = deque(
            maxlen=capacity
        )

    def bind_clock(self, clock) -> None:
        """Attach the simulated clock used for event timestamps."""
        self._clock = clock

    def record(self, kind: str, /, **fields) -> None:
        """Append one event; a disabled recorder drops it for free.

        ``kind`` is positional-only so events may carry a field
        literally named ``kind`` (e.g. a quarantine's damage kind).
        """
        if not self.enabled:
            return
        self._seq += 1
        t_us = self._clock.now_us if self._clock is not None else 0.0
        self._ring.append((self._seq, t_us, kind, fields))

    @property
    def recorded(self) -> int:
        """Total events ever recorded, including those dropped."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events that have fallen off the ring."""
        return self._seq - len(self._ring)

    def events(self) -> Iterator[dict]:
        """The retained events, oldest first, as JSON-ready dicts."""
        for seq, t_us, kind, fields in self._ring:
            # Recorder keys win over field names on collision.
            yield {**fields, "seq": seq, "t_us": t_us, "event": kind}

    def dump_jsonl(self, path: str) -> int:
        """Write the retained events to ``path`` as JSON lines.

        Returns the number of events written.  Dumping only reads the
        ring; it cannot perturb the simulation or the disk image.
        """
        count = 0
        with open(path, "w", encoding="utf-8") as out:
            for event in self.events():
                out.write(json.dumps(event, sort_keys=True))
                out.write("\n")
                count += 1
        return count

    def summary(self) -> dict:
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
        }
