"""``lddump`` — inspect a saved logical-disk image.

Usage::

    python -m repro.tools.lddump IMAGE [IMAGE ...] [options]

Several images are treated as the member volumes of a sharded array
(:mod:`repro.shard`) in shard order — each gets its own titled
section (shard 0 is the coordinator; its checkpoints may carry
decided cross-shard transaction ids), and ``--metrics`` emits one
JSON object keyed by shard index.

Options:
    --segments         list every written log segment
    --entries          ... including every summary entry (verbose)
    --limit N          cap the number of segments listed
    --checkpoints      show both checkpoint slots
    --restore          preview instant restore: replay watermark and
                       the pending log suffix before anything replays
    --fs               recover (read-only) and print the file tree
    --metrics          recover (read-only) and print metrics as JSON
    --ckpt-segments N  checkpoint slot size, if non-default

With no options, prints the disk summary plus checkpoints.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.disk.simdisk import SimulatedDisk
from repro.errors import LDError
from repro.tools.inspect import (
    describe_checkpoints,
    describe_disk,
    describe_fs,
    describe_metrics,
    describe_restore,
    describe_segments,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lddump", description="Inspect a saved logical-disk image."
    )
    parser.add_argument(
        "image",
        nargs="+",
        help="image file(s) written by save_image(); several images "
        "are shown as the shards of one array, in shard order",
    )
    parser.add_argument("--segments", action="store_true")
    parser.add_argument("--entries", action="store_true")
    parser.add_argument("--limit", type=int, default=None)
    parser.add_argument("--checkpoints", action="store_true")
    parser.add_argument("--restore", action="store_true")
    parser.add_argument("--fs", action="store_true")
    parser.add_argument("--metrics", action="store_true")
    parser.add_argument("--ckpt-segments", type=int, default=None)
    parser.add_argument(
        "--substrate", choices=["lld", "jld"], default="lld",
        help="recovery procedure for --fs (default: lld)",
    )
    parser.add_argument("--journal-segments", type=int, default=8)
    return parser


def _volume_sections(disk: SimulatedDisk, args) -> List[str]:
    sections = [describe_disk(disk)]
    everything = not (
        args.segments or args.entries or args.fs or args.restore
    )
    if args.checkpoints or everything:
        sections.append(
            describe_checkpoints(disk, slot_segments=args.ckpt_segments)
        )
    if args.restore:
        sections.append(
            describe_restore(disk, slot_segments=args.ckpt_segments)
        )
    if args.segments or args.entries:
        sections.append(
            describe_segments(
                disk,
                slot_segments=args.ckpt_segments,
                entries=args.entries,
                limit=args.limit,
            )
        )
    if args.fs:
        sections.append(
            describe_fs(
                disk,
                slot_segments=args.ckpt_segments,
                substrate=args.substrate,
                journal_segments=args.journal_segments,
            )
        )
    return sections


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    disks: List[SimulatedDisk] = []
    for path in args.image:
        try:
            disks.append(SimulatedDisk.load_image(path))
        except (OSError, LDError) as exc:
            print(f"lddump: {path}: {exc}", file=sys.stderr)
            return 1
    sharded = len(disks) > 1
    if args.metrics:
        # JSON mode: the metrics payload is the whole output, so
        # machine consumers can pipe it straight into a parser.
        if sharded:
            import json

            print(
                json.dumps(
                    {
                        str(index): json.loads(
                            describe_metrics(
                                disk, slot_segments=args.ckpt_segments
                            )
                        )
                        for index, disk in enumerate(disks)
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(
                describe_metrics(disks[0], slot_segments=args.ckpt_segments)
            )
        return 0
    sections: List[str] = []
    if sharded:
        sections.append(
            f"sharded volume: {len(disks)} member images "
            "(shard 0 is the coordinator)"
        )
    for index, (path, disk) in enumerate(zip(args.image, disks)):
        if sharded:
            sections.append(f"--- shard {index}: {path} ---")
        sections.extend(_volume_sections(disk, args))
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
