"""ARU records and the table of active atomic recovery units.

Each active ARU owns (Figure 4 of the paper): a chain of its shadow
block records, a chain of its shadow list records, and its
list-operation log.  The :class:`ARUTable` hands out identifiers,
tracks which ARUs are active, and enforces the concurrency mode
(the "old" prototype supports only sequential — one at a time —
ARUs; the "new" prototype supports arbitrarily many concurrent
ones).
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.core.oplog import ListOpLog
from repro.core.records import StateChain
from repro.errors import BadARUError, ConcurrencyError
from repro.ld.types import ARUId


class ARURecord:
    """Internal state of one active atomic recovery unit."""

    __slots__ = (
        "aru_id",
        "shadow_blocks",
        "shadow_lists",
        "oplog",
        "op_count",
        "begin_timestamp",
    )

    def __init__(self, aru_id: ARUId, begin_timestamp: int) -> None:
        self.aru_id = aru_id
        self.shadow_blocks = StateChain()
        self.shadow_lists = StateChain()
        self.oplog = ListOpLog()
        self.op_count = 0
        self.begin_timestamp = begin_timestamp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ARU {self.aru_id}: {len(self.shadow_blocks)} shadow blocks, "
            f"{len(self.shadow_lists)} shadow lists, "
            f"{len(self.oplog)} logged list ops>"
        )


class ARUTable:
    """Allocates ARU identifiers and tracks active ARUs.

    Args:
        concurrent: When False the table models the original LLD
            prototype and refuses to start a second ARU while one is
            active.
    """

    def __init__(self, concurrent: bool = True, first_id: int = 1) -> None:
        self.concurrent = concurrent
        self._active: Dict[ARUId, ARURecord] = {}
        self._next_id = first_id
        self.total_begun = 0
        self.total_committed = 0
        self.total_aborted = 0

    def begin(self, timestamp: int) -> ARURecord:
        """Start a new ARU and return its record."""
        if not self.concurrent and self._active:
            active = next(iter(self._active))
            raise ConcurrencyError(
                f"sequential-ARU mode: ARU {active} is still active"
            )
        aru_id = ARUId(self._next_id)
        self._next_id += 1
        record = ARURecord(aru_id, timestamp)
        self._active[aru_id] = record
        self.total_begun += 1
        return record

    def get(self, aru_id: ARUId) -> ARURecord:
        """Look up an active ARU, raising :class:`BadARUError` if absent."""
        try:
            return self._active[aru_id]
        except KeyError:
            raise BadARUError(int(aru_id)) from None

    def finish(self, aru_id: ARUId, committed: bool) -> ARURecord:
        """Remove an ARU from the active table (commit or abort)."""
        record = self.get(aru_id)
        del self._active[aru_id]
        if committed:
            self.total_committed += 1
        else:
            self.total_aborted += 1
        return record

    @property
    def next_id(self) -> int:
        """The identifier the next BeginARU will receive."""
        return self._next_id

    def set_next_id(self, next_id: int) -> None:
        """Advance the identifier counter (used after recovery so new
        ARUs never collide with identifiers seen in the log)."""
        self._next_id = max(self._next_id, next_id)

    @property
    def active_count(self) -> int:
        """Number of currently active ARUs."""
        return len(self._active)

    def active_ids(self) -> Iterator[ARUId]:
        """Iterate identifiers of active ARUs."""
        return iter(self._active.keys())

    def __contains__(self, aru_id: ARUId) -> bool:
        return aru_id in self._active
