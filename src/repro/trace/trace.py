"""Trace recording and replay for logical-disk call streams.

The on-disk trace format is line-oriented JSON (one operation per
line) with block payloads hex-encoded; it favors debuggability over
density (a text trace can be inspected, filtered and edited with
ordinary tools).  The first line is a header carrying the format
version and the block size the trace was captured at.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

from repro.errors import LDError
from repro.ld.interface import LogicalDisk
from repro.ld.types import ARUId, BlockId, FIRST, ListId

FORMAT_VERSION = 1

#: Operations that allocate identifiers (their results are remapped).
_ID_RESULTS = {"new_list": "list", "new_block": "block", "begin_aru": "aru"}


@dataclasses.dataclass
class TraceOp:
    """One recorded operation."""

    op: str
    args: Dict[str, Any]
    #: Identifier returned (new_list/new_block/begin_aru), else None.
    result_id: Optional[int] = None
    #: Hex digest of returned data (read), for verification.
    read_hex: Optional[str] = None
    #: Per-block hex digests of returned data (read_many), in call
    #: order, for verification.
    read_many_hex: Optional[List[str]] = None
    #: Error type name when the call raised an LDError.
    error: Optional[str] = None


@dataclasses.dataclass
class Trace:
    """A recorded operation stream."""

    block_size: int
    ops: List[TraceOp] = dataclasses.field(default_factory=list)

    def save(self, path) -> int:
        """Write the trace; returns the number of operations saved."""
        with open(path, "w", encoding="utf-8") as out:
            out.write(
                json.dumps(
                    {"version": FORMAT_VERSION, "block_size": self.block_size}
                )
                + "\n"
            )
            for op in self.ops:
                out.write(json.dumps(dataclasses.asdict(op)) + "\n")
        return len(self.ops)

    @classmethod
    def load(cls, path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as source:
            header = json.loads(source.readline())
            if header.get("version") != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported trace version {header.get('version')}"
                )
            trace = cls(block_size=header["block_size"])
            for line in source:
                if line.strip():
                    trace.ops.append(TraceOp(**json.loads(line)))
        return trace

    def __len__(self) -> int:
        return len(self.ops)


class TraceRecorder:
    """A recording proxy around a logical disk.

    Exposes the same operation set; every call is forwarded and
    recorded (including calls that raise ``LDError`` — the error is
    part of the behaviour a replay must reproduce).
    """

    def __init__(self, ld: LogicalDisk) -> None:
        self.ld = ld
        self.trace = Trace(block_size=ld.geometry.block_size)  # type: ignore[attr-defined]

    # -- recording helper ---------------------------------------------

    def _record(self, op: str, args: Dict[str, Any], call):
        entry = TraceOp(op=op, args=args)
        try:
            result = call()
        except LDError as exc:
            entry.error = type(exc).__name__
            self.trace.ops.append(entry)
            raise
        if op in _ID_RESULTS:
            entry.result_id = int(result)
        elif op == "read":
            entry.read_hex = result.hex()
        elif op == "read_many":
            entry.read_many_hex = [data.hex() for data in result]
        self.trace.ops.append(entry)
        return result

    # -- proxied operations --------------------------------------------

    def new_list(self, aru=None):
        return self._record(
            "new_list",
            {"aru": int(aru) if aru is not None else None},
            lambda: self.ld.new_list(aru=aru),
        )

    def new_block(self, list_id, predecessor=FIRST, aru=None):
        return self._record(
            "new_block",
            {
                "list": int(list_id),
                "pred": None if predecessor is FIRST else int(predecessor),
                "aru": int(aru) if aru is not None else None,
            },
            lambda: self.ld.new_block(list_id, predecessor, aru=aru),
        )

    def write(self, block_id, data, aru=None):
        return self._record(
            "write",
            {
                "block": int(block_id),
                "data": data.hex(),
                "aru": int(aru) if aru is not None else None,
            },
            lambda: self.ld.write(block_id, data, aru=aru),
        )

    def read(self, block_id, aru=None):
        return self._record(
            "read",
            {
                "block": int(block_id),
                "aru": int(aru) if aru is not None else None,
            },
            lambda: self.ld.read(block_id, aru=aru),
        )

    def read_many(self, block_ids, aru=None):
        return self._record(
            "read_many",
            {
                "blocks": [int(block_id) for block_id in block_ids],
                "aru": int(aru) if aru is not None else None,
            },
            lambda: self.ld.read_many(block_ids, aru=aru),
        )

    def delete_block(self, block_id, aru=None):
        return self._record(
            "delete_block",
            {
                "block": int(block_id),
                "aru": int(aru) if aru is not None else None,
            },
            lambda: self.ld.delete_block(block_id, aru=aru),
        )

    def delete_list(self, list_id, aru=None):
        return self._record(
            "delete_list",
            {
                "list": int(list_id),
                "aru": int(aru) if aru is not None else None,
            },
            lambda: self.ld.delete_list(list_id, aru=aru),
        )

    def list_blocks(self, list_id, aru=None):
        # Enumeration is read-only and id-valued; recorded without
        # result payload (replay verification uses read()).
        return self._record(
            "list_blocks",
            {
                "list": int(list_id),
                "aru": int(aru) if aru is not None else None,
            },
            lambda: self.ld.list_blocks(list_id, aru=aru),
        )

    def begin_aru(self):
        return self._record("begin_aru", {}, self.ld.begin_aru)

    def end_aru(self, aru):
        return self._record(
            "end_aru", {"aru": int(aru)}, lambda: self.ld.end_aru(aru)
        )

    def abort_aru(self, aru):
        return self._record(
            "abort_aru", {"aru": int(aru)}, lambda: self.ld.abort_aru(aru)
        )

    def flush(self):
        return self._record("flush", {}, self.ld.flush)


class TraceReplayError(LDError):
    """Replay diverged from the recorded behaviour."""


@dataclasses.dataclass
class ReplayResult:
    """Statistics from one replay."""

    ops_replayed: int = 0
    reads_verified: int = 0
    errors_matched: int = 0


def replay_trace(
    trace: Trace, ld: LogicalDisk, verify_reads: bool = True
) -> ReplayResult:
    """Re-execute a trace against ``ld``.

    Identifiers are remapped (the target may allocate differently),
    recorded errors must re-occur identically, and — with
    ``verify_reads`` — every read must return the recorded bytes.
    """
    if trace.block_size != ld.geometry.block_size:  # type: ignore[attr-defined]
        raise TraceReplayError(
            f"trace captured at block size {trace.block_size}, target uses "
            f"{ld.geometry.block_size}"  # type: ignore[attr-defined]
        )
    lists: Dict[int, ListId] = {}
    blocks: Dict[int, BlockId] = {}
    arus: Dict[int, ARUId] = {}
    result = ReplayResult()

    def maru(value):
        return arus[value] if value is not None else None

    for index, entry in enumerate(trace.ops):
        args = entry.args
        try:
            if entry.op == "new_list":
                lists[entry.result_id] = ld.new_list(aru=maru(args["aru"]))
            elif entry.op == "new_block":
                pred = FIRST if args["pred"] is None else blocks[args["pred"]]
                blocks[entry.result_id] = ld.new_block(
                    lists[args["list"]], pred, aru=maru(args["aru"])
                )
            elif entry.op == "write":
                ld.write(
                    blocks[args["block"]],
                    bytes.fromhex(args["data"]),
                    aru=maru(args["aru"]),
                )
            elif entry.op == "read":
                data = ld.read(blocks[args["block"]], aru=maru(args["aru"]))
                if verify_reads and entry.read_hex is not None:
                    if data.hex() != entry.read_hex:
                        raise TraceReplayError(
                            f"op {index}: read of block {args['block']} "
                            "returned different data than recorded"
                        )
                    result.reads_verified += 1
            elif entry.op == "read_many":
                batch = ld.read_many(
                    [blocks[b] for b in args["blocks"]],
                    aru=maru(args["aru"]),
                )
                if verify_reads and entry.read_many_hex is not None:
                    if len(batch) != len(entry.read_many_hex):
                        raise TraceReplayError(
                            f"op {index}: read_many returned {len(batch)} "
                            f"blocks, trace recorded "
                            f"{len(entry.read_many_hex)}"
                        )
                    for pos, (data, want) in enumerate(
                        zip(batch, entry.read_many_hex)
                    ):
                        if data.hex() != want:
                            raise TraceReplayError(
                                f"op {index}: read_many block "
                                f"{args['blocks'][pos]} returned different "
                                "data than recorded"
                            )
                        result.reads_verified += 1
            elif entry.op == "delete_block":
                ld.delete_block(blocks[args["block"]], aru=maru(args["aru"]))
            elif entry.op == "delete_list":
                ld.delete_list(lists[args["list"]], aru=maru(args["aru"]))
            elif entry.op == "list_blocks":
                ld.list_blocks(lists[args["list"]], aru=maru(args["aru"]))
            elif entry.op == "begin_aru":
                arus[entry.result_id] = ld.begin_aru()
            elif entry.op == "end_aru":
                ld.end_aru(arus[args["aru"]])
            elif entry.op == "abort_aru":
                ld.abort_aru(arus[args["aru"]])
            elif entry.op == "flush":
                ld.flush()
            else:
                raise TraceReplayError(f"op {index}: unknown op {entry.op!r}")
        except LDError as exc:
            if isinstance(exc, TraceReplayError):
                raise
            if entry.error != type(exc).__name__:
                raise TraceReplayError(
                    f"op {index} ({entry.op}): raised "
                    f"{type(exc).__name__}, trace recorded "
                    f"{entry.error or 'success'}"
                ) from exc
            result.errors_matched += 1
        else:
            if entry.error is not None:
                raise TraceReplayError(
                    f"op {index} ({entry.op}): succeeded, but the trace "
                    f"recorded {entry.error}"
                )
        result.ops_replayed += 1
    return result
