"""The concurrent multi-tenant front end.

The paper claims ARUs "efficiently support transaction-based systems
as direct disk system clients"; this package is the layer that makes
that claim measurable.  A :class:`~repro.frontend.scheduler.FrontEnd`
admits many concurrent clients, queues their transaction bodies on
per-shard execution lanes over a (possibly sharded) logical disk,
runs them through the wait-die transaction layer
(:mod:`repro.txn`), and applies backpressure when the volume's
write-behind queue or group-commit window saturates.

See ``docs/CONCURRENCY.md`` for the scheduling model and knobs, and
``benchmarks/bench_frontend.py`` for the saturation sweep that drives
it with the open-loop generator (:mod:`repro.workloads.openloop`).
"""

from repro.frontend.scheduler import (
    FrontEnd,
    FrontendConfig,
    Request,
    RequestRejected,
)

__all__ = ["FrontEnd", "FrontendConfig", "Request", "RequestRejected"]
