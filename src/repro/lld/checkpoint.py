"""Checkpoints: bounding the recovery scan and enabling cleaning.

LLD reconstructs its tables by scanning segment summaries.  Without
checkpoints the *whole* log would have to be retained forever — the
cleaner could never reuse a segment whose summary still carried
needed history.  A checkpoint serializes the persistent state (the
block-number-map, the list-table, the segment roster and the
identifier counters) so that:

* recovery loads the newest valid checkpoint and replays only
  segments with a higher log sequence number, and
* the cleaner may free any segment whose summary entries are covered
  by a checkpoint.

Two checkpoint slots at the front of the partition are written
alternately (classic LFS style), so a torn checkpoint write always
leaves the previous checkpoint intact.  Each slot spans a fixed
number of reserved segments sized at initialization for the
worst-case table size.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskFullError

CKPT_MAGIC = b"LCKP"
CKPT_VERSION = 2

#: magic(4s) version(H) pad(H) ckpt_seq(Q) last_log_seq(Q) next_block(Q)
#: next_list(Q) next_aru(Q) n_blocks(Q) n_lists(Q) n_segs(Q) n_decided(Q)
#: total_len(Q) crc(Q)
_HEADER_FMT = "<4sHHQQQQQQQQQQQ"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)

#: one decided coordinator transaction id (cross-volume commit)
_DECIDED_FMT = "<Q"
_DECIDED_SIZE = struct.calcsize(_DECIDED_FMT)

#: block_id succ list_id timestamp segment slot flags
_BLOCK_FMT = "<QQQQIIB"
_BLOCK_SIZE = struct.calcsize(_BLOCK_FMT)
_FLAG_HAS_ADDR = 0x1

#: list_id first last count timestamp
_LIST_FMT = "<QQQQQ"
_LIST_SIZE = struct.calcsize(_LIST_FMT)

#: segment seq live total
_SEG_FMT = "<IQII"
_SEG_SIZE = struct.calcsize(_SEG_FMT)


@dataclasses.dataclass
class BlockSnapshot:
    """Persistent block record as stored in a checkpoint."""

    block_id: int
    successor: int  # 0 = none
    list_id: int  # 0 = none
    timestamp: int
    segment: int
    slot: int
    has_addr: bool


@dataclasses.dataclass
class ListSnapshot:
    """Persistent list record as stored in a checkpoint."""

    list_id: int
    first: int  # 0 = none
    last: int  # 0 = none
    count: int
    timestamp: int


@dataclasses.dataclass
class CheckpointData:
    """A fully parsed checkpoint."""

    ckpt_seq: int
    last_log_seq: int
    next_block_id: int
    next_list_id: int
    next_aru_id: int
    blocks: List[BlockSnapshot]
    lists: List[ListSnapshot]
    #: segment -> (log seq, live slots, total slots)
    segments: Dict[int, Tuple[int, int, int]]
    #: Coordinator transaction ids (cross-volume commits) decided by
    #: this volume whose DECIDE records this checkpoint supersedes.
    #: A participant volume's recovery may still need them to roll a
    #: prepared ARU forward, so they ride in the checkpoint until a
    #: global (all-shard) checkpoint proves every prepare is covered.
    #: Empty on non-coordinator and single-volume disks.
    decided_xids: List[int] = dataclasses.field(default_factory=list)

    @classmethod
    def empty(cls) -> "CheckpointData":
        """The implicit checkpoint of a virgin disk."""
        return cls(
            ckpt_seq=0,
            last_log_seq=0,
            next_block_id=1,
            next_list_id=1,
            next_aru_id=1,
            blocks=[],
            lists=[],
            segments={},
            decided_xids=[],
        )


def default_slot_segments(geometry: DiskGeometry) -> int:
    """Segments to reserve per checkpoint slot for worst-case tables.

    Worst case: every data slot of the partition holds a distinct
    allocated block, each in its own list.
    """
    max_blocks = geometry.max_data_blocks * geometry.num_segments
    payload = (
        _HEADER_SIZE
        + max_blocks * (_BLOCK_SIZE + _LIST_SIZE)
        + geometry.num_segments * _SEG_SIZE
    )
    slots = -(-payload // geometry.segment_size)  # ceil division
    # Never let the checkpoint region eat the partition.
    return max(1, min(slots, geometry.num_segments // 4 or 1))


class CheckpointManager:
    """Writes and loads alternating checkpoints on reserved segments."""

    def __init__(self, disk: SimulatedDisk, slot_segments: int) -> None:
        self.disk = disk
        self.geometry = disk.geometry
        self.slot_segments = slot_segments
        self.last_written_seq = 0

    @property
    def reserved_segments(self) -> int:
        """Total segments reserved at the front of the partition."""
        return 2 * self.slot_segments

    def _slot_base(self, ckpt_seq: int) -> int:
        return (ckpt_seq % 2) * self.slot_segments

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def write(self, data: CheckpointData) -> None:
        """Serialize and write a checkpoint to the next slot.

        Raises:
            DiskFullError: If the serialized checkpoint exceeds the
                reserved slot (tables larger than provisioned).
        """
        payload = self._serialize(data)
        slot_bytes = self.slot_segments * self.geometry.segment_size
        if len(payload) > slot_bytes:
            raise DiskFullError(
                f"checkpoint needs {len(payload)} bytes but the slot holds "
                f"{slot_bytes}; reserve more checkpoint segments"
            )
        padded = payload + b"\x00" * (slot_bytes - len(payload))
        base = self._slot_base(data.ckpt_seq)
        seg_size = self.geometry.segment_size
        for index in range(self.slot_segments):
            chunk = padded[index * seg_size : (index + 1) * seg_size]
            self.disk.write_segment(base + index, chunk)
        self.last_written_seq = data.ckpt_seq

    def _serialize(self, data: CheckpointData) -> bytes:
        body = bytearray()
        for blk in data.blocks:
            flags = _FLAG_HAS_ADDR if blk.has_addr else 0
            body += struct.pack(
                _BLOCK_FMT,
                blk.block_id,
                blk.successor,
                blk.list_id,
                blk.timestamp,
                blk.segment,
                blk.slot,
                flags,
            )
        for lst in data.lists:
            body += struct.pack(
                _LIST_FMT, lst.list_id, lst.first, lst.last, lst.count, lst.timestamp
            )
        for seg, (seq, live, total) in sorted(data.segments.items()):
            body += struct.pack(_SEG_FMT, seg, seq, live, total)
        for xid in sorted(data.decided_xids):
            body += struct.pack(_DECIDED_FMT, xid)
        total_len = _HEADER_SIZE + len(body)
        header = struct.pack(
            _HEADER_FMT,
            CKPT_MAGIC,
            CKPT_VERSION,
            0,
            data.ckpt_seq,
            data.last_log_seq,
            data.next_block_id,
            data.next_list_id,
            data.next_aru_id,
            len(data.blocks),
            len(data.lists),
            len(data.segments),
            len(data.decided_xids),
            total_len,
            0,  # crc placeholder
        )
        crc = zlib.crc32(header[:-8] + bytes(body))
        header = header[:-8] + struct.pack("<Q", crc)
        return header + bytes(body)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self) -> CheckpointData:
        """Return the newest valid checkpoint (or the empty one)."""
        best = CheckpointData.empty()
        for slot in range(2):
            parsed = self._load_slot(slot)
            if parsed is not None and parsed.ckpt_seq > best.ckpt_seq:
                best = parsed
        self.last_written_seq = best.ckpt_seq
        return best

    def _load_slot(self, slot: int) -> Optional[CheckpointData]:
        base = slot * self.slot_segments
        seg_size = self.geometry.segment_size
        try:
            first = self.disk.read_segment(base)
        except Exception:
            return None
        if len(first) < _HEADER_SIZE:
            return None
        try:
            (
                magic,
                version,
                _pad,
                ckpt_seq,
                last_log_seq,
                next_block,
                next_list,
                next_aru,
                n_blocks,
                n_lists,
                n_segs,
                n_decided,
                total_len,
                crc,
            ) = struct.unpack_from(_HEADER_FMT, first, 0)
        except struct.error:
            return None
        if magic != CKPT_MAGIC or version != CKPT_VERSION:
            return None
        if total_len < _HEADER_SIZE or total_len > self.slot_segments * seg_size:
            return None
        raw = bytearray(first)
        chunk = 1
        while len(raw) < total_len:
            try:
                raw += self.disk.read_segment(base + chunk)
            except Exception:
                return None
            chunk += 1
        raw = bytes(raw[:total_len])
        check = raw[: _HEADER_SIZE - 8] + raw[_HEADER_SIZE:]
        if zlib.crc32(check) != crc:
            return None
        expected = (
            _HEADER_SIZE
            + n_blocks * _BLOCK_SIZE
            + n_lists * _LIST_SIZE
            + n_segs * _SEG_SIZE
            + n_decided * _DECIDED_SIZE
        )
        if expected != total_len:
            return None
        offset = _HEADER_SIZE
        blocks: List[BlockSnapshot] = []
        for _ in range(n_blocks):
            bid, succ, lid, ts, seg, slot_no, flags = struct.unpack_from(
                _BLOCK_FMT, raw, offset
            )
            offset += _BLOCK_SIZE
            blocks.append(
                BlockSnapshot(
                    block_id=bid,
                    successor=succ,
                    list_id=lid,
                    timestamp=ts,
                    segment=seg,
                    slot=slot_no,
                    has_addr=bool(flags & _FLAG_HAS_ADDR),
                )
            )
        lists: List[ListSnapshot] = []
        for _ in range(n_lists):
            lid, first_b, last_b, count, ts = struct.unpack_from(
                _LIST_FMT, raw, offset
            )
            offset += _LIST_SIZE
            lists.append(ListSnapshot(lid, first_b, last_b, count, ts))
        segments: Dict[int, Tuple[int, int, int]] = {}
        for _ in range(n_segs):
            seg, seq, live, total = struct.unpack_from(_SEG_FMT, raw, offset)
            offset += _SEG_SIZE
            segments[seg] = (seq, live, total)
        decided: List[int] = []
        for _ in range(n_decided):
            (xid,) = struct.unpack_from(_DECIDED_FMT, raw, offset)
            offset += _DECIDED_SIZE
            decided.append(xid)
        return CheckpointData(
            ckpt_seq=ckpt_seq,
            last_log_seq=last_log_seq,
            next_block_id=next_block,
            next_list_id=next_list,
            next_aru_id=next_aru,
            blocks=blocks,
            lists=lists,
            segments=segments,
            decided_xids=decided,
        )
