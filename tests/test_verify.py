"""Tests for the internal invariant verifier — and, through it,
whole-system invariant checks after every kind of workload."""

import pytest

from repro.core.records import BlockVersion
from repro.core.versions import VersionState
from repro.fs import MinixFS
from repro.ld.types import BlockId
from repro.lld.verify import verify_lld
from repro.workloads.generator import overwrite_pressure, random_fs_ops

from tests.conftest import make_lld


class TestVerifierOnHealthySystems:
    def test_fresh_lld(self, lld):
        assert verify_lld(lld) == []

    def test_after_simple_workload(self, lld):
        lst = lld.new_list()
        a = lld.new_block(lst)
        b = lld.new_block(lst, predecessor=a)
        lld.write(a, b"a")
        lld.write(b, b"b")
        lld.delete_block(a)
        assert verify_lld(lld) == []
        lld.flush()
        assert verify_lld(lld) == []

    def test_with_active_arus(self, lld):
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"base")
        a = lld.begin_aru()
        b = lld.begin_aru()
        lld.write(block, b"sa", aru=a)
        extra = lld.new_block(lst, aru=b)
        lld.write(extra, b"sb", aru=b)
        assert verify_lld(lld) == []
        lld.end_aru(a)
        assert verify_lld(lld) == []
        lld.abort_aru(b)
        assert verify_lld(lld) == []

    def test_after_fs_workload(self):
        lld = make_lld(num_segments=192)
        fs = MinixFS.mkfs(lld, n_inodes=256)
        random_fs_ops(fs, n_ops=120, seed=5)
        fs.sync()
        assert verify_lld(lld) == []

    def test_after_cleaning(self):
        lld = make_lld(num_segments=28, clean_low_water=3, clean_high_water=6)
        overwrite_pressure(lld, working_set_blocks=30, n_writes=400)
        assert lld.cleanings > 0
        problems = verify_lld(lld)
        assert problems == [], problems

    def test_after_recovery(self):
        from repro.lld.recovery import recover

        lld = make_lld(num_segments=96)
        fs = MinixFS.mkfs(lld, n_inodes=128)
        random_fs_ops(fs, n_ops=60, seed=1)
        fs.sync()
        lld2, _report = recover(
            lld.disk.power_cycle(), checkpoint_slot_segments=2
        )
        assert verify_lld(lld2) == []


class TestVerifierDetectsDamage:
    """Seed each corruption class by hand; the verifier must notice —
    otherwise the clean results above prove nothing."""

    def _ready(self):
        lld = make_lld()
        lst = lld.new_list()
        a = lld.new_block(lst)
        b = lld.new_block(lst, predecessor=a)
        lld.write(a, b"a")
        lld.write(b, b"b")
        lld.flush()
        return lld, lst, a, b

    def test_detects_broken_successor(self):
        lld, _lst, a, _b = self._ready()
        lld.bmap.root(a).persistent.successor = BlockId(999)
        assert any("broken" in p for p in verify_lld(lld))

    def test_detects_wrong_count(self):
        lld, lst, _a, _b = self._ready()
        lld.ltable.root(lst).persistent.count = 7
        assert any("claims 7" in p for p in verify_lld(lld))

    def test_detects_wrong_last(self):
        lld, lst, a, _b = self._ready()
        lld.ltable.root(lst).persistent.last = a
        assert any("last" in p for p in verify_lld(lld))

    def test_detects_cycle(self):
        lld, _lst, a, b = self._ready()
        lld.bmap.root(b).persistent.successor = a
        lld.bmap.root(a).persistent.successor = b
        assert any("cyclic" in p or "broken" in p for p in verify_lld(lld))

    def test_detects_usage_mismatch(self):
        lld, _lst, a, _b = self._ready()
        addr = lld.bmap.root(a).persistent.address
        lld.usage.set_live(addr.segment, 9)
        assert any("usage table" in p for p in verify_lld(lld))

    def test_detects_orphaned_chain_record(self):
        lld, _lst, a, _b = self._ready()
        stray = BlockVersion(a, VersionState.COMMITTED)
        lld.bmap.root(a).push_alt(stray)  # not on the committed chain
        assert any("missing from" in p for p in verify_lld(lld))

    def test_detects_mislabeled_map_entry(self):
        lld, _lst, a, _b = self._ready()
        lld.bmap.root(a).persistent.state = VersionState.COMMITTED
        assert any("map entry in state" in p for p in verify_lld(lld))
