"""Maintenance during the storm: cleaner + scrubber interference.

The paper's cleaner and the scrubber normally run when the volume
decides they must (space pressure, degraded reads).  To *measure*
their interference with foreground traffic — the point of the
interference benchmark — they have to run while the front end is
storming, on a schedule the experiment controls.
:class:`MaintenanceDriver` is that schedule: a daemon thread that
periodically calls the volume's public :meth:`~repro.lld.lld.LLD.
clean` and :meth:`~repro.lld.lld.LLD.scrub` entry points (or their
:class:`~repro.shard.sharded.ShardedLLD` array-wide twins).

Each pass takes the volume's own lock, exactly like a foreground
client call — which is precisely the interference being measured: on
the thread front end, workers stall on the lock; on the async front
end, storage-pool threads stall while the event loop keeps admitting
and multiplexing.  The decomposed ``frontend.storage_us`` histogram
is where the stalls land.

A pass racing a deliberate crash (the fault-injection tests) can see
the volume die mid-call; the driver records the failure and stops
rather than letting a maintenance thread's exception escape.
"""

from __future__ import annotations

import threading
from typing import Optional


class MaintenanceDriver:
    """Periodic cleaner/scrubber passes on a live volume.

    Args:
        ld: Any volume with ``clean()``/``scrub()`` (an
            :class:`~repro.lld.lld.LLD` or a
            :class:`~repro.shard.sharded.ShardedLLD`).
        interval_s: Host wall-clock delay between passes.
        clean: Run a cleaner pass each period.
        scrub: Run a scrubber pass each period.

    Use as a context manager around the storm, or call
    :meth:`start`/:meth:`stop` explicitly.  :attr:`passes` counts
    completed maintenance rounds; :attr:`error` holds the exception
    that stopped the driver early, if any.
    """

    def __init__(
        self,
        ld,
        interval_s: float = 0.05,
        clean: bool = True,
        scrub: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.ld = ld
        self.interval_s = interval_s
        self.clean = clean
        self.scrub = scrub
        self.passes = 0
        self.error: Optional[BaseException] = None
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        while not self._wake.wait(self.interval_s):
            try:
                if self.clean:
                    self.ld.clean()
                if self.scrub:
                    self.ld.scrub()
            except BaseException as exc:  # noqa: BLE001 — recorded
                # A crashed / torn-down volume ends maintenance; the
                # experiment reads .error and decides what it means.
                self.error = exc
                return
            self.passes += 1

    def start(self) -> "MaintenanceDriver":
        if self._thread is not None:
            raise RuntimeError("maintenance driver already started")
        self._wake.clear()
        self._thread = threading.Thread(
            target=self._run, name="frontend-maintenance", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._wake.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "MaintenanceDriver":
        return self.start()

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        self.stop()
        return False
