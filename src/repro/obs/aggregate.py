"""Aggregating per-shard ``stats()`` dicts into one schema-shaped view.

A sharded volume (:mod:`repro.shard`) reports one frozen-schema stats
dict per member volume plus an ``aggregate`` section combining them.
The aggregate is itself valid under :data:`~repro.obs.schema.STATS_SCHEMA`
— same keys, same types — so every consumer of single-volume stats
(plots, CI validators, the harness) reads a sharded volume's totals
unchanged.

Combination rules, derived from the schema rather than hand-listed so
new counters aggregate automatically:

* ``INT``/``NUM`` leaves and open counter groups sum across shards;
* ``BOOL`` leaves AND across shards (a feature counts as enabled for
  the array only if every shard has it);
* ``OPT_NUM`` leaves take the minimum of the non-``None`` values
  (``segments.min_fill`` is the array's worst fill), ``None`` if all
  are ``None``;
* ``segments.avg_fill`` is re-derived as the sealed-segment-weighted
  mean, not the mean of means.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.schema import BOOL, INT, NUM, OPT_NUM, STATS_SCHEMA


def _aggregate(schema: dict, dicts: List[dict], path: str) -> dict:
    result: dict = {}
    if set(schema) == {"*"}:
        keys = sorted({key for entry in dicts for key in entry})
        for key in keys:
            result[key] = sum(entry.get(key, 0) for entry in dicts)
        return result
    for key, expected in schema.items():
        where = f"{path}.{key}" if path else key
        values = [entry[key] for entry in dicts]
        if isinstance(expected, dict):
            result[key] = _aggregate(expected, values, where)
        elif where == "segments.avg_fill":
            sealed = [entry["sealed"] for entry in dicts]
            total = sum(sealed)
            result[key] = (
                sum(fill * n for fill, n in zip(values, sealed)) / total
                if total
                else 0.0
            )
        elif expected == BOOL:
            result[key] = all(values)
        elif expected == OPT_NUM:
            present = [value for value in values if value is not None]
            result[key] = min(present) if present else None
        elif expected in (INT, NUM):
            result[key] = sum(values)
        else:
            raise ValueError(f"unknown schema sentinel {expected!r}")
    return result


def aggregate_stats(per_shard: List[dict]) -> dict:
    """Combine per-shard ``stats()`` dicts into one schema-shaped dict.

    Every input must individually conform to the frozen schema (a
    volume's real ``stats()`` output always does); the result then
    conforms too.
    """
    if not per_shard:
        raise ValueError("aggregate_stats needs at least one stats dict")
    return _aggregate(STATS_SCHEMA, list(per_shard), "")
