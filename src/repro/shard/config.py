"""`ArrayConfig`: every knob of a sharded array, in one frozen place.

The array-level counterpart of :class:`~repro.lld.config.LLDConfig`:
replication factor, replica placement policy and repair pacing live
here (per-volume knobs stay in ``LLDConfig``), validated once with
the same contract — an unknown knob raises ``TypeError`` naming the
valid ones, a bad value raises ``ValueError`` at construction, never
deep inside a write path.
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class ArrayConfig:
    """Configuration of a :class:`~repro.shard.sharded.ShardedLLD`.

    Attributes:
        replication_factor: Copies of every block and list across the
            array, the home copy included.  1 (the default) is plain
            striping with no redundancy — exactly the historical
            behavior.  With factor k, each entity homed on shard *s*
            is mirrored on the next k-1 ring peers, and the array
            tolerates the loss of any ``k - 1`` shards with no
            committed-ARU loss.  Requires at least
            ``replication_factor`` shards.
        placement: Replica placement policy.  ``"ring"`` (the only
            policy today) mirrors shard *s* on shards
            ``(s + 1) % n .. (s + k - 1) % n``.
        repair_batch_ops: How many admit/copy operations one
            :meth:`~repro.shard.sharded.ShardedLLD.repair_step` call
            performs — the pacing knob that lets repair run in the
            background between foreground requests instead of
            stop-the-world.
    """

    replication_factor: int = 1
    placement: str = "ring"
    repair_batch_ops: int = 64

    def validate(self) -> "ArrayConfig":
        """Validate every knob; returns self for chaining."""
        if self.replication_factor < 1:
            raise ValueError(
                "replication_factor must be >= 1, got "
                f"{self.replication_factor}"
            )
        if self.placement != "ring":
            raise ValueError(f"unknown placement policy: {self.placement!r}")
        if self.repair_batch_ops < 1:
            raise ValueError(
                f"repair_batch_ops must be >= 1, got {self.repair_batch_ops}"
            )
        return self

    @classmethod
    def from_kwargs(
        cls, config: Optional["ArrayConfig"] = None, **kwargs
    ) -> "ArrayConfig":
        """Build from a base config plus keyword overrides.

        Mirrors :meth:`LLDConfig.from_kwargs`: unknown keywords raise
        ``TypeError`` with the valid knob names.
        """
        base = config if config is not None else cls()
        if not kwargs:
            return base.validate()
        valid = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise TypeError(
                f"unknown array config knob(s): {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(valid))})"
            )
        return dataclasses.replace(base, **kwargs).validate()

    def replace(self, **changes) -> "ArrayConfig":
        """A copy with ``changes`` applied, re-validated."""
        return dataclasses.replace(self, **changes).validate()
