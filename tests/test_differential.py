"""Differential testing: LLD vs JLD must agree on every visible
behaviour.

The two logical disks share nothing but the interface and the ARU
semantics spec; running identical operation sequences against both
and demanding identical outcomes (data read, list contents, raised
errors) is a powerful oracle — any divergence means one of them
violates the semantics of Section 3.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import LDError
from repro.jld import JLD
from repro.ld.types import FIRST
from repro.lld.lld import LLD


def build_pair():
    geo = DiskGeometry.small(num_segments=96)
    lld = LLD(
        SimulatedDisk(geo), checkpoint_slot_segments=2,
        conflict_policy="raise",
    )
    jld = JLD(
        SimulatedDisk(geo), journal_segments=8, checkpoint_slot_segments=2,
        conflict_policy="raise",
    )
    return lld, jld


def run_op(ld, op, state):
    """Execute one abstract op; returns (kind, outcome) where errors
    collapse to their type name."""
    kind = op[0]
    try:
        if kind == "new_list":
            lid = ld.new_list()
            state["lists"].append(lid)
            return ("list", int(lid))
        if kind == "new_block":
            if not state["lists"]:
                return ("skip", None)
            lid = state["lists"][op[1] % len(state["lists"])]
            if state["blocks"] and op[2] % 3 == 0:
                pred = state["blocks"][op[1] % len(state["blocks"])]
                bid = ld.new_block(lid, predecessor=pred, aru=_aru(state, op))
            else:
                bid = ld.new_block(lid, aru=_aru(state, op))
            state["blocks"].append(bid)
            return ("block", int(bid))
        if kind == "write":
            if not state["blocks"]:
                return ("skip", None)
            bid = state["blocks"][op[1] % len(state["blocks"])]
            ld.write(bid, op[3], aru=_aru(state, op))
            return ("ok", None)
        if kind == "read":
            if not state["blocks"]:
                return ("skip", None)
            bid = state["blocks"][op[1] % len(state["blocks"])]
            return ("data", ld.read(bid, aru=_aru(state, op)))
        if kind == "delete_block":
            if not state["blocks"]:
                return ("skip", None)
            bid = state["blocks"][op[1] % len(state["blocks"])]
            ld.delete_block(bid, aru=_aru(state, op))
            return ("ok", None)
        if kind == "delete_list":
            if not state["lists"]:
                return ("skip", None)
            lid = state["lists"][op[1] % len(state["lists"])]
            ld.delete_list(lid, aru=_aru(state, op))
            return ("ok", None)
        if kind == "list_blocks":
            if not state["lists"]:
                return ("skip", None)
            lid = state["lists"][op[1] % len(state["lists"])]
            return (
                "members",
                [int(b) for b in ld.list_blocks(lid, aru=_aru(state, op))],
            )
        if kind == "begin":
            aru = ld.begin_aru()
            state["arus"].append(aru)
            return ("aru", None)
        if kind == "end":
            if not state["arus"]:
                return ("skip", None)
            aru = state["arus"].pop(op[1] % len(state["arus"]))
            ld.end_aru(aru)
            return ("ok", None)
        if kind == "abort":
            if not state["arus"]:
                return ("skip", None)
            aru = state["arus"].pop(op[1] % len(state["arus"]))
            ld.abort_aru(aru)
            return ("ok", None)
        if kind == "flush":
            ld.flush()
            return ("ok", None)
        raise AssertionError(f"unknown op {kind}")
    except LDError as exc:
        return ("error", type(exc).__name__)


def _aru(state, op):
    """Deterministically choose an active ARU (or None) for the op."""
    if len(op) > 2 and op[2] % 2 and state["arus"]:
        return state["arus"][op[2] % len(state["arus"])]
    return None


_op_strategy = st.one_of(
    st.tuples(st.just("new_list")),
    st.tuples(st.just("new_block"), st.integers(0, 30), st.integers(0, 7)),
    st.tuples(
        st.just("write"),
        st.integers(0, 30),
        st.integers(0, 7),
        st.binary(min_size=1, max_size=12),
    ),
    st.tuples(st.just("read"), st.integers(0, 30), st.integers(0, 7)),
    st.tuples(st.just("delete_block"), st.integers(0, 30), st.integers(0, 7)),
    st.tuples(st.just("delete_list"), st.integers(0, 30), st.integers(0, 7)),
    st.tuples(st.just("list_blocks"), st.integers(0, 30), st.integers(0, 7)),
    st.tuples(st.just("begin")),
    st.tuples(st.just("end"), st.integers(0, 3)),
    st.tuples(st.just("abort"), st.integers(0, 3)),
    st.tuples(st.just("flush")),
)


class TestDifferential:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    @given(ops=st.lists(_op_strategy, max_size=60))
    def test_lld_and_jld_agree(self, ops):
        lld, jld = build_pair()
        lld_state = {"lists": [], "blocks": [], "arus": []}
        jld_state = {"lists": [], "blocks": [], "arus": []}
        for index, op in enumerate(ops):
            lld_out = run_op(lld, op, lld_state)
            jld_out = run_op(jld, op, jld_state)
            assert lld_out == jld_out, (
                f"divergence at op {index} {op}: "
                f"LLD -> {lld_out!r}, JLD -> {jld_out!r}"
            )

    def test_agreement_survives_flush_everywhere(self):
        """Hand-built sequence with flushes interleaved at every step."""
        lld, jld = build_pair()
        ids = {}
        for name, ld in (("lld", lld), ("jld", jld)):
            lst = ld.new_list()
            a = ld.new_block(lst)
            ld.flush()
            b = ld.new_block(lst, predecessor=a)
            ld.write(a, b"one")
            ld.flush()
            aru = ld.begin_aru()
            ld.write(b, b"two", aru=aru)
            ld.flush()
            ld.end_aru(aru)
            ld.flush()
            ld.delete_block(a)
            ld.flush()
            ids[name] = (lst, b)
        assert ids["lld"] == ids["jld"]  # identifier streams agree
        lst, b = ids["lld"]
        assert [int(x) for x in lld.list_blocks(lst)] == [
            int(x) for x in jld.list_blocks(lst)
        ]
        assert lld.read(b) == jld.read(b)
