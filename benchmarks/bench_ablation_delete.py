"""Ablation B — deletion policy vs file size (Section 5.3's lesson).

The paper's improved deletion ("new, delete") removes the per-block
predecessor searches; the gain grows with list length (more for
10 KB files than 1 KB).  This ablation sweeps file sizes and reports
the deletion overhead of each policy relative to the old prototype,
extending the paper's two data points into a curve.
"""

import pytest

from repro.harness.reporting import format_table, percent_difference
from repro.harness.variants import VARIANTS, build_variant, paper_geometry
from repro.workloads.smallfile import run_small_files

from benchmarks.conftest import full_scale, report_table

FILE_BLOCKS = [1, 2, 4, 8, 16]
N_FILES = 400 if full_scale() else 120


def measure(variant_name: str, blocks: int) -> float:
    _d, _l, fs = build_variant(
        VARIANTS[variant_name],
        geometry=paper_geometry(0.5),
        n_inodes=max(256, N_FILES + 64),
    )
    result = run_small_files(fs, N_FILES, blocks * 4096)
    return result.delete_fps


@pytest.mark.benchmark(group="ablation-delete")
def test_delete_policy_sweep(benchmark):
    def run():
        rows = {"new (per-block)": [], "new,delete (whole-list)": []}
        for blocks in FILE_BLOCKS:
            old = measure("old", blocks)
            rows["new (per-block)"].append(
                percent_difference(old, measure("new", blocks))
            )
            rows["new,delete (whole-list)"].append(
                percent_difference(old, measure("new_delete", blocks))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Ablation B — deletion overhead vs file size "
        "(% slower than 'old', simulated)",
        [f"{blocks * 4}KB" for blocks in FILE_BLOCKS],
        rows,
    )
    report_table("ablation_delete", table)
    per_block = rows["new (per-block)"]
    whole_list = rows["new,delete (whole-list)"]
    for index in range(len(FILE_BLOCKS)):
        benchmark.extra_info[f"per_block_{FILE_BLOCKS[index] * 4}kb"] = round(
            per_block[index], 1
        )
        # The improved policy is never worse.
        assert whole_list[index] <= per_block[index] + 1.0
    # The paper's shape: the advantage of whole-list deletion grows
    # with file size (longer predecessor searches avoided).
    gaps = [p - w for p, w in zip(per_block, whole_list)]
    assert gaps[-1] > gaps[0], gaps
