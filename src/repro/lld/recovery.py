"""Crash recovery: rebuilding LLD's state from the disk.

Recovery is always to the most recent *persistent* version
(Section 3.1).  The procedure:

1. Load the newest valid checkpoint (or start from the empty state).
2. Scan every log segment; keep those whose trailer validates and
   whose sequence number exceeds the checkpoint's.  Torn or
   corrupted segments (interrupted writes, media faults) fail the
   CRC and are treated as free space.
3. First pass over the surviving summaries: collect the set of ARU
   identifiers with a flushed COMMIT record.
4. Second pass, in log order: replay entries.  Simple entries
   (tag 0) and block/list *allocations* always apply; entries tagged
   with an ARU apply only if that ARU's commit record was found —
   this is the undo of uncommitted ARUs, by never redoing them.
5. Rebuild the segment-usage table and free anything invalid.
6. Consistency sweep: blocks that remain allocated but belong to no
   list were allocated by ARUs that never committed; free them
   ("A disk consistency check during recovery should free such
   blocks").

The result is a fully operational :class:`~repro.lld.lld.LLD` plus a
:class:`RecoveryReport` describing what was found.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.core.records import BlockVersion, ListVersion
from repro.core.versions import VersionState
from repro.disk.simdisk import SimulatedDisk
from repro.errors import MediaError
from repro.ld.types import ARU_NONE, BlockId, ListId, PhysAddr
from repro.lld.checkpoint import CheckpointData
from repro.lld.lld import LLD
from repro.lld.segment import (
    DecodedSegment,
    FORMAT_VERSION,
    TRAILER_FMT,
    TRAILER_MAGIC,
    decode_segment,
)
from repro.lld.summary import EntryKind, SummaryEntry
from repro.lld.usage import SegmentState


@dataclasses.dataclass
class RecoveryReport:
    """What recovery found and did."""

    checkpoint_seq: int
    segments_scanned: int = 0
    segments_replayed: int = 0
    segments_invalid: int = 0
    segments_unreadable: int = 0
    entries_replayed: int = 0
    entries_discarded: int = 0
    replay_conflicts: int = 0
    arus_committed: int = 0
    arus_discarded: int = 0
    discarded_aru_ids: List[int] = dataclasses.field(default_factory=list)
    orphan_blocks_freed: List[int] = dataclasses.field(default_factory=list)
    recovery_time_us: float = 0.0


def peek_trailer_seq(disk: SimulatedDisk, seg: int) -> Optional[int]:
    """Read just a segment's trailer and return its log sequence
    number, or None when the trailer is not a valid LLD trailer.

    This does not checksum the body; callers must fully decode any
    segment whose contents they intend to replay.
    """
    import struct

    from repro.disk.geometry import TRAILER_SIZE

    geometry = disk.geometry
    raw = disk.read(seg, geometry.segment_size - TRAILER_SIZE, TRAILER_SIZE)
    try:
        magic, version, _pad, seq, *_rest = struct.unpack(TRAILER_FMT, raw)
    except struct.error:  # pragma: no cover - fixed-size read
        return None
    if magic != TRAILER_MAGIC or version != FORMAT_VERSION:
        return None
    return seq


class _ReplayState:
    """Mutable table state during replay (plain dicts for speed)."""

    def __init__(self) -> None:
        # block id -> [allocated, addr(seg,slot) | None, successor|0,
        #              list_id|0, timestamp]
        self.blocks: Dict[int, List] = {}
        self.lists: Dict[int, List] = {}
        self.max_block = 0
        self.max_list = 0
        self.max_aru = 0

    def load_checkpoint(self, ckpt: CheckpointData) -> None:
        for blk in ckpt.blocks:
            addr = (blk.segment, blk.slot) if blk.has_addr else None
            self.blocks[blk.block_id] = [
                True,
                addr,
                blk.successor,
                blk.list_id,
                blk.timestamp,
            ]
        for lst in ckpt.lists:
            self.lists[lst.list_id] = [
                True,
                lst.first,
                lst.last,
                lst.count,
                lst.timestamp,
            ]

    # -- entry application -------------------------------------------

    def apply(self, entry: SummaryEntry, segment_no: int) -> bool:
        """Apply one summary entry; returns False on a conflict."""
        kind = entry.kind
        if kind is EntryKind.WRITE:
            return self._apply_write(entry, segment_no)
        if kind is EntryKind.ALLOC_BLOCK:
            self.blocks[entry.a] = [True, None, 0, 0, entry.timestamp]
            self.max_block = max(self.max_block, entry.a)
            return True
        if kind is EntryKind.DELETE_BLOCK:
            return self._apply_delete_block(entry)
        if kind is EntryKind.NEW_LIST:
            self.lists[entry.a] = [True, 0, 0, 0, entry.timestamp]
            self.max_list = max(self.max_list, entry.a)
            return True
        if kind is EntryKind.DELETE_LIST:
            return self._apply_delete_list(entry)
        if kind is EntryKind.LINK:
            return self._apply_link(entry)
        return True  # COMMIT entries carry no table state

    def _apply_write(self, entry: SummaryEntry, segment_no: int) -> bool:
        blk = self.blocks.get(entry.a)
        if blk is None or not blk[0]:
            return False
        blk[1] = (segment_no, entry.b)
        blk[4] = entry.timestamp
        return True

    def _apply_delete_block(self, entry: SummaryEntry) -> bool:
        blk = self.blocks.get(entry.a)
        if blk is None or not blk[0]:
            return False
        list_id = blk[3]
        if list_id:
            lst = self.lists.get(list_id)
            if lst is not None and lst[0]:
                self._unlink(lst, entry.a)
        del self.blocks[entry.a]
        return True

    def _apply_delete_list(self, entry: SummaryEntry) -> bool:
        lst = self.lists.get(entry.a)
        if lst is None or not lst[0]:
            return False
        cursor = lst[1]
        while cursor:
            member = self.blocks.get(cursor)
            nxt = member[2] if member else 0
            if member is not None:
                del self.blocks[cursor]
            cursor = nxt
        del self.lists[entry.a]
        return True

    def _apply_link(self, entry: SummaryEntry) -> bool:
        lst = self.lists.get(entry.a)
        blk = self.blocks.get(entry.b)
        if lst is None or not lst[0] or blk is None or not blk[0]:
            return False
        if blk[3]:
            return False  # already in a list
        if entry.c == 0:
            blk[2] = lst[1]
            if not lst[1]:
                lst[2] = entry.b
            lst[1] = entry.b
        else:
            pred = self.blocks.get(entry.c)
            if pred is None or not pred[0] or pred[3] != entry.a:
                return False
            blk[2] = pred[2]
            pred[2] = entry.b
            if lst[2] == entry.c:
                lst[2] = entry.b
        blk[3] = entry.a
        lst[3] += 1
        lst[4] = entry.timestamp
        return True

    def _unlink(self, lst: List, block_id: int) -> None:
        """Remove ``block_id`` from list state ``lst`` (best effort)."""
        target = self.blocks.get(block_id)
        successor = target[2] if target else 0
        if lst[1] == block_id:
            lst[1] = successor
            if lst[2] == block_id:
                lst[2] = 0
            lst[3] -= 1
            return
        cursor = lst[1]
        while cursor:
            node = self.blocks.get(cursor)
            if node is None:
                return
            if node[2] == block_id:
                node[2] = successor
                if lst[2] == block_id:
                    lst[2] = cursor
                lst[3] -= 1
                return
            cursor = node[2]

    # -- consistency sweep -------------------------------------------

    def sweep_orphans(self) -> List[int]:
        """Free allocated blocks that are members of no list."""
        members: Set[int] = set()
        for lst in self.lists.values():
            cursor = lst[1]
            while cursor and cursor not in members:
                members.add(cursor)
                node = self.blocks.get(cursor)
                cursor = node[2] if node else 0
        orphans = [
            bid
            for bid, blk in self.blocks.items()
            if blk[0] and bid not in members and not blk[3]
        ]
        for bid in orphans:
            del self.blocks[bid]
        return orphans


def recover(
    disk: SimulatedDisk,
    sweep_orphans: bool = True,
    **lld_kwargs,
) -> Tuple[LLD, RecoveryReport]:
    """Recover an :class:`LLD` instance from a (crashed) disk.

    Accepts the same keyword arguments as :class:`LLD` (mode,
    visibility, cost model, ...).  ``sweep_orphans=False`` skips the
    consistency sweep, exposing the paper's intermediate state where
    blocks allocated by undone ARUs remain allocated.
    """
    start_us = disk.clock.now_us
    lld = LLD(disk, _defer_init=True, **lld_kwargs)
    ckpt = lld.checkpoints.load()
    report = RecoveryReport(checkpoint_seq=ckpt.ckpt_seq)

    state = _ReplayState()
    state.load_checkpoint(ckpt)
    state.max_block = ckpt.next_block_id - 1
    state.max_list = ckpt.next_list_id - 1
    state.max_aru = ckpt.next_aru_id - 1

    # ---- scan segments ---------------------------------------------
    # Trailer-first scan: only segments newer than the checkpoint need
    # their bodies read and checksummed; checkpoint-covered segments
    # are attested by the roster, everything else is free space.  This
    # is what makes checkpoints shrink recovery *time*, not just
    # replay work.
    reserved = lld.checkpoints.reserved_segments
    geometry = disk.geometry
    replayable: List[DecodedSegment] = []
    ckpt_segments: Dict[int, Tuple[int, int, int]] = {}
    invalid: List[int] = []
    for seg in range(reserved, geometry.num_segments):
        report.segments_scanned += 1
        try:
            trailer_seq = peek_trailer_seq(disk, seg)
        except MediaError:
            report.segments_unreadable += 1
            invalid.append(seg)
            continue
        if trailer_seq is None:
            report.segments_invalid += 1
            invalid.append(seg)
            continue
        roster = ckpt.segments.get(seg)
        if trailer_seq > ckpt.last_log_seq:
            try:
                raw = disk.read_segment(seg)
            except MediaError:
                report.segments_unreadable += 1
                invalid.append(seg)
                continue
            decoded = decode_segment(raw, geometry, seg)
            if decoded is None:
                # Valid-looking trailer but a torn/corrupt body.
                report.segments_invalid += 1
                invalid.append(seg)
                continue
            replayable.append(decoded)
        elif roster is not None and roster[0] == trailer_seq:
            ckpt_segments[seg] = roster
        else:
            # Valid trailer but freed before the checkpoint: stale.
            invalid.append(seg)
    replayable.sort(key=lambda d: d.seq)

    # ---- pass 1: committed ARUs ------------------------------------
    committed: Set[int] = set()
    for decoded in replayable:
        for entry in decoded.entries:
            if entry.kind is EntryKind.COMMIT:
                committed.add(entry.aru_tag)
                state.max_aru = max(state.max_aru, entry.aru_tag)
    report.arus_committed = len(committed)

    # ---- pass 2: replay ---------------------------------------------
    discarded_arus: Set[int] = set()
    for decoded in replayable:
        report.segments_replayed += 1
        for entry in decoded.entries:
            state.max_aru = max(state.max_aru, entry.aru_tag)
            tag = entry.aru_tag
            if tag and tag not in committed and entry.kind is not EntryKind.COMMIT:
                report.entries_discarded += 1
                discarded_arus.add(tag)
                continue
            if state.apply(entry, decoded.segment_no):
                report.entries_replayed += 1
            else:
                report.replay_conflicts += 1
    report.arus_discarded = len(discarded_arus)
    report.discarded_aru_ids = sorted(discarded_arus)

    # ---- consistency sweep ------------------------------------------
    if sweep_orphans:
        report.orphan_blocks_freed = sorted(state.sweep_orphans())

    # ---- install tables ----------------------------------------------
    for bid, blk in state.blocks.items():
        record = BlockVersion(
            BlockId(bid),
            VersionState.PERSISTENT,
            allocated=True,
            address=PhysAddr(*blk[1]) if blk[1] is not None else None,
            successor=BlockId(blk[2]) if blk[2] else None,
            list_id=ListId(blk[3]) if blk[3] else None,
            timestamp=blk[4],
        )
        lld.bmap.install_persistent(record)
    for lid, lst in state.lists.items():
        record = ListVersion(
            ListId(lid),
            VersionState.PERSISTENT,
            allocated=True,
            first=BlockId(lst[1]) if lst[1] else None,
            last=BlockId(lst[2]) if lst[2] else None,
            count=lst[3],
            timestamp=lst[4],
        )
        lld.ltable.install_persistent(record)

    # ---- rebuild usage ------------------------------------------------
    live_counts: Dict[int, int] = {}
    for _bid, blk in state.blocks.items():
        if blk[1] is not None:
            live_counts[blk[1][0]] = live_counts.get(blk[1][0], 0) + 1
    max_seq = ckpt.last_log_seq
    for seg in invalid:
        lld.usage.restore(seg, SegmentState.FREE, -1, 0, 0)
    for seg, (seq, _live, total) in ckpt_segments.items():
        lld.usage.restore(
            seg, SegmentState.DIRTY, seq, live_counts.get(seg, 0), total
        )
    for decoded in replayable:
        lld.usage.restore(
            decoded.segment_no,
            SegmentState.DIRTY,
            decoded.seq,
            live_counts.get(decoded.segment_no, 0),
            decoded.block_count,
        )
        max_seq = max(max_seq, decoded.seq)

    # ---- counters and the fresh buffer -------------------------------
    lld._next_block_id = state.max_block + 1
    lld._next_list_id = state.max_list + 1
    lld.arus.set_next_id(state.max_aru + 1)
    lld._next_seq = max_seq + 1
    lld._last_written_seq = max_seq
    lld._ckpt_seq = ckpt.ckpt_seq
    lld._commit_on_disk = committed
    try:
        lld._open_new_buffer()
    except Exception:
        # A completely full disk recovers with no open buffer; the
        # lazy buffer machinery opens one when (and if) space allows
        # — deletions can still run via the emergency reserve.
        pass

    report.recovery_time_us = disk.clock.now_us - start_us
    return lld, report
