"""Experiment runners: one function per paper experiment.

Each runner builds fresh systems for the requested variants, executes
the workload, and returns both the raw per-variant results and a
rendered, paper-style table.  Scale parameters default to sizes that
run in seconds; the benchmark suite passes the paper's full sizes
when ``REPRO_FULL_SCALE`` is set.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.disk.geometry import DiskGeometry
from repro.harness.reporting import format_deltas, format_table
from repro.harness.variants import VARIANTS, Variant, build_variant, paper_geometry
from repro.workloads.arulat import ARULatencyResult, run_aru_latency
from repro.workloads.largefile import LargeFileResult, run_large_file
from repro.workloads.smallfile import SmallFileResult, run_small_files


@dataclasses.dataclass
class Figure5Result:
    """Figure 5: small-file throughput per variant and size class."""

    #: (variant, n_files, file_size) -> phase results
    results: Dict[str, Dict[int, SmallFileResult]]
    table: str


@dataclasses.dataclass
class Figure6Result:
    """Figure 6: large-file throughput, old vs new."""

    results: Dict[str, LargeFileResult]
    table: str


def run_figure5(
    size_classes: Sequence[Dict] = (
        {"n_files": 10_000, "file_size": 1024},
        {"n_files": 1_000, "file_size": 10 * 1024},
    ),
    variants: Sequence[str] = ("old", "new", "new_delete"),
    geometry: Optional[DiskGeometry] = None,
) -> Figure5Result:
    """The small-file experiment for every variant and size class."""
    results: Dict[str, Dict[int, SmallFileResult]] = {}
    for name in variants:
        variant = VARIANTS[name]
        per_size: Dict[int, SmallFileResult] = {}
        for spec in size_classes:
            geo = geometry if geometry is not None else paper_geometry(0.25)
            _disk, _ld, fs = build_variant(
                variant, geometry=geo,
                n_inodes=max(1024, spec["n_files"] + spec["n_files"] // 64 + 64),
            )
            per_size[spec["file_size"]] = run_small_files(
                fs, spec["n_files"], spec["file_size"]
            )
        results[name] = per_size

    columns: List[str] = []
    for spec in size_classes:
        kb = spec["file_size"] // 1024
        columns += [f"C+W {kb}KB", f"R {kb}KB", f"D {kb}KB"]
    rows = {
        name: [
            value
            for spec in size_classes
            for value in (
                results[name][spec["file_size"]].create_write_fps,
                results[name][spec["file_size"]].read_fps,
                results[name][spec["file_size"]].delete_fps,
            )
        ]
        for name in variants
    }
    table = format_table(
        "Figure 5 — small-file throughput (files/second, simulated)",
        columns,
        rows,
        unit="files/second",
    )
    if "old" in rows and len(rows) > 1:
        table += "\n\n" + format_deltas(
            "Concurrency overhead vs the old prototype", "old", columns, rows
        )
    return Figure5Result(results=results, table=table)


def run_figure6(
    file_size: int = 20_000 * 4096,
    variants: Sequence[str] = ("old", "new"),
    geometry: Optional[DiskGeometry] = None,
) -> Figure6Result:
    """The large-file experiment (write1/read1/write2/read2/read3)."""
    results: Dict[str, LargeFileResult] = {}
    for name in variants:
        geo = geometry if geometry is not None else paper_geometry(
            _geometry_scale_for(file_size)
        )
        # Keep the block cache well below the file size, as the
        # paper's 80 MB machine was against its 78 MB file; otherwise
        # the read phases just measure the cache.
        cache_blocks = max(64, min(2048, file_size // geo.block_size // 4))
        _disk, _ld, fs = build_variant(
            VARIANTS[name], geometry=geo, n_inodes=64,
            cache_blocks=cache_blocks,
        )
        results[name] = run_large_file(fs, file_size=file_size)
    columns = ["write1", "read1", "write2", "read2", "read3"]
    rows = {
        name: [results[name].phase(phase) for phase in columns]
        for name in variants
    }
    table = format_table(
        "Figure 6 — large-file throughput (MB/second, simulated)",
        columns,
        rows,
        unit="MB/second",
        precision=3,
    )
    if "old" in rows and len(rows) > 1:
        table += "\n\n" + format_deltas(
            "Concurrency overhead vs the old prototype", "old", columns, rows
        )
    return Figure6Result(results=results, table=table)


def run_aru_latency_experiment(
    iterations: int = 500_000,
    geometry: Optional[DiskGeometry] = None,
) -> ARULatencyResult:
    """The Section 5.3 microbenchmark on the new (concurrent) LLD."""
    geo = geometry if geometry is not None else paper_geometry(0.25)
    _disk, ld, _fs = build_variant(VARIANTS["new"], geometry=geo, n_inodes=64)
    return run_aru_latency(ld, iterations=iterations)


def _geometry_scale_for(file_size: int) -> float:
    """A partition comfortably larger than the benchmark file.

    The large-file experiment rewrites the file once, so the log
    needs roughly 2.5x the file size plus headroom for the cleaner.
    """
    needed_bytes = file_size * 3
    segments = max(64, needed_bytes // (512 * 1024))
    return segments / 800.0
