"""Internal consistency verification for a live LLD instance.

:func:`verify_lld` cross-checks the in-memory structures against each
other and returns a list of human-readable violations (empty = sound):

1. every alternative record hangs off the correct same-identifier
   chain *and* the correct same-state chain (the perpendicular mesh
   of Section 4),
2. persistent block addresses point into on-disk (or current-buffer)
   segments, and the per-segment live counts match the map exactly,
3. every list version is well-formed in its own view: walking
   ``first`` by successors visits ``count`` distinct members, each
   claiming membership of that list, ending at ``last``,
4. ARU shadow chains contain only SHADOW records owned by that ARU.

Tests and the torture example run this after workloads; it is also a
useful debugging aid for anyone extending the write path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.records import BlockVersion, ListVersion
from repro.core.versions import VersionState
from repro.ld.types import ARU_NONE
from repro.lld.usage import SegmentState


def verify_lld(lld) -> List[str]:
    """Return a list of invariant violations (empty when sound)."""
    problems: List[str] = []
    problems += _verify_block_mesh(lld)
    problems += _verify_list_mesh(lld)
    problems += _verify_usage(lld)
    problems += _verify_lists_well_formed(lld)
    problems += _verify_segment_states(lld)
    problems += _verify_restore(lld)
    if problems:
        obs = getattr(lld, "obs", None)
        if obs is not None:
            obs.record("verify.failed", problems=len(problems))
            obs.crash_dump("verify_failed")
    return problems


def _verify_restore(lld) -> List[str]:
    """Instant-restore watermark discipline.

    The controller records a violation whenever a request was served
    while a pending (unreplayed) log segment still named the touched
    id — the one invariant redo-on-demand must never break.  Empty in
    normal operation and after ``complete_restore()``.
    """
    controller = getattr(lld, "_restore", None)
    if controller is None:
        return []
    return list(controller.violations)


def _verify_segment_states(lld) -> List[str]:
    """At most one segment may be CURRENT: the active buffer's.

    Anything else is a leaked segment (a buffer that was opened and
    then abandoned without being written or freed)."""
    problems: List[str] = []
    current = [
        seg
        for seg in range(lld.geometry.num_segments)
        if lld.usage.state(seg) is SegmentState.CURRENT
    ]
    expected = (
        {lld._buffer.segment_no} if lld._buffer is not None else set()
    )
    leaked = [seg for seg in current if seg not in expected]
    if leaked:
        problems.append(f"leaked CURRENT segments: {leaked}")
    queued_table = [
        seg
        for seg in range(lld.geometry.num_segments)
        if lld.usage.state(seg) is SegmentState.QUEUED
    ]
    parked = lld._writeback.pending_segments()
    orphaned = [seg for seg in queued_table if seg not in parked]
    if orphaned:
        problems.append(
            f"QUEUED segments with no parked write-behind image: {orphaned}"
        )
    if (
        lld._buffer is not None
        and lld.usage.state(lld._buffer.segment_no)
        is SegmentState.QUARANTINED
    ):
        problems.append(
            f"current buffer targets quarantined segment "
            f"{lld._buffer.segment_no}"
        )
    return problems


def _collect_state_members(lld):
    committed_blocks = set(map(id, lld.committed_blocks))
    committed_lists = set(map(id, lld.committed_lists))
    shadow_blocks: Dict[int, int] = {}
    shadow_lists: Dict[int, int] = {}
    for aru_id in list(lld.arus.active_ids()):
        record = lld.arus.get(aru_id)
        for version in record.shadow_blocks:
            shadow_blocks[id(version)] = int(aru_id)
        for version in record.shadow_lists:
            shadow_lists[id(version)] = int(aru_id)
    return committed_blocks, committed_lists, shadow_blocks, shadow_lists


def _verify_block_mesh(lld) -> List[str]:
    problems: List[str] = []
    committed, _cl, shadows, _sl = _collect_state_members(lld)
    seen_alt_ids: Set[int] = set()
    for block_id, root in lld.bmap.items():
        persistent = root.persistent
        if persistent is not None:
            if persistent.state is not VersionState.PERSISTENT:
                problems.append(
                    f"block {block_id}: map entry in state "
                    f"{persistent.state.name}"
                )
            if not persistent.allocated:
                problems.append(
                    f"block {block_id}: deallocated record kept in the map"
                )
        for alt in root.iter_alts():
            seen_alt_ids.add(id(alt))
            if alt.block_id != block_id:
                problems.append(
                    f"block {block_id}: chained record names "
                    f"{alt.block_id}"
                )
            if alt.state is VersionState.COMMITTED:
                if id(alt) not in committed:
                    problems.append(
                        f"block {block_id}: committed record missing from "
                        "the committed state chain"
                    )
            elif alt.state is VersionState.SHADOW:
                owner = shadows.get(id(alt))
                if owner is None:
                    problems.append(
                        f"block {block_id}: shadow record missing from any "
                        "ARU's shadow chain"
                    )
                elif owner != int(alt.aru_id):
                    problems.append(
                        f"block {block_id}: shadow record owned by ARU "
                        f"{alt.aru_id} chained under ARU {owner}"
                    )
            else:
                problems.append(
                    f"block {block_id}: persistent record on the alt chain"
                )
    # Reverse direction: every state-chain member must be in the mesh.
    for version in lld.committed_blocks:
        if id(version) not in seen_alt_ids:
            problems.append(
                f"committed block record {version.block_id} missing from "
                "its identifier chain"
            )
    return problems


def _verify_list_mesh(lld) -> List[str]:
    problems: List[str] = []
    _cb, committed, _sb, shadows = _collect_state_members(lld)
    seen_alt_ids: Set[int] = set()
    for list_id, root in lld.ltable.items():
        persistent = root.persistent
        if persistent is not None and persistent.state is not (
            VersionState.PERSISTENT
        ):
            problems.append(
                f"list {list_id}: table entry in state {persistent.state.name}"
            )
        for alt in root.iter_alts():
            seen_alt_ids.add(id(alt))
            if alt.list_id != list_id:
                problems.append(
                    f"list {list_id}: chained record names {alt.list_id}"
                )
            if alt.state is VersionState.COMMITTED and id(alt) not in committed:
                problems.append(
                    f"list {list_id}: committed record missing from the "
                    "committed state chain"
                )
            if alt.state is VersionState.SHADOW and id(alt) not in shadows:
                problems.append(
                    f"list {list_id}: shadow record missing from any ARU"
                )
    for version in lld.committed_lists:
        if id(version) not in seen_alt_ids:
            problems.append(
                f"committed list record {version.list_id} missing from its "
                "identifier chain"
            )
    return problems


def _verify_usage(lld) -> List[str]:
    problems: List[str] = []
    live: Dict[int, int] = {}
    for block_id, persistent in lld.bmap.persistent_blocks():
        addr = persistent.address
        if addr is None:
            continue
        state = lld.usage.state(addr.segment)
        if state is SegmentState.QUARANTINED:
            # A tombstone for a lost block: the data died with the
            # segment, the address stays so reads raise the precise
            # UnrecoverableBlockError.  Not counted live.
            continue
        current = (
            lld._buffer is not None and addr.segment == lld._buffer.segment_no
        )
        if (
            state is not SegmentState.DIRTY
            and state is not SegmentState.QUEUED
            and not current
        ):
            problems.append(
                f"block {block_id}: persistent address {addr} points at a "
                f"{state.value} segment"
            )
        live[addr.segment] = live.get(addr.segment, 0) + 1
    restore = getattr(lld, "_restore", None)
    for seg, live_count, _seq in lld.usage.dirty_segments():
        if restore is not None and seg in restore.restore_era:
            # Mid-restore, restore-era live counts are provisional
            # (pending segments count every written slot live until
            # the sweep recomputes from final addresses); skip them.
            continue
        expected = live.get(seg, 0)
        if live_count != expected:
            problems.append(
                f"segment {seg}: usage table says {live_count} live slots, "
                f"the map references {expected}"
            )
    return problems


def _walk_view(lld, list_version: ListVersion, state: VersionState,
               aru_id) -> Optional[List[int]]:
    """Walk one list view via that view's successor fields."""
    members: List[int] = []
    seen: Set[int] = set()
    cursor = list_version.first
    while cursor is not None:
        if int(cursor) in seen:
            return None  # cycle
        seen.add(int(cursor))
        members.append(int(cursor))
        root = lld.bmap.root(cursor)
        if root is None:
            return None
        if state is VersionState.SHADOW:
            block = root.find(VersionState.SHADOW, aru_id) or root.find(
                VersionState.COMMITTED, ARU_NONE
            ) or root.persistent
        elif state is VersionState.COMMITTED:
            block = root.find(VersionState.COMMITTED, ARU_NONE) or (
                root.persistent
            )
        else:
            # Persistent view.  A member may transiently lack a
            # persistent record while its committed record waits for a
            # later segment (the link folded first); fall back to it.
            block = root.persistent or root.find(
                VersionState.COMMITTED, ARU_NONE
            )
        if block is None:
            return None
        cursor = block.successor
    return members


def _verify_lists_well_formed(lld) -> List[str]:
    problems: List[str] = []
    for list_id, root in lld.ltable.items():
        views = []
        if root.persistent is not None:
            views.append((root.persistent, VersionState.PERSISTENT, ARU_NONE))
        for alt in root.iter_alts():
            views.append((alt, alt.state, alt.aru_id))
        for version, state, aru_id in views:
            if not version.allocated:
                continue
            members = _walk_view(lld, version, state, aru_id)
            if members is None:
                problems.append(
                    f"list {list_id} ({state.name}): broken or cyclic chain"
                )
                continue
            if len(members) != version.count:
                problems.append(
                    f"list {list_id} ({state.name}): walk found "
                    f"{len(members)} members, record claims {version.count}"
                )
            expected_last = members[-1] if members else None
            actual_last = int(version.last) if version.last is not None else None
            if expected_last != actual_last:
                problems.append(
                    f"list {list_id} ({state.name}): last is "
                    f"{version.last}, walk ends at {expected_last}"
                )
    return problems
