"""Tests for hard links (the link-count bookkeeping ARUs protect)."""

import pytest

from repro.errors import (
    FileExistsFSError,
    FileNotFoundFSError,
    IsADirectoryFSError,
)
from repro.fs import MinixFS, fsck

from tests.conftest import make_lld


@pytest.fixture
def fs():
    fs = MinixFS.mkfs(make_lld(num_segments=128), n_inodes=128)
    fs.create("/original")
    fs.write_file("/original", b"shared bytes")
    return fs


class TestHardLinks:
    def test_link_shares_inode_and_data(self, fs):
        fs.link("/original", "/alias")
        assert fs.read_file("/alias") == b"shared bytes"
        assert fs.stat("/alias").ino == fs.stat("/original").ino
        assert fs.stat("/original").nlinks == 2

    def test_write_through_either_name(self, fs):
        fs.link("/original", "/alias")
        fs.write_file("/alias", b"updated")
        assert fs.read_file("/original").startswith(b"updated")

    def test_unlink_one_name_keeps_data(self, fs):
        fs.link("/original", "/alias")
        fs.unlink("/original")
        assert not fs.exists("/original")
        assert fs.read_file("/alias") == b"shared bytes"
        assert fs.stat("/alias").nlinks == 1

    def test_unlink_last_name_frees(self, fs):
        fs.link("/original", "/alias")
        list_id = fs.stat("/original").list_id
        fs.unlink("/original")
        fs.unlink("/alias")
        from repro.errors import BadListError

        with pytest.raises(BadListError):
            fs.ld.list_blocks(list_id)

    def test_link_to_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectoryFSError):
            fs.link("/d", "/dlink")

    def test_link_missing_source(self, fs):
        with pytest.raises(FileNotFoundFSError):
            fs.link("/ghost", "/alias")

    def test_link_over_existing_rejected(self, fs):
        fs.create("/other")
        with pytest.raises(FileExistsFSError):
            fs.link("/original", "/other")

    def test_link_across_directories(self, fs):
        fs.mkdir("/sub")
        fs.link("/original", "/sub/alias")
        assert fs.read_file("/sub/alias") == b"shared bytes"
        assert fsck(fs).clean

    def test_fsck_clean_with_links(self, fs):
        fs.link("/original", "/a1")
        fs.link("/original", "/a2")
        report = fsck(fs)
        assert report.clean, [str(p) for p in report.problems]
        assert report.files == 1  # one i-node, three names

    def test_links_survive_remount(self, fs):
        fs.link("/original", "/alias")
        fs.sync()
        from repro.lld.recovery import recover

        ld2, _ = recover(
            fs.ld.disk.power_cycle(), checkpoint_slot_segments=2
        )
        fs2 = MinixFS.mount(ld2)
        assert fs2.stat("/alias").nlinks == 2
        assert fs2.read_file("/alias") == b"shared bytes"
        assert fsck(fs2).clean

    def test_rename_of_linked_file(self, fs):
        fs.link("/original", "/alias")
        fs.rename("/alias", "/renamed")
        assert fs.read_file("/renamed") == b"shared bytes"
        assert fs.stat("/original").nlinks == 2
        assert fsck(fs).clean
