"""The metrics registry: counters, gauges and latency histograms.

Every subsystem used to keep its own ad-hoc counters (``scrub_stats``
dicts, bare integer attributes, per-queue stat methods); this module
replaces them with one registry of named instruments so ``stats()``
views, JSON artifacts and the harness all read from the same place.

Three instrument kinds cover everything the paper's evaluation needs:

* :class:`Counter` — monotonically increasing totals (ops, segments,
  bytes).  Float increments are allowed (fill ratios, simulated µs).
* :class:`Gauge` — a point-in-time value with min/max tracking
  helpers (queue high-water marks, minimum fill ratio).
* :class:`Histogram` — simulated-clock latency distributions over
  fixed log-spaced (power-of-two) microsecond buckets, so per-op disk
  latencies from different runs are always directly comparable.

Instrumentation must never perturb the simulation: no instrument
touches the :class:`~repro.disk.clock.SimClock` — neither advancing
it nor drawing ``tick()`` serials — so simulated timings are
byte-identical with metrics on, off, or absent.

The disabled fast path: a registry created with ``enabled=False``
hands out shared null instruments whose methods are no-ops, so hot
paths pay one attribute load plus one no-op call and nothing else.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Union

Number = Union[int, float]

#: Histogram bucket upper bounds in simulated microseconds: 1 µs to
#: 2^25 µs (~33.6 s) in powers of two, plus an implicit overflow
#: bucket.  Fixed for every histogram so distributions are comparable
#: across instruments, runs and PRs.
BUCKET_BOUNDS_US = tuple(float(2 ** exp) for exp in range(26))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self) -> None:
        self.value += 1

    def add(self, amount: Number) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value with min/max tracking helpers."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, initial: Optional[Number] = 0) -> None:
        self.name = name
        self.value: Optional[Number] = initial

    def set(self, value: Optional[Number]) -> None:
        self.value = value

    def update_max(self, value: Number) -> None:
        if self.value is None or value > self.value:
            self.value = value

    def update_min(self, value: Number) -> None:
        if self.value is None or value < self.value:
            self.value = value


class Histogram:
    """A latency distribution over the fixed log-spaced buckets."""

    __slots__ = ("name", "count", "total", "max", "counts")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        # One slot per bound plus the overflow bucket.
        self.counts = [0] * (len(BUCKET_BOUNDS_US) + 1)

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        self.counts[bisect_left(BUCKET_BOUNDS_US, value)] += 1

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (``0 < q <= 1``) in microseconds.

        Linear interpolation inside the log-spaced bucket that holds
        the target rank; the overflow bucket reports the observed
        max.  Good to within one bucket's width — exactly the
        resolution the fixed bounds promise.
        """
        return percentile_from_snapshot(self.snapshot(), q)

    def snapshot(self) -> dict:
        """Summary plus the non-empty buckets (``le`` = upper bound in
        simulated µs, ``None`` for the overflow bucket)."""
        buckets: List[dict] = [
            {
                "le": (
                    BUCKET_BOUNDS_US[index]
                    if index < len(BUCKET_BOUNDS_US)
                    else None
                ),
                "count": count,
            }
            for index, count in enumerate(self.counts)
            if count
        ]
        return {
            "count": self.count,
            "total_us": self.total,
            "mean_us": (self.total / self.count) if self.count else 0.0,
            "max_us": self.max,
            "buckets": buckets,
        }


class _NullCounter:
    """No-op counter handed out by a disabled registry."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self) -> None:
        pass

    def add(self, amount: Number) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "<null>"
    value = 0

    def set(self, value: Optional[Number]) -> None:
        pass

    def update_max(self, value: Number) -> None:
        pass

    def update_min(self, value: Number) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "<null>"
    count = 0
    total = 0.0
    max = 0.0

    def observe(self, value: Number) -> None:
        pass

    def snapshot(self) -> dict:
        return {
            "count": 0,
            "total_us": 0.0,
            "mean_us": 0.0,
            "max_us": 0.0,
            "buckets": [],
        }


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


def merge_histogram_snapshots(snapshots) -> dict:
    """Combine histogram snapshots into one distribution.

    All histograms share the fixed :data:`BUCKET_BOUNDS_US`, so
    merging is exact: bucket counts and totals sum, the max is the
    max.  This is how a sharded volume's per-shard ``lld.commit_us``
    histograms become one array-wide latency distribution.
    """
    merged_counts: Dict[Optional[float], int] = {}
    count = 0
    total = 0.0
    peak = 0.0
    for snap in snapshots:
        count += snap["count"]
        total += snap["total_us"]
        peak = max(peak, snap["max_us"])
        for bucket in snap["buckets"]:
            key = bucket["le"]
            merged_counts[key] = merged_counts.get(key, 0) + bucket["count"]
    bounds = [*BUCKET_BOUNDS_US, None]
    buckets = [
        {"le": bound, "count": merged_counts[bound]}
        for bound in bounds
        if bound in merged_counts
    ]
    return {
        "count": count,
        "total_us": total,
        "mean_us": (total / count) if count else 0.0,
        "max_us": peak,
        "buckets": buckets,
    }


def latency_summary(snapshot: dict) -> dict:
    """The tail-latency digest of a histogram snapshot.

    One flat dict — count, mean, max and the p50/p99/p999 estimates —
    in the snapshot's own time base (wall µs for front-end
    instruments, simulated µs for storage ones).  This is the shape
    the front end's ``stats()`` reports for every component of its
    decomposed request latency, and what the frozen frontend schema
    validates.
    """
    return {
        "count": snapshot["count"],
        "mean_us": snapshot["mean_us"],
        "max_us": snapshot["max_us"],
        "p50_us": (
            percentile_from_snapshot(snapshot, 0.50)
            if snapshot["count"]
            else 0.0
        ),
        "p99_us": (
            percentile_from_snapshot(snapshot, 0.99)
            if snapshot["count"]
            else 0.0
        ),
        "p999_us": (
            percentile_from_snapshot(snapshot, 0.999)
            if snapshot["count"]
            else 0.0
        ),
    }


def percentile_from_snapshot(snapshot: dict, q: float) -> float:
    """Estimated q-quantile (``0 < q <= 1``) of a histogram snapshot.

    Walks the cumulative bucket counts to the target rank and
    interpolates linearly inside the covering bucket; results are
    clamped to the observed max (the overflow bucket has no upper
    bound, and the top of a log-spaced bucket can overshoot it).
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    total = snapshot["count"]
    if not total:
        return 0.0
    target = q * total
    cumulative = 0
    lower = 0.0
    for bucket in snapshot["buckets"]:
        inside = bucket["count"]
        if cumulative + inside >= target:
            upper = bucket["le"]
            if upper is None:
                return snapshot["max_us"]
            fraction = (target - cumulative) / inside
            estimate = lower + (upper - lower) * fraction
            return min(estimate, snapshot["max_us"])
        cumulative += inside
        if bucket["le"] is not None:
            lower = bucket["le"]
    return snapshot["max_us"]


class MetricsRegistry:
    """Named instruments, deduplicated by name.

    ``counter()``/``gauge()``/``histogram()`` create on first use and
    return the existing instrument afterwards (asking for an existing
    name with a different kind is an error).  A disabled registry
    returns the shared null instruments instead and records nothing.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: dict) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        found = self._counters.get(name)
        if found is None:
            self._check_unique(name, self._counters)
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str, initial: Optional[Number] = 0) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        found = self._gauges.get(name)
        if found is None:
            self._check_unique(name, self._gauges)
            found = self._gauges[name] = Gauge(name, initial)
        return found

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        found = self._histograms.get(name)
        if found is None:
            self._check_unique(name, self._histograms)
            found = self._histograms[name] = Histogram(name)
        return found

    def value(self, name: str, default: Number = 0) -> Optional[Number]:
        """The current value of a counter or gauge, by full name."""
        found = self._counters.get(name) or self._gauges.get(name)
        return default if found is None else found.value

    def group_values(self, prefix: str) -> Dict[str, Number]:
        """``{suffix: value}`` for every counter/gauge under a prefix."""
        values: Dict[str, Number] = {}
        for table in (self._counters, self._gauges):
            for name, instrument in table.items():
                if name.startswith(prefix):
                    values[name[len(prefix):]] = instrument.value
        return values

    def snapshot(self) -> dict:
        """Everything, JSON-ready, sorted by name."""
        return {
            "enabled": self.enabled,
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }


#: Shared disabled registry for components whose owner has no
#: observability attached (e.g. a file system over a bare JLD).
DISABLED_REGISTRY = MetricsRegistry(enabled=False)
