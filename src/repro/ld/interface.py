"""The abstract Logical Disk operation set.

This is the interface of Section 2 of the paper — ``Read``, ``Write``,
``NewBlock``, ``DeleteBlock``, ``NewList``, ``DeleteList``, ``Flush`` —
extended with the ARU operations of Section 3: ``BeginARU`` and
``EndARU`` (plus ``AbortARU``, a natural extension: recovery already
implements undo of uncommitted ARUs, aborting merely applies it to a
live one).

Every data/list operation takes an optional ``aru`` argument.  Passing
``None`` makes it a *simple operation* — an ARU by itself, applied to
the merged stream (committed state) directly.  Passing an active
:class:`~repro.ld.types.ARUId` executes it within that ARU's private
shadow state (except block/list allocation, which the paper commits
immediately to keep identifiers unique across concurrent ARUs).

ARUs provide **failure atomicity only**: no isolation beyond the
chosen read-visibility policy, no durability (call :meth:`flush`),
and no concurrency control — clients lock for themselves
(:mod:`repro.txn` provides a lock manager and durable transactions
built on this interface).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.ld.types import ARUId, BlockId, FIRST, ListId, Predecessor


class LogicalDisk(abc.ABC):
    """Abstract base class for logical-disk implementations."""

    # ------------------------------------------------------------------
    # Atomic recovery units
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def begin_aru(self) -> ARUId:
        """Start a new atomic recovery unit and return its identifier.

        All subsequent operations passing this identifier form one
        failure-atomic unit: after a crash, either all of them or
        none of them are persistent.
        """

    @abc.abstractmethod
    def end_aru(self, aru: ARUId) -> None:
        """Commit an ARU.

        Its shadow state merges into the committed state (the single
        merged stream); the ARU is serialized at this point relative
        to all other ARUs and simple operations.  The effects become
        *persistent* once the commit record reaches the disk (at the
        next flush, or when the current segment fills).
        """

    @abc.abstractmethod
    def abort_aru(self, aru: ARUId) -> None:
        """Discard an ARU's shadow state without committing it.

        Blocks and lists allocated inside the ARU remain allocated
        (allocation commits immediately); they are reclaimed the same
        way recovery reclaims them, via the consistency sweep.
        """

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def new_block(
        self,
        list_id: ListId,
        predecessor: Predecessor = FIRST,
        aru: Optional[ARUId] = None,
    ) -> BlockId:
        """Allocate a new block within ``list_id``.

        The block is placed at the beginning of the list
        (``predecessor=FIRST``) or immediately after ``predecessor``.
        Inside an ARU, the *allocation* is committed immediately (so
        no concurrent ARU can receive the same identifier) while the
        *insertion* into the list happens in the ARU's shadow state.
        """

    @abc.abstractmethod
    def delete_block(self, block_id: BlockId, aru: Optional[ARUId] = None) -> None:
        """Remove ``block_id`` from its list and deallocate it."""

    @abc.abstractmethod
    def write(
        self, block_id: BlockId, data: bytes, aru: Optional[ARUId] = None
    ) -> None:
        """Write one block of data.

        ``data`` may be at most one block long; shorter data is
        zero-padded to the block size.
        """

    @abc.abstractmethod
    def read(self, block_id: BlockId, aru: Optional[ARUId] = None) -> bytes:
        """Read one block of data.

        Which version is returned is governed by the configured
        read-visibility policy (Section 3.3 of the paper); under the
        default policy an ARU sees its own shadow version first, then
        the committed version, then the persistent version.
        """

    def read_many(
        self, block_ids: Sequence[BlockId], aru: Optional[ARUId] = None
    ) -> List[bytes]:
        """Read several blocks; results come back in request order.

        Semantically a loop of :meth:`read` — same visibility, same
        errors.  The base implementation *is* that loop;
        implementations that can batch the underlying I/O (LLD issues
        one scatter-gather disk request for all cache misses)
        override it.
        """
        return [self.read(block_id, aru) for block_id in block_ids]

    # ------------------------------------------------------------------
    # Lists
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def new_list(self, aru: Optional[ARUId] = None) -> ListId:
        """Allocate a new, empty block list.

        Like block allocation, list allocation commits immediately
        even inside an ARU.
        """

    @abc.abstractmethod
    def delete_list(self, list_id: ListId, aru: Optional[ARUId] = None) -> None:
        """Deallocate a list, deallocating any remaining member blocks.

        Blocks are removed from the beginning of the list, so no
        predecessor searches are required (the improved deletion
        policy of Section 5.3).
        """

    @abc.abstractmethod
    def list_blocks(
        self, list_id: ListId, aru: Optional[ARUId] = None
    ) -> List[BlockId]:
        """Return the blocks of ``list_id`` in list order.

        The returned order reflects the version of the list visible
        under the read-visibility policy (shadow for the calling ARU,
        committed otherwise).
        """

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def flush(self) -> None:
        """Force all committed data and meta-data to disk.

        After flush returns, every committed ARU and every completed
        simple operation is persistent.  Shadow state (uncommitted
        ARUs) is *not* written.
        """
