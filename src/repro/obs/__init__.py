"""Unified observability: metrics registry + flight recorder.

:class:`Observability` is the per-system bundle a :class:`~repro.lld.
lld.LLD` (and everything hanging off it — disk, file system, cleaner,
scrubber, write-behind queue, recovery) shares: one
:class:`~repro.obs.registry.MetricsRegistry` of named instruments and
one :class:`~repro.obs.recorder.FlightRecorder` ring of structured
events.  See ``docs/OBSERVABILITY.md`` for the metric and event
taxonomy, and :mod:`repro.obs.schema` for the frozen ``stats()``
schema the registry backs.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.recorder import FlightRecorder
from repro.obs.registry import (
    DISABLED_REGISTRY,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_summary,
    merge_histogram_snapshots,
    percentile_from_snapshot,
)
from repro.obs.schema import STATS_SCHEMA, validate_stats

__all__ = [
    "Observability",
    "MetricsRegistry",
    "FlightRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "DISABLED_REGISTRY",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "STATS_SCHEMA",
    "validate_stats",
    "latency_summary",
    "merge_histogram_snapshots",
    "percentile_from_snapshot",
]


class Observability:
    """One system's registry + recorder, plus the crash-dump hook.

    ``metrics=False`` swaps in the disabled-registry fast path (all
    instruments become shared no-ops); the recorder stays on unless
    ``recorder_events`` is 0-like via ``recorder_enabled=False`` —
    events are cheap and are what explains a failure after the fact.
    """

    def __init__(
        self,
        metrics: bool = True,
        recorder_events: int = 256,
        recorder_enabled: bool = True,
        dump_path: Optional[str] = None,
    ) -> None:
        self.metrics = MetricsRegistry(enabled=metrics)
        self.recorder = FlightRecorder(
            capacity=recorder_events, enabled=recorder_enabled
        )
        #: Where :meth:`crash_dump` writes the event tail (None
        #: disables automatic dumps).
        self.dump_path = dump_path

    def bind_clock(self, clock) -> None:
        self.recorder.bind_clock(clock)

    def record(self, kind: str, /, **fields) -> None:
        self.recorder.record(kind, **fields)

    def snapshot(self) -> dict:
        """JSON-ready snapshot of the registry and recorder state."""
        return {
            "metrics": self.metrics.snapshot(),
            "recorder": self.recorder.summary(),
        }

    def crash_dump(self, reason: str) -> Optional[str]:
        """Record a terminal event and dump the ring to ``dump_path``.

        Best-effort: a failing dump (bad path, read-only fs) must
        never mask the original failure, so I/O errors are swallowed.
        Returns the path written, or None.
        """
        self.record("crash_dump", reason=reason)
        if self.dump_path is None:
            return None
        try:
            self.recorder.dump_jsonl(self.dump_path)
        except OSError:
            return None
        return self.dump_path
