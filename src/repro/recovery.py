"""``recover``: the one entry point for crash recovery.

Single volumes and sharded arrays historically recovered through two
different functions (:func:`repro.lld.recovery.recover` and
:func:`repro.shard.recovery.recover_sharded`) with two different
calling conventions.  This module unifies them: pass **one** disk
image and you get a recovered :class:`~repro.lld.lld.LLD`; pass a
**sequence** of member images (in shard order, ``None`` for a lost
member) and you get a reassembled
:class:`~repro.shard.sharded.ShardedLLD`, degraded around any lost
members when the array is replicated.

The two report types share a surface — ``mode``, ``shards``,
``dead_shards``, ``recovery_time_us``, ``ttfr_us``, ``parallel_us``,
``serial_us``, ``wall_seconds``, and the xid-resolution fields — so
callers can log either without caring which shape came back.

The old entry points remain importable for one release:
``recover_sharded`` forwards here with a ``DeprecationWarning``; the
single-volume ``repro.lld.recovery.recover`` stays as the internal
per-volume implementation (this function *is* it for a single
image, with identical arguments and results).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.disk.simdisk import SimulatedDisk
from repro.lld.recovery import recover as _recover_volume
from repro.shard.config import ArrayConfig
from repro.shard.recovery import _recover_sharded


def recover(
    image_or_images: Union[
        SimulatedDisk, Sequence[Optional[SimulatedDisk]]
    ],
    *,
    mode: Optional[str] = None,
    config=None,
    array_config: Optional[ArrayConfig] = None,
    workers: Optional[int] = None,
    **kwargs,
) -> Tuple[object, object]:
    """Recover a volume — single or sharded — from crashed media.

    Args:
        image_or_images: One :class:`SimulatedDisk` (single volume)
            or a sequence of member disks in shard order (sharded
            array; a ``None`` entry is a lost member the replicated
            array assembles around).
        mode: ``"eager"`` (default) scans and replays everything
            before the volume opens; ``"instant"`` opens immediately
            and replays on demand (see docs/RECOVERY.md).
        config: Per-volume :class:`~repro.lld.config.LLDConfig`,
            applied to every member alike.
        array_config: Array-level :class:`ArrayConfig` (replication
            factor, repair pacing).  Only meaningful for a sequence
            of images; rejected for a single one.
        workers: Host threads for concurrent member recoveries (and
            for a single volume's parallel scan).  Host-side only —
            simulated results are identical for any value.
        **kwargs: Forwarded to the per-volume recovery (scan knobs,
            cost model, ...).

    Returns:
        ``(volume, report)`` — :class:`~repro.lld.lld.LLD` +
        :class:`~repro.lld.recovery.RecoveryReport` for one image,
        :class:`~repro.shard.sharded.ShardedLLD` +
        :class:`~repro.shard.recovery.ShardRecoveryReport` for a
        sequence; both reports expose the shared surface above.
    """
    if isinstance(image_or_images, SimulatedDisk):
        if array_config is not None:
            acfg = ArrayConfig.from_kwargs(array_config)
            if acfg != ArrayConfig():
                raise ValueError(
                    "array_config applies to a sharded array; a single "
                    "disk image recovers as a single volume"
                )
        return _recover_volume(
            image_or_images,
            mode=mode,
            config=config,
            workers=workers,
            **kwargs,
        )
    images = list(image_or_images)
    if any(
        image is not None and not isinstance(image, SimulatedDisk)
        for image in images
    ):
        raise TypeError(
            "recover takes one SimulatedDisk or a sequence of them "
            "(None for a lost member)"
        )
    return _recover_sharded(
        images,
        workers=workers,
        array_config=array_config,
        mode=mode,
        config=config,
        **kwargs,
    )
