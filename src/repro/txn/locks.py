"""A strict two-phase lock manager with wait-die deadlock avoidance.

Locks are held on arbitrary hashable resources (the transaction layer
uses block and list identifiers).  Shared locks are compatible with
shared locks; exclusive locks are compatible with nothing.  Lock
upgrades (shared -> exclusive) are supported.

Deadlock avoidance is the classic *wait-die* scheme: a transaction
may wait only for **older** transactions (smaller timestamp); when a
younger one wants a lock an older one holds, the younger requester
"dies" (:class:`~repro.errors.DeadlockError`) and is expected to
abort and retry **with its original timestamp** (see
:func:`repro.txn.transactions.run_transaction`, which threads the
timestamp through :meth:`repro.txn.transactions.TransactionManager.
begin`).  Retrying with the original timestamp is what makes wait-die
starvation-free: a victim only ever gets *relatively older* on each
retry, so it eventually outranks every competitor and wins.

Two refinements over the textbook scheme, both needed once many
threads actually contend (``docs/CONCURRENCY.md`` discusses them):

* **Waiter-aware grants.** A requester conflicts not only with the
  current *holders* but also with older *waiters*.  Without this, a
  stream of young shared requesters can be granted over and over
  while an older exclusive waiter starves — wait-die only kills
  waits-for-older, and those young readers never wait.  Letting an
  older waiter block (kill, in wait-die terms) younger conflicting
  requesters keeps every wait pointed at strictly younger owners, so
  the waits-for graph stays acyclic and the scheme stays
  deadlock-free.
* **Deadline timeouts.** Each :meth:`LockManager.acquire` computes
  one monotonic deadline up front and waits only for the *remaining*
  time after every wakeup.  Passing the full timeout to every
  ``Condition.wait`` call would reset the clock on each
  ``notify_all`` — under heavy traffic a waiter's effective timeout
  becomes unbounded, which is exactly when timeouts matter most.

Waiters come in two kinds sharing one lock table.  Thread waiters
block on the manager's :class:`threading.Condition`
(:meth:`LockManager.acquire`); event-loop waiters park on an
:class:`asyncio.Future` (:meth:`LockManager.acquire_async`) so one
thread can multiplex thousands of waiting transactions.  Every state
change wakes both kinds.  The async path has one extra failure mode
the sync path cannot hit: a waiter's *task* can be cancelled (its
``wait_for`` deadline fires, or the loop shuts down) between
registering in ``state.waiters`` and being woken.  The waiter entry
must be removed on that path too — a stale entry is indistinguishable
from a live older waiter, so it would make younger requesters die
against a ghost forever.  Both acquire paths therefore drop their
waiter registration in a ``finally`` that re-acquires the mutex.
"""

from __future__ import annotations

import asyncio
import enum
import threading
import time
from typing import Dict, Hashable, List, Set, Tuple

from repro.errors import DeadlockError, LockError


class LockMode(enum.Enum):
    """Lock compatibility modes."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


def _conflicts(a: LockMode, b: LockMode) -> bool:
    return a is LockMode.EXCLUSIVE or b is LockMode.EXCLUSIVE


def _resolve_quietly(future: "asyncio.Future") -> None:
    """Resolve a wakeup future unless its waiter already left (timed
    out, was cancelled, or won the lock on an earlier wakeup)."""
    if not future.done():
        future.set_result(None)


class _LockState:
    """Holders and waiters (by owner id -> mode) of one resource."""

    __slots__ = ("holders", "waiters")

    def __init__(self) -> None:
        self.holders: Dict[int, LockMode] = {}
        self.waiters: Dict[int, LockMode] = {}


class LockManager:
    """Grants shared/exclusive locks to timestamp-ordered owners."""

    def __init__(self, timeout_s: float = 10.0) -> None:
        self._mutex = threading.Lock()
        self._changed = threading.Condition(self._mutex)
        self._locks: Dict[Hashable, _LockState] = {}
        #: owner id -> priority timestamp (smaller = older = wins)
        self._owner_ts: Dict[int, int] = {}
        #: Parked event-loop waiters: (loop, future) pairs resolved on
        #: the next state change (the async analogue of notify_all).
        self._async_waiters: List[
            Tuple[asyncio.AbstractEventLoop, asyncio.Future]
        ] = []
        self.timeout_s = timeout_s
        self.grants = 0
        self.waits = 0
        self.deaths = 0
        self.timeouts = 0

    def register(self, owner: int, timestamp: int) -> None:
        """Introduce an owner with its wait-die priority timestamp."""
        with self._mutex:
            self._owner_ts[owner] = timestamp

    # ------------------------------------------------------------------
    # Wakeups (call with the mutex held)
    # ------------------------------------------------------------------

    def _wake_all_locked(self) -> None:
        """Wake every waiter — blocked threads and parked coroutines.

        Thread waiters wake through the condition; async waiters get
        their futures resolved on their own loops via
        ``call_soon_threadsafe`` (safe from any thread, including the
        loop's own).
        """
        self._changed.notify_all()
        if self._async_waiters:
            parked, self._async_waiters = self._async_waiters, []
            for loop, future in parked:
                loop.call_soon_threadsafe(_resolve_quietly, future)

    def _drop_waiter_locked(self, owner: int, resource: Hashable) -> None:
        """Remove a waiter registration and wake anyone queued behind
        it (a departing older waiter may unblock younger requesters)."""
        state = self._locks.get(resource)
        if state is None:
            return
        state.waiters.pop(owner, None)
        if not state.holders and not state.waiters:
            del self._locks[resource]
        else:
            self._wake_all_locked()

    def acquire(
        self, owner: int, resource: Hashable, mode: LockMode
    ) -> float:
        """Acquire (or upgrade to) ``mode`` on ``resource``.

        Returns the wall-clock microseconds spent inside the call —
        the request's lock-wait contribution, which the transaction
        layer accumulates for tail-latency decomposition.

        Raises:
            DeadlockError: If wait-die decides this owner must abort
                (it conflicts with an older holder or older waiter).
            LockError: If the owner was never registered, if a holder
                of the lock is not registered (corrupted lock table),
                or if the wait times out — a deadlock *symptom*
                callers should treat like a death (abort and retry
                with the original timestamp).
        """
        start = time.monotonic()
        deadline = start + self.timeout_s
        with self._changed:
            if owner not in self._owner_ts:
                raise LockError(f"owner {owner} is not registered")
            waiting_on: Hashable = None
            registered_wait = False
            try:
                while True:
                    # Re-fetch each iteration: release_all drops empty
                    # lock states from the table while we wait, so a
                    # pre-wait reference could be an orphaned object.
                    state = self._locks.setdefault(resource, _LockState())
                    if self._compatible(state, owner, mode):
                        state.holders[owner] = self._merge_mode(
                            state, owner, mode
                        )
                        self.grants += 1
                        return (time.monotonic() - start) * 1e6
                    self._check_wait_die(state, owner, mode)
                    if not registered_wait:
                        state.waiters[owner] = mode
                        waiting_on = resource
                        registered_wait = True
                        self.waits += 1
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._changed.wait(
                        timeout=remaining
                    ):
                        self.timeouts += 1
                        raise LockError(
                            f"timed out waiting for {mode.value} lock on "
                            f"{resource!r}"
                        )
            finally:
                if registered_wait:
                    self._drop_waiter_locked(owner, waiting_on)

    async def acquire_async(
        self, owner: int, resource: Hashable, mode: LockMode
    ) -> float:
        """:meth:`acquire` for event-loop callers: identical wait-die
        semantics, but a conflicted requester parks on an
        :class:`asyncio.Future` instead of blocking its thread, so one
        loop can hold thousands of transactions in lock-wait at once.

        Returns the wall-clock microseconds spent inside the call.
        The lock *table* work itself runs under the manager's mutex on
        the calling thread — microseconds, never held across an await.

        Cancellation contract: if the waiting task is cancelled (its
        own ``wait_for`` deadline, loop shutdown, ...) the waiter
        entry is unregistered before ``CancelledError`` propagates.
        Leaving it behind would make every younger requester die
        against a ghost waiter forever.
        """
        start = time.monotonic()
        deadline = start + self.timeout_s
        loop = asyncio.get_running_loop()
        registered_wait = False
        try:
            while True:
                with self._mutex:
                    if owner not in self._owner_ts:
                        raise LockError(f"owner {owner} is not registered")
                    state = self._locks.setdefault(resource, _LockState())
                    if self._compatible(state, owner, mode):
                        state.holders[owner] = self._merge_mode(
                            state, owner, mode
                        )
                        self.grants += 1
                        return (time.monotonic() - start) * 1e6
                    self._check_wait_die(state, owner, mode)
                    if not registered_wait:
                        state.waiters[owner] = mode
                        registered_wait = True
                        self.waits += 1
                    # Register the wakeup future under the mutex: a
                    # release between this point and the await resolves
                    # it via call_soon_threadsafe, which queues on this
                    # loop and cannot be lost.
                    wake: asyncio.Future = loop.create_future()
                    self._async_waiters.append((loop, wake))
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.timeouts += 1
                    raise LockError(
                        f"timed out waiting for {mode.value} lock on "
                        f"{resource!r}"
                    )
                try:
                    await asyncio.wait_for(wake, timeout=remaining)
                except asyncio.TimeoutError:
                    self.timeouts += 1
                    raise LockError(
                        f"timed out waiting for {mode.value} lock on "
                        f"{resource!r}"
                    ) from None
        finally:
            if registered_wait:
                with self._mutex:
                    self._drop_waiter_locked(owner, resource)

    def _merge_mode(
        self, state: _LockState, owner: int, mode: LockMode
    ) -> LockMode:
        held = state.holders.get(owner)
        if held is LockMode.EXCLUSIVE or mode is LockMode.EXCLUSIVE:
            return LockMode.EXCLUSIVE
        return LockMode.SHARED

    def _ts(self, owner: int, other: int, resource_hint: str) -> int:
        """The registered timestamp of ``other`` — a holder or waiter
        seen by ``owner``.  An unregistered entry is corrupted state
        (release_all removes table entries and registration under one
        mutex acquisition), so it raises rather than silently winning
        every wait-die comparison."""
        ts = self._owner_ts.get(other)
        if ts is None:
            raise LockError(
                f"lock table corrupted: {resource_hint} {other} is not a "
                f"registered owner (seen by owner {owner})"
            )
        return ts

    def _compatible(
        self, state: _LockState, owner: int, mode: LockMode
    ) -> bool:
        for holder, held_mode in state.holders.items():
            if holder == owner:
                continue
            if _conflicts(mode, held_mode):
                return False
        # Waiter-aware grants: never overtake an *older* conflicting
        # waiter, or an old exclusive upgrade can starve behind an
        # endless stream of young shared grants.  An upgrader (owner
        # already holds the lock) is exempt — it must run before any
        # waiter can make progress anyway.
        if owner not in state.holders:
            my_ts = self._owner_ts[owner]
            for waiter, wait_mode in state.waiters.items():
                if waiter == owner:
                    continue
                if _conflicts(mode, wait_mode) and (
                    self._ts(owner, waiter, "waiter") < my_ts
                ):
                    return False
        return True

    def _check_wait_die(
        self, state: _LockState, owner: int, mode: LockMode
    ) -> None:
        my_ts = self._owner_ts[owner]
        for holder, held_mode in state.holders.items():
            if holder == owner or not _conflicts(mode, held_mode):
                continue
            holder_ts = self._ts(owner, holder, "holder")
            if my_ts > holder_ts:
                self.deaths += 1
                raise DeadlockError(
                    f"wait-die: owner {owner} (ts {my_ts}) must not wait "
                    f"for older owner {holder} (ts {holder_ts})"
                )
        for waiter, wait_mode in state.waiters.items():
            if waiter == owner or not _conflicts(mode, wait_mode):
                continue
            if my_ts > self._ts(owner, waiter, "waiter"):
                self.deaths += 1
                raise DeadlockError(
                    f"wait-die: owner {owner} (ts {my_ts}) must not queue "
                    f"behind older waiter {waiter}"
                )

    def release_all(self, owner: int) -> int:
        """Drop every lock the owner holds; returns how many.

        Also retires the owner's timestamp registration, so a
        released owner id can never shadow the lock table again.
        """
        with self._changed:
            released = 0
            empty = []
            for resource, state in self._locks.items():
                if owner in state.holders:
                    del state.holders[owner]
                    released += 1
                state.waiters.pop(owner, None)
                if not state.holders and not state.waiters:
                    empty.append(resource)
            for resource in empty:
                del self._locks[resource]
            self._owner_ts.pop(owner, None)
            self._wake_all_locked()
            return released

    def held_by(self, owner: int) -> Set[Hashable]:
        """Resources the owner currently holds locks on."""
        with self._mutex:
            return {
                resource
                for resource, state in self._locks.items()
                if owner in state.holders
            }

    # ------------------------------------------------------------------
    # Introspection (leak accounting)
    # ------------------------------------------------------------------

    def owner_count(self) -> int:
        """Registered owners — 0 when every transaction finished."""
        with self._mutex:
            return len(self._owner_ts)

    def resource_count(self) -> int:
        """Resources with any holder or waiter — 0 at quiesce."""
        with self._mutex:
            return len(self._locks)

    def snapshot(self) -> dict:
        """Counters plus live table sizes, for stats() views and the
        front end's leak assertions (all zeros at quiesce)."""
        with self._mutex:
            return {
                "grants": self.grants,
                "waits": self.waits,
                "deaths": self.deaths,
                "timeouts": self.timeouts,
                "owners_registered": len(self._owner_ts),
                "resources_locked": len(self._locks),
                "locks_held": sum(
                    len(state.holders) for state in self._locks.values()
                ),
                "waiters": sum(
                    len(state.waiters) for state in self._locks.values()
                ),
                "async_waiters": len(self._async_waiters),
            }
