"""``python -m repro.harness`` — run the paper's evaluation.

A thin command-line front end over the experiment runners::

    python -m repro.harness                 # all experiments, scaled
    python -m repro.harness --full          # the paper's sizes
    python -m repro.harness figure5         # one experiment
    python -m repro.harness figure6 aru
    python -m repro.harness --metrics out/  # emit metrics JSON per run
    python -m repro.harness --profile       # cProfile each experiment
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import sys
from typing import Callable, List, Optional, TypeVar

from repro.harness.runner import (
    run_aru_latency_experiment,
    run_figure5,
    run_figure6,
    run_frontend_experiment,
    run_scrub_experiment,
    run_shard_experiment,
    run_writepath_experiment,
)
from repro.harness.variants import paper_geometry

EXPERIMENTS = (
    "figure5",
    "figure6",
    "aru",
    "scrub",
    "writepath",
    "shard",
    "frontend",
)

T = TypeVar("T")


def profile_to(directory: str, experiment: str, fn: Callable[[], T]) -> T:
    """Run ``fn`` under :mod:`cProfile`, dumping raw pstats next to the
    metrics artifacts.

    The dump is the binary :mod:`pstats` format, so it feeds directly
    into ``python -m pstats`` or snakeviz-style viewers::

        python -m pstats out/profile_figure5.pstats
        % sort cumulative
        % stats 25

    Profiling measures *wall-clock* hot paths only — the simulated
    clock (and therefore every reported metric) is unaffected.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"profile_{experiment}.pstats")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        print(f"[profile -> {path}]")
    return result


def emit_metrics(directory: str, experiment: str, metrics: dict) -> str:
    """Write one experiment's observability artifact as JSON.

    Every per-variant ``stats`` block is validated against the frozen
    schema (:mod:`repro.obs.schema`) before it is written — sharded
    volumes against the per-shard + aggregate shape — so a schema
    drift fails the harness run rather than producing a silently
    unreadable artifact.
    """
    from repro.obs.schema import validate_any_stats

    for label, entry in metrics.items():
        problems = validate_any_stats(entry["stats"])
        if problems:
            raise SystemExit(
                f"metrics artifact for {experiment}/{label} violates the "
                f"stats schema: {problems}"
            )
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"metrics_{experiment}.json")
    with open(path, "w", encoding="utf-8") as out:
        json.dump(
            {"experiment": experiment, "variants": metrics},
            out,
            indent=2,
            sort_keys=True,
        )
        out.write("\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the paper's evaluation (simulated time).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, []],
        help="subset to run (default: all)",
    )
    parser.add_argument(
        "--full", action="store_true", help="use the paper's full sizes"
    )
    parser.add_argument(
        "--metrics",
        metavar="DIR",
        default=None,
        help="write a metrics_<experiment>.json artifact per experiment",
    )
    parser.add_argument(
        "--lane-impl",
        choices=["thread", "async"],
        default="thread",
        help=(
            "scheduler for the frontend experiment: worker threads "
            "per lane, or one event loop multiplexing coroutine "
            "clients (same offered load and stats schema)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run each experiment under cProfile and write a "
            "profile_<experiment>.pstats dump next to the metrics "
            "artifacts (the --metrics dir if given, else the cwd)"
        ),
    )
    args = parser.parse_args(argv)
    chosen = args.experiments or list(EXPERIMENTS)

    if args.full:
        size_classes = [
            {"n_files": 10_000, "file_size": 1024},
            {"n_files": 1_000, "file_size": 10 * 1024},
        ]
        geometry = paper_geometry(1.0)
        file_size = 20_000 * 4096
        iterations = 500_000
    else:
        size_classes = [
            {"n_files": 1_500, "file_size": 1024},
            {"n_files": 600, "file_size": 10 * 1024},
        ]
        geometry = paper_geometry(0.4)
        file_size = 16 * 1024 * 1024
        iterations = 60_000

    def emitted(experiment: str, metrics: dict) -> None:
        if args.metrics is not None:
            path = emit_metrics(args.metrics, experiment, metrics)
            print(f"[metrics -> {path}]")

    profile_dir = args.metrics if args.metrics is not None else os.curdir

    def run(experiment: str, thunk: Callable[[], T]) -> T:
        if args.profile:
            return profile_to(profile_dir, experiment, thunk)
        return thunk()

    if "figure5" in chosen:
        result5 = run(
            "figure5",
            lambda: run_figure5(size_classes=size_classes, geometry=geometry),
        )
        print(result5.table)
        emitted("figure5", result5.metrics)
        print()
    if "figure6" in chosen:
        result6 = run("figure6", lambda: run_figure6(file_size=file_size))
        print(result6.table)
        emitted("figure6", result6.metrics)
        print()
    if "aru" in chosen:
        result = run(
            "aru", lambda: run_aru_latency_experiment(iterations=iterations)
        )
        print(
            f"ARU begin/end: {result.latency_us:.2f} us per pair "
            f"({result.scaled_segments(500_000):.1f} segments per 500k; "
            "paper: 78.47 us, 24 segments)"
        )
        emitted("aru", result.metrics)
    if "scrub" in chosen:
        scrub = run("scrub", run_scrub_experiment)
        print(scrub.summary)
        emitted("scrub", scrub.metrics)
    if "writepath" in chosen:
        n_arus = 1000 if args.full else 200
        wp = run("writepath", lambda: run_writepath_experiment(n_arus=n_arus))
        print(wp.summary)
        emitted("writepath", wp.metrics)
    if "shard" in chosen:
        rounds = 24 if args.full else 12
        shard = run("shard", lambda: run_shard_experiment(rounds=rounds))
        print(shard.summary)
        emitted("shard", shard.metrics)
    if "frontend" in chosen:
        n_requests = 1200 if args.full else 300
        fe = run(
            "frontend",
            lambda: run_frontend_experiment(
                n_requests=n_requests, lane_impl=args.lane_impl
            ),
        )
        print(fe.summary)
        emitted("frontend", fe.metrics)
    return 0


if __name__ == "__main__":
    sys.exit(main())
