"""Wall-clock fast-path benchmarks: real ops/sec, not simulated time.

Every other bench in this directory measures *simulated* time (the
cost model's clock).  This one holds the Python itself accountable:
it times the hot paths with ``time.perf_counter`` and gates the fast
implementations against the reference implementations kept in-tree —

* summary decode: :func:`repro.lld.summary.decode_entry_tuples`
  (batch, tuple-based) vs :func:`repro.lld.summary.decode_entries`
  (the reference object codec) — **gated at >= 2x entries/sec**;
* segment assembly: zero-copy :meth:`SegmentBuffer.seal` (image
  filled at ``add_block``, finished in place) vs
  :func:`repro.lld.segment.reference_seal` over an old-style
  copy-at-seal buffer — gated non-regressing, images byte-identical;
* recovery: ``recover(replay="tuple")`` vs ``recover(replay="object")``
  on the same platter — gated non-regressing, state identical;
* write-storm / read-scan ops/sec — recorded for the trajectory.

Results accumulate in ``benchmarks/results/BENCH_wallclock.json``;
``PERF_NOTES.md`` tracks the trajectory every future PR must not
regress.  All timings are best-of-``REPEATS`` to shrug off scheduler
noise; gates still keep a safety margin because CI machines are
shared.
"""

import time

import pytest

from repro.disk.geometry import TRAILER_SIZE, DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.harness.reporting import format_table
from repro.ld.types import FIRST, PhysAddr
from repro.lld.lld import LLD
from repro.lld.recovery import recover
from repro.lld.segment import SegmentBuffer, decode_segment, reference_seal
from repro.lld.summary import (
    EntryKind,
    SummaryEntry,
    decode_entries,
    decode_entry_tuples,
    encode_entries,
)

from benchmarks.conftest import full_scale, report_json, report_table

#: Enforced gates (acceptance criteria for the fast paths).
DECODE_SPEEDUP_GATE = 2.0
ASSEMBLY_SPEEDUP_GATE = 0.9  # non-regression (expected ~1.3-1.5x)
RECOVERY_SPEEDUP_GATE = 0.95  # non-regression (expected > 1x)

REPEATS = 5
N_DECODE_ENTRIES = 20_000 if full_scale() else 6_000
N_ASSEMBLY_SEGMENTS = 24 if full_scale() else 8
N_STORM_BLOCKS = 4_000 if full_scale() else 1_200
RECOVERY_SEGMENTS = 400 if full_scale() else 160

#: Collected by the tests below; whichever runs last writes the file
#: with everything gathered so far.
_RESULTS: dict = {}


def _save() -> None:
    report_json("wallclock", _RESULTS)


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time of ``fn()`` (minimum over repeats)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


# ----------------------------------------------------------------------
# Summary decode: the >= 2x gate
# ----------------------------------------------------------------------


def _mixed_summary(n_entries: int) -> bytes:
    """A realistic summary: mostly WRITEs, sprinkled list ops/commits."""
    entries = []
    for i in range(n_entries):
        r = i % 10
        if r < 6:
            entries.append(
                SummaryEntry(EntryKind.WRITE, i % 7, i, i % 500 + 1, i % 120)
            )
        elif r < 7:
            entries.append(
                SummaryEntry(EntryKind.ALLOC_BLOCK, 0, i, i % 500 + 1, i % 9 + 1)
            )
        elif r < 8:
            entries.append(
                SummaryEntry(
                    EntryKind.LINK, i % 7, i, i % 9 + 1, i % 500 + 1, i % 500
                )
            )
        elif r < 9:
            entries.append(SummaryEntry(EntryKind.COMMIT, i % 7 + 1, i, 12))
        else:
            entries.append(SummaryEntry(EntryKind.NEW_LIST, 0, i, i % 9 + 1))
    return encode_entries(entries)


@pytest.mark.benchmark(group="wallclock")
def test_summary_decode_speedup(benchmark):
    """Batch tuple decode must beat the object codec >= 2x (and agree)."""
    raw = _mixed_summary(N_DECODE_ENTRIES)

    # Field-for-field identity first: the fast path is only admissible
    # while it reads the stream exactly like the reference codec.
    objects = list(decode_entries(raw))
    tuples = decode_entry_tuples(raw)
    assert len(objects) == len(tuples) == N_DECODE_ENTRIES
    identical = all(
        int(o.kind) == t[0]
        and o.aru_tag == t[1]
        and o.timestamp == t[2]
        and (o.a, o.b, o.c)[: len(t) - 3] == t[3:]
        for o, t in zip(objects, tuples)
    )
    assert identical, "tuple decode diverges from the reference codec"

    ref_s = _best_seconds(lambda: list(decode_entries(raw)))
    fast_s = _best_seconds(lambda: decode_entry_tuples(raw))
    benchmark.pedantic(lambda: decode_entry_tuples(raw), rounds=1, iterations=1)

    ref_ops = N_DECODE_ENTRIES / ref_s
    fast_ops = N_DECODE_ENTRIES / fast_s
    speedup = fast_ops / ref_ops

    table = format_table(
        f"Wall clock — summary decode, {N_DECODE_ENTRIES} entries "
        "(best-of-%d)" % REPEATS,
        ["ms", "entries/sec"],
        {
            "object codec (reference)": [ref_s * 1000.0, ref_ops],
            "tuple batch decode": [fast_s * 1000.0, fast_ops],
        },
    )
    report_table("wallclock_decode", table)

    _RESULTS["summary_decode"] = {
        "entries": N_DECODE_ENTRIES,
        "reference_ms": round(ref_s * 1000.0, 3),
        "fast_ms": round(fast_s * 1000.0, 3),
        "reference_entries_per_sec": round(ref_ops),
        "fast_entries_per_sec": round(fast_ops),
        "speedup": round(speedup, 2),
        "gate": DECODE_SPEEDUP_GATE,
        "identical": identical,
    }
    _save()
    benchmark.extra_info["decode_speedup"] = round(speedup, 2)
    assert speedup >= DECODE_SPEEDUP_GATE, (
        f"tuple decode only {speedup:.2f}x over the object codec "
        f"(gate {DECODE_SPEEDUP_GATE}x)"
    )


# ----------------------------------------------------------------------
# Segment assembly: zero-copy fill + in-place seal
# ----------------------------------------------------------------------


class _OldStyleBuffer:
    """A faithful replica of the pre-fast-path buffer.

    Same bookkeeping as the original ``SegmentBuffer`` (length check,
    dedup dict, room check, owner list, ``PhysAddr`` result) but data
    is only *referenced* at ``add_block`` and copied into a fresh
    image at seal time — the copy-at-seal baseline the zero-copy path
    is measured against.  Duck-types what :func:`reference_seal`
    needs.
    """

    def __init__(self, geometry: DiskGeometry, seq: int, segment_no: int):
        self.geometry = geometry
        self.seq = seq
        self.segment_no = segment_no
        self._slots = []
        self._slot_owner = []
        self._block_slot = {}
        self.entries = []
        self.summary_bytes = 0

    @property
    def block_count(self):
        return len(self._slots)

    def bytes_free(self):
        used = len(self._slots) * self.geometry.block_size + self.summary_bytes
        return self.geometry.usable_size - used

    def has_room(self, new_blocks, entry_bytes):
        need = new_blocks * self.geometry.block_size + entry_bytes
        return need <= self.bytes_free()

    def add_block(self, block_id, data):
        if len(data) != self.geometry.block_size:
            raise ValueError("bad block size")
        slot = self._block_slot.get(block_id)
        if slot is None:
            slot = len(self._slots)
            if not self.has_room(1, 0):
                raise RuntimeError("overflow")
            self._slots.append(data)
            self._slot_owner.append(block_id)
            self._block_slot[block_id] = slot
        else:
            self._slots[slot] = data
        return PhysAddr(self.segment_no, slot)

    def add_entry(self, entry):
        size = entry.encoded_size()
        if size > self.bytes_free():
            raise RuntimeError("overflow")
        self.entries.append(entry)
        self.summary_bytes += size

    def _slot_bytes(self, slot):
        return self._slots[slot]


def _segment_workload(geometry: DiskGeometry):
    """(block payloads, summary entries) filling most of one segment."""
    usable = geometry.segment_size - TRAILER_SIZE
    entry_size = SummaryEntry(EntryKind.WRITE, 0, 0, 1, 0).encoded_size()
    n_blocks = (usable - 64 * entry_size) // (geometry.block_size + entry_size)
    payloads = [
        bytes([i % 251]) * geometry.block_size for i in range(n_blocks)
    ]
    entries = [
        SummaryEntry(EntryKind.WRITE, i % 5, i, i + 1, i)
        for i in range(n_blocks)
    ] + [SummaryEntry(EntryKind.COMMIT, tag, n_blocks + tag, 7) for tag in (1, 2)]
    return payloads, entries


@pytest.mark.benchmark(group="wallclock")
def test_segment_assembly_throughput(benchmark):
    """Zero-copy assembly: byte-identical images, non-regressing MB/s."""
    geometry = DiskGeometry()
    payloads, entries = _segment_workload(geometry)

    def fill_fast():
        images = []
        for seg in range(N_ASSEMBLY_SEGMENTS):
            buf = SegmentBuffer(geometry, seq=seg + 1, segment_no=seg)
            for i, data in enumerate(payloads):
                buf.add_block(i + 1, data)
            for entry in entries:
                buf.add_entry(entry)
            images.append(buf.seal())
        return images

    def fill_reference():
        images = []
        for seg in range(N_ASSEMBLY_SEGMENTS):
            buf = _OldStyleBuffer(geometry, seq=seg + 1, segment_no=seg)
            for i, data in enumerate(payloads):
                buf.add_block(i + 1, data)
            for entry in entries:
                buf.add_entry(entry)
            images.append(reference_seal(buf))
        return images

    # Byte identity before speed: same blocks + entries must produce
    # exactly the same on-platter image.
    identical = [bytes(i) for i in fill_fast()] == fill_reference()
    assert identical, "zero-copy assembly diverges from reference images"

    ref_s = _best_seconds(fill_reference)
    fast_s = _best_seconds(fill_fast)
    benchmark.pedantic(fill_fast, rounds=1, iterations=1)

    seg_mb = geometry.segment_size / (1024.0 * 1024.0)
    ref_mbps = N_ASSEMBLY_SEGMENTS * seg_mb / ref_s
    fast_mbps = N_ASSEMBLY_SEGMENTS * seg_mb / fast_s
    speedup = fast_mbps / ref_mbps

    table = format_table(
        f"Wall clock — segment assembly, {N_ASSEMBLY_SEGMENTS} segments "
        f"of {len(payloads)} blocks (best-of-{REPEATS})",
        ["ms", "MB/s", "segments/sec"],
        {
            "copy-at-seal (reference)": [
                ref_s * 1000.0,
                ref_mbps,
                N_ASSEMBLY_SEGMENTS / ref_s,
            ],
            "zero-copy fill+seal": [
                fast_s * 1000.0,
                fast_mbps,
                N_ASSEMBLY_SEGMENTS / fast_s,
            ],
        },
    )
    report_table("wallclock_assembly", table)

    _RESULTS["segment_assembly"] = {
        "segments": N_ASSEMBLY_SEGMENTS,
        "blocks_per_segment": len(payloads),
        "reference_ms": round(ref_s * 1000.0, 3),
        "fast_ms": round(fast_s * 1000.0, 3),
        "reference_mb_per_sec": round(ref_mbps, 1),
        "fast_mb_per_sec": round(fast_mbps, 1),
        "speedup": round(speedup, 2),
        "gate": ASSEMBLY_SPEEDUP_GATE,
        "identical": identical,
    }
    _save()
    benchmark.extra_info["assembly_speedup"] = round(speedup, 2)
    assert speedup >= ASSEMBLY_SPEEDUP_GATE, (
        f"zero-copy assembly regressed to {speedup:.2f}x of reference "
        f"(gate {ASSEMBLY_SPEEDUP_GATE}x)"
    )


# ----------------------------------------------------------------------
# Recovery: tuple replay vs the object reference, real seconds
# ----------------------------------------------------------------------


def _build_log(target_segments: int) -> SimulatedDisk:
    geo = DiskGeometry.small(num_segments=target_segments + 36, block_size=1024)
    disk = SimulatedDisk(geo)
    lld = LLD(
        disk,
        checkpoint_slot_segments=2,
        clean_low_water=2,
        clean_high_water=4,
    )
    lst = lld.new_list()
    previous = FIRST
    index = 0
    while lld.segments_flushed < target_segments:
        block = lld.new_block(lst, predecessor=previous)
        lld.write(block, f"payload-{index}".encode())
        previous = block
        index += 1
    lld.flush()
    return disk


@pytest.mark.benchmark(group="wallclock")
def test_recovery_scan_wallclock(benchmark):
    """Tuple replay must not be slower than the object reference.

    Both recoveries run over the same platter; the rebuilt persistent
    state must serialize identically (the fast path earns no speed by
    dropping correctness).
    """
    disk = _build_log(RECOVERY_SEGMENTS)

    def run(replay: str):
        lld, report = recover(
            disk.power_cycle(),
            replay=replay,
            checkpoint_slot_segments=2,
        )
        return lld, report

    ref_lld, ref_report = run("object")
    fast_lld, fast_report = run("tuple")
    identical = ref_lld.checkpoints._serialize(
        ref_lld._snapshot_checkpoint()
    ) == fast_lld.checkpoints._serialize(fast_lld._snapshot_checkpoint())
    assert identical, "tuple replay rebuilt different state"
    assert fast_report.entries_replayed == ref_report.entries_replayed
    # Replay representation must not change *simulated* time.  The two
    # recoveries start at different absolute clock values (power_cycle
    # keeps the clock running), so allow float-subtraction jitter.
    assert (
        abs(fast_report.recovery_time_us - ref_report.recovery_time_us) < 0.01
    ), "replay representation changed simulated time"

    ref_s = _best_seconds(lambda: run("object"), repeats=3)
    fast_s = _best_seconds(lambda: run("tuple"), repeats=3)
    benchmark.pedantic(lambda: run("tuple"), rounds=1, iterations=1)

    segs = fast_report.segments_replayed
    speedup = ref_s / fast_s

    table = format_table(
        f"Wall clock — recovery of a {segs}-segment log (best-of-3)",
        ["wall ms", "segments/sec"],
        {
            "object replay (reference)": [ref_s * 1000.0, segs / ref_s],
            "tuple replay": [fast_s * 1000.0, segs / fast_s],
        },
    )
    report_table("wallclock_recovery", table)

    _RESULTS["recovery_scan"] = {
        "log_segments": segs,
        "entries_replayed": fast_report.entries_replayed,
        "reference_wall_ms": round(ref_s * 1000.0, 2),
        "fast_wall_ms": round(fast_s * 1000.0, 2),
        "reference_segments_per_sec": round(segs / ref_s),
        "fast_segments_per_sec": round(segs / fast_s),
        "speedup": round(speedup, 2),
        "gate": RECOVERY_SPEEDUP_GATE,
        "identical": identical,
        # Same tolerance as the assertion above: the two runs start
        # the absolute simulated clock at different magnitudes, so
        # float summation can differ in the last ulp.
        "simulated_us_identical": (
            abs(fast_report.recovery_time_us - ref_report.recovery_time_us)
            < 0.01
        ),
    }
    _save()
    benchmark.extra_info["recovery_speedup"] = round(speedup, 2)
    assert speedup >= RECOVERY_SPEEDUP_GATE, (
        f"tuple replay regressed to {speedup:.2f}x of the object "
        f"reference (gate {RECOVERY_SPEEDUP_GATE}x)"
    )


# ----------------------------------------------------------------------
# Write storm / read scan: trajectory numbers (recorded, not gated)
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="wallclock")
def test_write_storm_and_read_scan_ops(benchmark):
    """End-to-end ops/sec through the whole stack, for the record.

    No in-run reference exists for these (the whole stack *is* the
    fast path), so they are recorded as the trajectory every future
    PR's numbers are compared against in PERF_NOTES.md.
    """
    geo = DiskGeometry.small(num_segments=256)

    def storm():
        disk = SimulatedDisk(geo)
        lld = LLD(disk, checkpoint_slot_segments=2)
        lst = lld.new_list()
        blocks = []
        payload = b"w" * 900
        for _ in range(N_STORM_BLOCKS):
            block = lld.new_block(lst)
            lld.write(block, payload)
            blocks.append(block)
        lld.flush()
        return lld, blocks

    lld, blocks = storm()
    storm_s = _best_seconds(storm, repeats=3)

    def scan():
        for block in blocks:
            lld.read(block)

    scan_s = _best_seconds(scan, repeats=3)
    benchmark.pedantic(scan, rounds=1, iterations=1)

    write_ops = N_STORM_BLOCKS / storm_s
    read_ops = len(blocks) / scan_s
    block_mb = geo.block_size / (1024.0 * 1024.0)

    table = format_table(
        f"Wall clock — {N_STORM_BLOCKS}-block write storm and read scan "
        "(best-of-3)",
        ["wall ms", "ops/sec", "MB/s"],
        {
            "write storm": [
                storm_s * 1000.0,
                write_ops,
                write_ops * block_mb,
            ],
            "read scan": [scan_s * 1000.0, read_ops, read_ops * block_mb],
        },
    )
    report_table("wallclock_ops", table)

    _RESULTS["write_storm"] = {
        "blocks": N_STORM_BLOCKS,
        "wall_ms": round(storm_s * 1000.0, 2),
        "writes_per_sec": round(write_ops),
        "mb_per_sec": round(write_ops * block_mb, 2),
    }
    _RESULTS["read_scan"] = {
        "blocks": len(blocks),
        "wall_ms": round(scan_s * 1000.0, 2),
        "reads_per_sec": round(read_ops),
        "mb_per_sec": round(read_ops * block_mb, 2),
    }
    _save()
    benchmark.extra_info["writes_per_sec"] = round(write_ops)
    benchmark.extra_info["reads_per_sec"] = round(read_ops)
    assert write_ops > 0 and read_ops > 0
