"""The small-file benchmark (Figure 5).

Creates-and-writes, reads, and deletes a population of small files,
reporting files/second per phase in simulated time.  The paper runs
10,000 x 1 KB and 1,000 x 10 KB files; both are parameters here so
the benchmark suite can run scaled-down versions quickly and the
full-size versions on demand.

Files are spread across subdirectories (about 100 entries per
directory) so directory-scan costs stay realistic rather than
quadratic in the file count.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List

from repro.fs.filesystem import MinixFS


@dataclasses.dataclass
class SmallFileResult:
    """Throughput of the three phases, in files/second (simulated)."""

    n_files: int
    file_size: int
    create_write_fps: float
    read_fps: float
    delete_fps: float
    create_write_s: float
    read_s: float
    delete_s: float

    def phase(self, name: str) -> float:
        """Files/second for ``name`` in {"create_write", "read",
        "delete"}."""
        return {
            "create_write": self.create_write_fps,
            "read": self.read_fps,
            "delete": self.delete_fps,
        }[name]


def _layout(n_files: int, per_dir: int = 100) -> List[str]:
    """Paths for ``n_files`` files across ~``per_dir``-entry dirs."""
    n_dirs = max(1, math.ceil(n_files / per_dir))
    return [f"/d{index % n_dirs}/f{index}" for index in range(n_files)]


def run_small_files(
    fs: MinixFS, n_files: int, file_size: int, per_dir: int = 100
) -> SmallFileResult:
    """Run the create+write / read / delete phases and time them.

    Each phase ends with a sync so its cost includes writing the data
    out, matching how the paper's experiments hit the disk.
    """
    clock = fs.ld.clock  # type: ignore[attr-defined]
    paths = _layout(n_files, per_dir)
    payload = _payload(file_size)
    n_dirs = max(1, math.ceil(n_files / per_dir))
    for index in range(n_dirs):
        fs.mkdir(f"/d{index}")
    fs.sync()

    start = clock.now_us
    for path in paths:
        fs.create(path)
        fs.write_file(path, payload)
    fs.sync()
    create_write_s = (clock.now_us - start) / 1e6

    start = clock.now_us
    for path in paths:
        data = fs.read_file(path)
        if len(data) != file_size:
            raise AssertionError(
                f"short read: {len(data)} != {file_size} for {path}"
            )
    read_s = (clock.now_us - start) / 1e6

    start = clock.now_us
    for path in paths:
        fs.unlink(path)
    fs.sync()
    delete_s = (clock.now_us - start) / 1e6

    return SmallFileResult(
        n_files=n_files,
        file_size=file_size,
        create_write_fps=n_files / create_write_s,
        read_fps=n_files / read_s,
        delete_fps=n_files / delete_s,
        create_write_s=create_write_s,
        read_s=read_s,
        delete_s=delete_s,
    )


def _payload(size: int) -> bytes:
    """Deterministic, compressible-but-nonzero file contents."""
    pattern = b"the quick brown fox jumps over the lazy logical disk\n"
    reps = size // len(pattern) + 1
    return (pattern * reps)[:size]
