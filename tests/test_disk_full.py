"""ENOSPC semantics: a full logical disk degrades, never corrupts."""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskCrashedError, DiskFullError
from repro.ld.types import FIRST
from repro.lld.lld import LLD
from repro.lld.recovery import recover
from repro.lld.verify import verify_lld


def tiny(num_segments=20, **kwargs):
    geo = DiskGeometry.small(num_segments=num_segments)
    disk = SimulatedDisk(geo)
    kwargs.setdefault("checkpoint_slot_segments", 1)
    return disk, LLD(disk, **kwargs)


def fill(lld, lst):
    blocks = []
    previous = FIRST
    with pytest.raises(DiskFullError):
        while True:
            block = lld.new_block(lst, predecessor=previous)
            lld.write(block, f"fill-{len(blocks)}".encode())
            blocks.append(block)
            previous = block
    return blocks


class TestDiskFull:
    def test_full_disk_keeps_existing_data_readable(self):
        _disk, lld = tiny()
        lst = lld.new_list()
        blocks = fill(lld, lst)
        for index in range(len(blocks) - 1):
            assert lld.read(blocks[index]).startswith(f"fill-{index}".encode())
        assert verify_lld(lld) == []

    def test_deletes_work_on_full_disk_and_free_space(self):
        """The segment reserve exists exactly for this: deletions must
        go through when ordinary writes cannot."""
        _disk, lld = tiny()
        lst = lld.new_list()
        blocks = fill(lld, lst)
        for block in blocks[: len(blocks) // 2]:
            lld.delete_block(block)
        lld.flush()
        fresh = lld.new_block(lst)
        lld.write(fresh, b"post-recovery write")
        lld.flush()
        assert lld.read(fresh).startswith(b"post-recovery write")
        assert verify_lld(lld) == []

    def test_full_disk_state_survives_crash(self):
        disk, lld = tiny()
        lst = lld.new_list()
        blocks = fill(lld, lst)
        survivors = lld.list_blocks(lst)
        lld2, _report = recover(
            disk.power_cycle(), checkpoint_slot_segments=1
        )
        assert lld2.list_blocks(lst) == survivors
        assert verify_lld(lld2) == []

    def test_commit_hitting_hard_full_is_fatal_not_corrupting(self):
        """When even the reserve cannot absorb a commit, the instance
        dies rather than exposing a half-merged committed state — and
        recovery returns the consistent pre-commit image."""
        disk, lld = tiny(num_segments=16)
        lst = lld.new_list()
        base = lld.new_block(lst)
        lld.write(base, b"pre-commit truth")
        lld.flush()
        blocks = fill(lld, lst)
        # A large ARU of shadow overwrites to existing blocks: nothing
        # touches the disk until EndARU, which then cannot fit.
        aru = lld.begin_aru()
        payload = b"z" * lld.geometry.block_size
        doomed = blocks[: len(blocks) - 2]
        for block in doomed:
            lld.write(block, payload, aru=aru)
        with pytest.raises(DiskFullError):
            lld.end_aru(aru)
        # The instance refuses further work ...
        with pytest.raises((DiskFullError, DiskCrashedError)):
            lld.read(base)
        # ... and the durable image is the consistent pre-commit one.
        lld2, _report = recover(
            disk.power_cycle(), checkpoint_slot_segments=1
        )
        assert lld2.read(base).startswith(b"pre-commit truth")
        for block in doomed:
            from repro.errors import LDError

            try:
                data = lld2.read(block)
            except LDError:
                continue
            assert not data.startswith(b"z" * 16)
