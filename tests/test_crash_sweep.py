"""Bounded-exhaustive crash sweep: every write index, one workload.

Random crash points (test_property, crash_torture) sample the space;
this sweep covers it densely for a canonical meta-data-heavy workload
by crashing at *every* segment-write index the workload produces —
with whole-write drops and with torn writes — on both logical-disk
implementations, asserting the recovery contract at each point.
"""

import pytest

from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskCrashedError, LDError
from repro.fs import MinixFS, fsck
from repro.jld import JLD, recover_jld
from repro.lld.lld import LLD
from repro.lld.recovery import recover


def build(substrate, injector=None):
    geo = DiskGeometry.small(num_segments=96)
    disk = SimulatedDisk(geo, injector=injector)
    if substrate == "lld":
        ld = LLD(disk, checkpoint_slot_segments=2)
    else:
        ld = JLD(disk, journal_segments=6, checkpoint_slot_segments=2)
    return disk, ld


def recover_any(substrate, disk):
    if substrate == "lld":
        ld, _report = recover(disk.power_cycle(), checkpoint_slot_segments=2)
    else:
        ld, _report = recover_jld(
            disk.power_cycle(), journal_segments=6, checkpoint_slot_segments=2
        )
    return ld


def workload(fs):
    """Meta-data heavy: creations, writes, links, renames, deletions,
    with scattered syncs.  Returns the model at the last sync."""
    synced = {}
    live = {}
    for index in range(60):
        path = f"/f{index}"
        fs.create(path)
        payload = f"payload-{index}".encode() * (index % 4 + 1)
        fs.write_file(path, payload)
        live[path] = payload
        if index % 4 == 1:
            fs.rename(path, f"/r{index}")
            live[f"/r{index}"] = live.pop(path)
        if index % 5 == 2 and f"/f{index - 1}" in live:
            fs.unlink(f"/f{index - 1}")
            del live[f"/f{index - 1}"]
        if index % 3 == 0:
            fs.sync()
            synced = dict(live)
    fs.sync()
    return dict(live)


def total_writes(substrate):
    """Writes the workload produces with no crash plan."""
    disk, ld = build(substrate)
    fs = MinixFS.mkfs(ld, n_inodes=256)
    workload(fs)
    return disk.write_count


class TestExhaustiveCrashSweep:
    @pytest.mark.parametrize("substrate", ["lld", "jld"])
    @pytest.mark.parametrize("torn", [False, True])
    def test_every_crash_point(self, substrate, torn):
        limit = total_writes(substrate)
        assert limit > 10, "workload too small to be interesting"
        for crash_after in range(1, limit + 1):
            injector = FaultInjector(
                CrashPlan(after_writes=crash_after, torn=torn, seed=crash_after)
            )
            disk, ld = build(substrate, injector=injector)
            fs = MinixFS.mkfs(ld, n_inodes=256)
            crashed = True
            try:
                workload(fs)
                crashed = False
            except DiskCrashedError:
                pass
            if not crashed:
                continue  # the budget outlived the workload
            ld2 = recover_any(substrate, disk)
            mounted = MinixFS.mount(ld2)
            report = fsck(mounted)
            assert report.clean, (
                substrate,
                torn,
                crash_after,
                [str(p) for p in report.problems][:3],
            )
            # Whatever survived is readable without errors.
            for name in mounted.listdir("/"):
                try:
                    mounted.read_file(f"/{name}")
                except LDError as exc:  # pragma: no cover - failure path
                    raise AssertionError(
                        f"{substrate} torn={torn} crash={crash_after}: "
                        f"{name} unreadable: {exc}"
                    )
