"""A PostMark-style mixed small-file workload.

PostMark (Katcher, 1997 — contemporary with the paper) models mail
and news servers: a pool of small files churned by transactions, each
either create/delete or read/append.  It complements the paper's
micro-benchmarks with a mixed, stateful load whose meta-data
operations all run through the file system's ARUs.

Deterministic given the seed; reports transactions/second of
simulated time plus the operation mix actually executed.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List

from repro.fs.filesystem import MinixFS


@dataclasses.dataclass
class PostmarkResult:
    """Outcome of one PostMark run."""

    transactions: int
    elapsed_s: float
    tps: float
    ops: Dict[str, int]
    files_at_end: int


def run_postmark(
    fs: MinixFS,
    n_files: int = 200,
    n_transactions: int = 1000,
    min_size: int = 512,
    max_size: int = 8 * 1024,
    read_bias: float = 0.5,
    seed: int = 1994,
) -> PostmarkResult:
    """Run the workload: build the pool, churn it, report.

    Args:
        fs: A mounted file system (any LD substrate).
        n_files: Initial pool size.
        n_transactions: Churn transactions to execute.
        min_size / max_size: File size range.
        read_bias: Probability a transaction is read/append rather
            than create/delete.
        seed: RNG seed (the run is fully deterministic).
    """
    rng = random.Random(seed)
    clock = fs.ld.clock  # type: ignore[attr-defined]

    def make_data(size: int) -> bytes:
        chunk = bytes(rng.randrange(32, 127) for _ in range(64))
        return (chunk * (size // 64 + 1))[:size]

    fs.mkdir("/postmark")
    pool: List[str] = []
    counter = 0
    for _ in range(n_files):
        path = f"/postmark/f{counter}"
        counter += 1
        fs.create(path)
        fs.write_file(path, make_data(rng.randrange(min_size, max_size)))
        pool.append(path)
    fs.sync()

    ops = {"create": 0, "delete": 0, "read": 0, "append": 0}
    start = clock.now_us
    for _ in range(n_transactions):
        if rng.random() < read_bias and pool:
            # Read or append an existing file.
            path = pool[rng.randrange(len(pool))]
            if rng.random() < 0.5:
                fs.read_file(path)
                ops["read"] += 1
            else:
                extra = make_data(rng.randrange(64, 1024))
                size = fs.stat(path).size
                fs.write_file(path, extra, offset=size)
                ops["append"] += 1
        else:
            # Create or delete.
            if pool and (rng.random() < 0.5 or len(pool) > 2 * n_files):
                index = rng.randrange(len(pool))
                fs.unlink(pool.pop(index))
                ops["delete"] += 1
            else:
                path = f"/postmark/f{counter}"
                counter += 1
                fs.create(path)
                fs.write_file(
                    path, make_data(rng.randrange(min_size, max_size))
                )
                pool.append(path)
                ops["create"] += 1
    fs.sync()
    elapsed_s = (clock.now_us - start) / 1e6
    return PostmarkResult(
        transactions=n_transactions,
        elapsed_s=elapsed_s,
        tps=n_transactions / elapsed_s,
        ops=ops,
        files_at_end=len(pool),
    )
