#!/usr/bin/env python3
"""Reproduce the paper's evaluation (Section 5) end to end.

Runs the three experiments against the three MinixLLD variants of
Table 1 and prints tables shaped like Figure 5, Figure 6 and the
Section 5.3 microbenchmark, annotated with the numbers the paper
reports.  All timings are simulated (deterministic).

Run:  python examples/reproduce_paper.py           (scaled, ~seconds)
      python examples/reproduce_paper.py --full    (paper sizes, minutes)
"""

import argparse

from repro.harness.runner import (
    run_aru_latency_experiment,
    run_figure5,
    run_figure6,
)
from repro.harness.variants import VARIANTS, paper_geometry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="run the paper's full experiment sizes (minutes of wall time)",
    )
    args = parser.parse_args()

    print("Table 1 — MinixLLD variants")
    print("-" * 64)
    for variant in VARIANTS.values():
        print(f"  {variant.name:11s} {variant.description}")
    print()

    if args.full:
        size_classes = [
            {"n_files": 10_000, "file_size": 1024},
            {"n_files": 1_000, "file_size": 10 * 1024},
        ]
        geometry = paper_geometry(1.0)
        file_size = 20_000 * 4096
        iterations = 500_000
    else:
        size_classes = [
            {"n_files": 1_500, "file_size": 1024},
            {"n_files": 600, "file_size": 10 * 1024},
        ]
        geometry = paper_geometry(0.4)
        file_size = 16 * 1024 * 1024
        iterations = 60_000

    figure5 = run_figure5(size_classes=size_classes, geometry=geometry)
    print(figure5.table)
    print()
    print("paper reports: C+W 7.2% (1KB) / 4.0% (10KB); "
          "D 24.6%/25.5% for 'new',")
    print("improved to 20.5%/17.9% by 'new, delete'; reads near-equal.")
    print()

    figure6 = run_figure6(file_size=file_size)
    print(figure6.table)
    print()
    print("paper reports: write1 differs 2.9%, all other phases 0.2-0.7%;")
    print("the log absorbs random writes; reads after the random rewrite")
    print("are seek-bound.")
    print()

    latency = run_aru_latency_experiment(iterations=iterations)
    scaled = latency.scaled_segments(500_000)
    print("Section 5.3 — empty BeginARU/EndARU microbenchmark")
    print("-" * 64)
    print(f"  measured: {latency.latency_us:7.2f} us per ARU pair, "
          f"{scaled:5.1f} segments per 500k ARUs")
    print("  paper:      78.47 us per ARU pair,  24.0 segments per 500k")


if __name__ == "__main__":
    main()
