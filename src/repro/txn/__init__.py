"""Transactions on top of atomic recovery units.

ARUs are "a light-weight form of transaction": failure atomicity
without isolation or durability (Section 1).  The paper argues that
clients can easily add the missing pieces; this package does exactly
that:

* :mod:`repro.txn.locks` — a strict two-phase lock manager with
  shared/exclusive modes and wait-die deadlock avoidance, serving
  both thread waiters and event-loop (asyncio) waiters,
* :mod:`repro.txn.transactions` — full ACID transactions: each
  transaction wraps an ARU (atomicity), acquires locks before every
  access (isolation), and flushes the logical disk at commit
  (durability),
* :mod:`repro.txn.asynctxn` — the event-loop twin: the same machine
  as coroutines, with lock waits parked on futures and LD operations
  handed off to a thread pool, sharing one manager (one id sequence,
  one lock table) with the sync layer.
"""

from repro.txn.asynctxn import (
    AsyncTransaction,
    begin_async,
    run_transaction_async,
)
from repro.txn.locks import LockManager, LockMode
from repro.txn.transactions import (
    Transaction,
    TransactionManager,
    TxnBreakdown,
    run_batch,
    run_transaction,
)

__all__ = [
    "AsyncTransaction",
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
    "TxnBreakdown",
    "begin_async",
    "run_batch",
    "run_transaction",
    "run_transaction_async",
]
