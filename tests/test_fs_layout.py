"""Unit tests for the FS on-disk structures (i-nodes, dirents)."""

import pytest

from repro.errors import FSError
from repro.fs import directory as dirmod
from repro.fs.inode import (
    INODE_SIZE,
    Inode,
    InodeKind,
    inodes_per_block,
    locate,
    patch_block,
)


class TestInodeCodec:
    def test_record_size(self):
        assert INODE_SIZE == 64
        assert len(Inode(1).encode()) == 64

    def test_roundtrip(self):
        inode = Inode(
            ino=9, kind=InodeKind.REGULAR, nlinks=3, size=12345,
            list_id=77, mtime=99,
        )
        decoded = Inode.decode(9, inode.encode())
        assert decoded == inode

    def test_free_slot_decodes_free(self):
        decoded = Inode.decode(4, b"\x00" * 64)
        assert decoded.is_free
        assert not decoded.is_dir
        assert not decoded.is_regular

    def test_clear(self):
        inode = Inode(1, InodeKind.DIRECTORY, nlinks=2, size=10, list_id=5)
        inode.clear()
        assert inode.is_free
        assert inode.size == 0
        assert inode.list_id == 0

    def test_kind_predicates(self):
        assert Inode(1, InodeKind.DIRECTORY).is_dir
        assert Inode(1, InodeKind.REGULAR).is_regular

    def test_inodes_per_block(self):
        assert inodes_per_block(4096) == 64
        assert inodes_per_block(1024) == 16

    def test_locate(self):
        assert locate(1, 4096) == (0, 0)
        assert locate(64, 4096) == (0, 63 * 64)
        assert locate(65, 4096) == (1, 0)

    def test_locate_rejects_zero(self):
        with pytest.raises(ValueError):
            locate(0, 4096)

    def test_patch_block(self):
        raw = b"\xaa" * 4096
        record = Inode(2, InodeKind.REGULAR, nlinks=1).encode()
        patched = patch_block(raw, 64, record)
        assert len(patched) == 4096
        assert patched[64:128] == record
        assert patched[:64] == b"\xaa" * 64
        assert patched[128:] == b"\xaa" * (4096 - 128)


class TestDirentCodec:
    def test_record_size(self):
        assert dirmod.DIRENT_SIZE == 32
        assert len(dirmod.Dirent(1, "x").encode()) == 32

    def test_entries_per_block(self):
        assert dirmod.entries_per_block(4096) == 128

    def test_iter_skips_free_slots(self):
        block = bytearray(4096)
        block[0:32] = dirmod.Dirent(5, "first").encode()
        block[64:96] = dirmod.Dirent(9, "third").encode()
        found = list(dirmod.iter_entries(bytes(block)))
        assert [(o, e.ino, e.name) for o, e in found] == [
            (0, 5, "first"),
            (64, 9, "third"),
        ]

    def test_find_entry(self):
        block = dirmod.patch_block(
            b"\x00" * 4096, 32, dirmod.Dirent(3, "hello")
        )
        offset, entry = dirmod.find_entry(block, "hello")
        assert offset == 32
        assert entry.ino == 3
        assert dirmod.find_entry(block, "missing") is None

    def test_find_free_slot(self):
        block = dirmod.patch_block(
            b"\x00" * 4096, 0, dirmod.Dirent(1, "used")
        )
        assert dirmod.find_free_slot(block) == 32
        full = b"".join(
            dirmod.Dirent(index + 1, f"n{index}").encode()
            for index in range(128)
        )
        assert dirmod.find_free_slot(full) is None

    def test_patch_clear(self):
        block = dirmod.patch_block(
            b"\x00" * 4096, 0, dirmod.Dirent(1, "temp")
        )
        cleared = dirmod.patch_block(block, 0, None)
        assert dirmod.find_entry(cleared, "temp") is None

    def test_unicode_names(self):
        entry = dirmod.Dirent(2, "café")
        block = dirmod.patch_block(b"\x00" * 4096, 0, entry)
        _offset, decoded = dirmod.find_entry(block, "café")
        assert decoded.name == "café"

    def test_name_too_long_rejected(self):
        with pytest.raises(FSError):
            dirmod.Dirent(1, "x" * 28).encode()

    def test_validate_name(self):
        for bad in ("", ".", "..", "a/b", "nul\x00"):
            with pytest.raises(FSError):
                dirmod.validate_name(bad)
        dirmod.validate_name("fine-name.txt")

    def test_used_entries(self):
        block_a = dirmod.patch_block(b"\x00" * 4096, 0, dirmod.Dirent(1, "a"))
        block_b = dirmod.patch_block(b"\x00" * 4096, 32, dirmod.Dirent(2, "b"))
        names = [e.name for e in dirmod.used_entries([block_a, block_b])]
        assert names == ["a", "b"]
