"""The MinixLLD file system.

A deliberately Minix-shaped file system whose entire disk management
is delegated to the logical disk: files and directories are LD block
lists, i-nodes live in a fixed i-node list, and there are no bitmaps
or layout decisions anywhere in this module (the paper notes that
moving to LD deleted 350 lines of disk management from Minix).

Failure atomicity (Section 5.1): ``create``, ``mkdir``, ``unlink``,
``rmdir`` and ``rename`` each run inside their own ARU, so a file is
never half-created or half-deleted across a crash — the i-node, the
directory data and the data-list operations commit together.  File
*data* writes are simple operations, as in the paper's benchmarks.

Concurrency: like the paper's prototype, the file system itself is
single-threaded (a lock serializes public calls); the logical disk
underneath supports concurrent ARUs from multiple clients.
"""

from __future__ import annotations

import heapq
import struct
import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.core.visibility import Visibility
from repro.errors import (
    DirectoryNotEmptyFSError,
    FileExistsFSError,
    FileNotFoundFSError,
    FSError,
    IsADirectoryFSError,
    NoSpaceFSError,
    NotADirectoryFSError,
)
from repro.fs import directory as dirmod
from repro.fs.inode import (
    Inode,
    InodeKind,
    inodes_per_block,
    locate,
    patch_block,
)
from repro.ld.interface import LogicalDisk
from repro.ld.types import ARUId, BlockId, FIRST, ListId

SB_MAGIC = b"MXLD"
SB_VERSION = 1
#: magic(4s) version(H) pad(H) n_inodes(Q) inode_list(Q) root_ino(Q) block_size(Q)
_SB_FMT = "<4sHHQQQQ"

ROOT_INO = 1

#: The list id the superblock list receives on a virgin logical disk.
SUPERBLOCK_LIST = ListId(1)


class MinixFS:
    """Minix-style file system over a :class:`~repro.ld.interface.
    LogicalDisk`.

    Construct via :meth:`mkfs` (fresh disk) or :meth:`mount` (after a
    restart or crash recovery).

    Args:
        delete_policy: ``"per_block"`` reproduces the paper's "new"
            deletion (deallocate every block, from the file's end
            backwards, then the emptied list); ``"whole_list"`` is the
            improved "new, delete" policy (delete the list outright).
        use_arus: Bracket create/delete in ARUs.  Disabling this
            models a client that ignores ARUs entirely (useful for
            isolating ARU cost in benchmarks); crash atomicity of
            meta-data is then lost.
    """

    def __init__(
        self,
        ld: LogicalDisk,
        n_inodes: int,
        inode_list: ListId,
        delete_policy: str = "per_block",
        use_arus: bool = True,
    ) -> None:
        if delete_policy not in ("per_block", "whole_list"):
            raise ValueError(f"unknown delete_policy {delete_policy!r}")
        visibility = getattr(ld, "visibility", Visibility.ARU_LOCAL)
        if use_arus and visibility is Visibility.COMMITTED_ONLY:
            raise FSError(
                "MinixFS needs to see its own shadow writes inside an "
                "ARU; COMMITTED_ONLY visibility cannot support that"
            )
        self.ld = ld
        self.block_size = ld.geometry.block_size  # type: ignore[attr-defined]
        self.n_inodes = n_inodes
        self.inode_list = inode_list
        self.delete_policy = delete_policy
        self.use_arus = use_arus
        # FS-level counters go into the owning LD's registry when it
        # has one (a bare JLD does not; fall back to the shared
        # disabled registry so the charge sites stay branch-free).
        from repro.obs.registry import DISABLED_REGISTRY

        obs = getattr(ld, "obs", None)
        metrics = obs.metrics if obs is not None else DISABLED_REGISTRY
        self._c_fs_calls = metrics.counter("fs.calls")
        self._c_dirent_scans = metrics.counter("fs.dirent_scans")
        self._c_dirents_scanned = metrics.counter("fs.dirents_scanned")
        self._lock = threading.RLock()
        self._inode_blocks: List[BlockId] = list(ld.list_blocks(inode_list))
        self._inodes: Dict[int, Inode] = {}
        self._dirty_inodes: Set[int] = set()
        self._file_blocks: Dict[int, List[BlockId]] = {}
        #: dir ino -> {name: (ino, block index, byte offset)}
        self._dir_cache: Dict[int, Dict[str, Tuple[int, int, int]]] = {}
        self._free_inos: List[int] = []
        self._scan_free_inodes()

    # ==================================================================
    # Construction
    # ==================================================================

    @classmethod
    def mkfs(
        cls,
        ld: LogicalDisk,
        n_inodes: int = 1024,
        delete_policy: str = "per_block",
        use_arus: bool = True,
    ) -> "MinixFS":
        """Create a fresh file system on a virgin logical disk."""
        sb_list = ld.new_list()
        if sb_list != SUPERBLOCK_LIST:
            raise FSError(
                "mkfs requires a virgin logical disk (the superblock "
                f"list must get id {SUPERBLOCK_LIST}, got {sb_list})"
            )
        sb_block = ld.new_block(sb_list)
        inode_list = ld.new_list()
        block_size = ld.geometry.block_size  # type: ignore[attr-defined]
        per_block = inodes_per_block(block_size)
        n_blocks = -(-n_inodes // per_block)
        previous = FIRST
        for _ in range(n_blocks):
            blk = ld.new_block(inode_list, predecessor=previous)
            ld.write(blk, b"\x00" * block_size)
            previous = blk
        superblock = struct.pack(
            _SB_FMT,
            SB_MAGIC,
            SB_VERSION,
            0,
            n_inodes,
            int(inode_list),
            ROOT_INO,
            block_size,
        )
        ld.write(sb_block, superblock)
        fs = cls(
            ld,
            n_inodes=n_inodes,
            inode_list=inode_list,
            delete_policy=delete_policy,
            use_arus=use_arus,
        )
        # Root directory, created atomically like any other directory.
        aru = fs._begin()
        try:
            root_list = ld.new_list(aru=aru)
            root = Inode(
                ROOT_INO,
                InodeKind.DIRECTORY,
                nlinks=2,
                size=0,
                list_id=int(root_list),
            )
            fs._inodes[ROOT_INO] = root
            fs._free_inos.remove(ROOT_INO)
            heapq.heapify(fs._free_inos)
            fs._write_inode(ROOT_INO, aru)
            fs._end(aru)
        except Exception:
            fs._abort(aru)
            raise
        ld.flush()
        return fs

    @classmethod
    def mount(
        cls,
        ld: LogicalDisk,
        delete_policy: str = "per_block",
        use_arus: bool = True,
    ) -> "MinixFS":
        """Mount an existing file system (e.g. after crash recovery).

        No consistency pass is needed: LD recovery already restored
        the most recent persistent state, and every create/delete was
        atomic (this is the paper's "no fsck" property).
        """
        from repro.errors import BadListError

        try:
            sb_blocks = ld.list_blocks(SUPERBLOCK_LIST)
        except BadListError:
            raise FSError("no superblock found; is this a MinixFS disk?") from None
        if not sb_blocks:
            raise FSError("no superblock found; is this a MinixFS disk?")
        raw = ld.read(sb_blocks[0])
        magic, version, _pad, n_inodes, inode_list, root_ino, block_size = (
            struct.unpack_from(_SB_FMT, raw, 0)
        )
        if magic != SB_MAGIC or version != SB_VERSION:
            raise FSError("bad superblock magic/version")
        if block_size != ld.geometry.block_size:  # type: ignore[attr-defined]
            raise FSError("superblock block size does not match the disk")
        if root_ino != ROOT_INO:
            raise FSError("unexpected root i-node number")
        return cls(
            ld,
            n_inodes=n_inodes,
            inode_list=ListId(inode_list),
            delete_policy=delete_policy,
            use_arus=use_arus,
        )

    # ==================================================================
    # Public API: namespace
    # ==================================================================

    def create(self, path: str) -> int:
        """Create a regular file; returns its i-node number.

        The i-node write, the directory update and the data-list
        allocation form one ARU (Section 5.1).
        """
        with self._lock:
            self._charge_fs_call()
            parent_ino, name = self._resolve_parent(path)
            dirmod.validate_name(name)
            if self._lookup(parent_ino, name) is not None:
                raise FileExistsFSError(path)
            aru = self._begin()
            try:
                ino = self._alloc_ino()
                data_list = self.ld.new_list(aru=aru)
                inode = Inode(
                    ino, InodeKind.REGULAR, nlinks=1, size=0,
                    list_id=int(data_list),
                )
                self._inodes[ino] = inode
                self._write_inode(ino, aru)
                self._add_dirent(parent_ino, dirmod.Dirent(ino, name), aru)
                self._end(aru)
            except Exception:
                self._drop_caches()
                self._abort(aru)
                raise
            self._file_blocks[ino] = []
            return ino

    def mkdir(self, path: str) -> int:
        """Create a directory (its own ARU, like file creation)."""
        with self._lock:
            self._charge_fs_call()
            parent_ino, name = self._resolve_parent(path)
            dirmod.validate_name(name)
            if self._lookup(parent_ino, name) is not None:
                raise FileExistsFSError(path)
            aru = self._begin()
            try:
                ino = self._alloc_ino()
                data_list = self.ld.new_list(aru=aru)
                inode = Inode(
                    ino, InodeKind.DIRECTORY, nlinks=2, size=0,
                    list_id=int(data_list),
                )
                self._inodes[ino] = inode
                self._write_inode(ino, aru)
                self._add_dirent(parent_ino, dirmod.Dirent(ino, name), aru)
                parent = self._get_inode(parent_ino)
                parent.nlinks += 1
                self._write_inode(parent_ino, aru)
                self._end(aru)
            except Exception:
                self._drop_caches()
                self._abort(aru)
                raise
            self._file_blocks[ino] = []
            return ino

    def unlink(self, path: str) -> None:
        """Delete a regular file in one ARU.

        The deletion order reproduces the paper's measured variants:
        with ``per_block`` policy, data blocks are deallocated from
        the *end* of the file backwards (as Minix's truncate does),
        forcing a predecessor search per block; with ``whole_list``
        the file's list is deleted outright.
        """
        with self._lock:
            self._charge_fs_call()
            parent_ino, name = self._resolve_parent(path)
            found = self._lookup(parent_ino, name)
            if found is None:
                raise FileNotFoundFSError(path)
            ino = found[0]
            inode = self._get_inode(ino)
            if inode.is_dir:
                raise IsADirectoryFSError(path)
            aru = self._begin()
            last_link = inode.nlinks <= 1
            try:
                self._remove_dirent(parent_ino, name, aru)
                if last_link:
                    self._delete_data(inode, aru)
                    inode.clear()
                else:
                    inode.nlinks -= 1
                self._write_inode(ino, aru)
                self._end(aru)
            except Exception:
                self._drop_caches()
                self._abort(aru)
                raise
            if last_link:
                self._release_ino(ino)

    def rmdir(self, path: str) -> None:
        """Remove an empty directory in one ARU."""
        with self._lock:
            self._charge_fs_call()
            parent_ino, name = self._resolve_parent(path)
            found = self._lookup(parent_ino, name)
            if found is None:
                raise FileNotFoundFSError(path)
            ino = found[0]
            inode = self._get_inode(ino)
            if not inode.is_dir:
                raise NotADirectoryFSError(path)
            if self._dir_entries(ino):
                raise DirectoryNotEmptyFSError(path)
            aru = self._begin()
            try:
                self._remove_dirent(parent_ino, name, aru)
                self._delete_data(inode, aru)
                inode.clear()
                self._write_inode(ino, aru)
                parent = self._get_inode(parent_ino)
                parent.nlinks -= 1
                self._write_inode(parent_ino, aru)
                self._end(aru)
            except Exception:
                self._drop_caches()
                self._abort(aru)
                raise
            self._release_ino(ino)

    def link(self, src_path: str, dst_path: str) -> None:
        """Create a hard link: a second name for the same i-node.

        The new directory entry and the link-count bump commit in one
        ARU, so the link count can never disagree with the number of
        entries after a crash.
        """
        with self._lock:
            self._charge_fs_call()
            src_ino = self._resolve(src_path)
            inode = self._get_inode(src_ino)
            if inode.is_dir:
                raise IsADirectoryFSError(src_path)
            dst_parent, dst_name = self._resolve_parent(dst_path)
            dirmod.validate_name(dst_name)
            if self._lookup(dst_parent, dst_name) is not None:
                raise FileExistsFSError(dst_path)
            aru = self._begin()
            try:
                self._add_dirent(
                    dst_parent, dirmod.Dirent(src_ino, dst_name), aru
                )
                inode.nlinks += 1
                self._write_inode(src_ino, aru)
                self._end(aru)
            except Exception:
                self._drop_caches()
                self._abort(aru)
                raise

    def rename(self, old_path: str, new_path: str) -> None:
        """Atomically move an entry (both directory updates in one ARU)."""
        with self._lock:
            self._charge_fs_call()
            old_parent, old_name = self._resolve_parent(old_path)
            new_parent, new_name = self._resolve_parent(new_path)
            dirmod.validate_name(new_name)
            found = self._lookup(old_parent, old_name)
            if found is None:
                raise FileNotFoundFSError(old_path)
            if self._lookup(new_parent, new_name) is not None:
                raise FileExistsFSError(new_path)
            ino = found[0]
            aru = self._begin()
            try:
                self._remove_dirent(old_parent, old_name, aru)
                self._add_dirent(new_parent, dirmod.Dirent(ino, new_name), aru)
                self._end(aru)
            except Exception:
                self._drop_caches()
                self._abort(aru)
                raise

    # ==================================================================
    # Public API: data
    # ==================================================================

    def write_file(self, path: str, data: bytes, offset: int = 0) -> int:
        """Write ``data`` at ``offset``; returns bytes written."""
        with self._lock:
            self._charge_fs_call()
            ino = self._resolve(path)
            return self._write_at(ino, offset, data)

    def read_file(self, path: str, offset: int = 0, size: Optional[int] = None) -> bytes:
        """Read up to ``size`` bytes from ``offset`` (whole file by
        default)."""
        with self._lock:
            self._charge_fs_call()
            ino = self._resolve(path)
            return self._read_at(ino, offset, size)

    def open(self, path: str, create: bool = False) -> "FileHandle":
        """Open a file, optionally creating it first."""
        with self._lock:
            if create and not self.exists(path):
                self.create(path)
            self._charge_fs_call()
            ino = self._resolve(path)
            inode = self._get_inode(ino)
            if inode.is_dir:
                raise IsADirectoryFSError(path)
            return FileHandle(self, ino)

    def copy_file(self, src_path: str, dst_path: str) -> int:
        """Copy a regular file; returns bytes copied.

        The destination is created atomically (its own ARU); data
        transfer is ordinary writes, as everywhere else.
        """
        with self._lock:
            self._charge_fs_call()
            src_ino = self._resolve(src_path)
            if self._get_inode(src_ino).is_dir:
                raise IsADirectoryFSError(src_path)
            data = self._read_at(src_ino, 0, None)
            self.create(dst_path)
            if data:
                self.write_file(dst_path, data)
            return len(data)

    def truncate(self, path: str, length: int = 0) -> None:
        """Shrink (or zero-extend) a file to ``length`` bytes.

        Shrinking deallocates trailing blocks the way Minix does —
        from the end of the file backwards — inside one ARU with the
        i-node size update: a crash can never leave the i-node
        claiming bytes whose blocks are already gone.
        """
        with self._lock:
            self._charge_fs_call()
            ino = self._resolve(path)
            inode = self._get_inode(ino)
            if inode.is_dir:
                raise IsADirectoryFSError(path)
            keep_blocks = -(-length // self.block_size)
            blocks = self._blocks_of(ino)
            aru = self._begin()
            appended = []
            try:
                for block in reversed(blocks[keep_blocks:]):
                    self.ld.delete_block(block, aru=aru)
                # Shrinking to mid-block: zero the kept block's tail,
                # or re-extension would resurrect the truncated bytes.
                tail = length % self.block_size
                if length < inode.size and tail and keep_blocks >= 1:
                    last = blocks[keep_blocks - 1]
                    raw = self.ld.read(last, aru=aru)
                    self.ld.write(
                        last,
                        raw[:tail] + b"\x00" * (self.block_size - tail),
                        aru=aru,
                    )
                # Zero-extension allocates the covering blocks (fresh
                # blocks read as zeros at the LD level).
                while len(blocks) + len(appended) < keep_blocks:
                    predecessor = (
                        appended[-1] if appended
                        else (blocks[-1] if blocks else FIRST)
                    )
                    appended.append(
                        self.ld.new_block(
                            ListId(inode.list_id),
                            predecessor=predecessor,
                            aru=aru,
                        )
                    )
                inode.size = length
                self._write_inode(ino, aru)
                self._end(aru)
            except Exception:
                self._drop_caches()
                self._abort(aru)
                raise
            del blocks[keep_blocks:]
            blocks.extend(appended)

    # ==================================================================
    # Public API: inspection
    # ==================================================================

    def exists(self, path: str) -> bool:
        """True if ``path`` resolves."""
        with self._lock:
            try:
                self._resolve(path)
                return True
            except FSError:
                return False

    def stat(self, path: str) -> Inode:
        """A copy of the i-node behind ``path``."""
        with self._lock:
            self._charge_fs_call()
            ino = self._resolve(path)
            inode = self._get_inode(ino)
            return Inode(
                ino=inode.ino,
                kind=inode.kind,
                nlinks=inode.nlinks,
                size=inode.size,
                list_id=inode.list_id,
                mtime=inode.mtime,
            )

    def listdir(self, path: str) -> List[str]:
        """Names in a directory, in slot order."""
        with self._lock:
            self._charge_fs_call()
            ino = self._resolve(path)
            inode = self._get_inode(ino)
            if not inode.is_dir:
                raise NotADirectoryFSError(path)
            return [name for name, _info in self._dir_entries(ino).items()]

    def walk(self, top: str = "/"):
        """Yield ``(dir_path, dir_names, file_names)`` depth-first,
        like :func:`os.walk`."""
        with self._lock:
            self._charge_fs_call()
            ino = self._resolve(top)
            if not self._get_inode(ino).is_dir:
                raise NotADirectoryFSError(top)
        stack = [top if top.endswith("/") else top + "/"]
        while stack:
            current = stack.pop()
            dirs: List[str] = []
            files: List[str] = []
            for name in self.listdir(current):
                child = current.rstrip("/") + "/" + name
                if self.stat(child).is_dir:
                    dirs.append(name)
                else:
                    files.append(name)
            yield current.rstrip("/") or "/", dirs, files
            for name in reversed(dirs):
                stack.append(current.rstrip("/") + "/" + name + "/")

    def du(self, top: str = "/") -> int:
        """Total bytes of file data under ``top`` (recursive)."""
        total = 0
        for dir_path, _dirs, files in self.walk(top):
            for name in files:
                path = dir_path.rstrip("/") + "/" + name
                total += self.stat(path).size
        return total

    def statvfs(self) -> Dict[str, int]:
        """File-system wide usage summary (a `statvfs`-alike).

        Reports i-node usage exactly; data usage is the block count
        across all files and directories (the logical disk owns the
        physical free-space accounting).
        """
        with self._lock:
            self._charge_fs_call()
            files = directories = data_blocks = used_bytes = file_bytes = 0
            per_block = inodes_per_block(self.block_size)
            for index, block in enumerate(self._inode_blocks):
                raw = self.ld.read(block)
                base = index * per_block
                for slot in range(per_block):
                    ino = base + slot + 1
                    if ino > self.n_inodes:
                        break
                    # Prefer the in-core i-node: sizes may be dirty.
                    inode = self._inodes.get(ino) or Inode.decode(
                        ino, raw[slot * 64 : slot * 64 + 64]
                    )
                    if inode.is_free:
                        continue
                    if inode.is_dir:
                        directories += 1
                    else:
                        files += 1
                        file_bytes += inode.size
                    used_bytes += inode.size
                    data_blocks += len(
                        self.ld.list_blocks(ListId(inode.list_id))
                    )
            return {
                "block_size": self.block_size,
                "inodes_total": self.n_inodes,
                "inodes_used": files + directories,
                "inodes_free": self.n_inodes - files - directories,
                "files": files,
                "directories": directories,
                "data_blocks": data_blocks,
                "used_bytes": used_bytes,
                "file_bytes": file_bytes,
            }

    def sync(self) -> None:
        """Write back dirty i-nodes and flush the logical disk."""
        with self._lock:
            self._charge_fs_call()
            for ino in sorted(self._dirty_inodes):
                self._write_inode(ino, None)
            self._dirty_inodes.clear()
            self.ld.flush()

    # ==================================================================
    # I-node management
    # ==================================================================

    def _scan_free_inodes(self) -> None:
        """Build the free-i-node heap by scanning the i-node table."""
        self._free_inos = []
        per_block = inodes_per_block(self.block_size)
        for index, block in enumerate(self._inode_blocks):
            raw = self.ld.read(block)
            base = index * per_block
            for slot in range(per_block):
                ino = base + slot + 1
                if ino > self.n_inodes:
                    break
                record = raw[slot * 64 : slot * 64 + 64]
                inode = Inode.decode(ino, record)
                if inode.is_free:
                    self._free_inos.append(ino)
        heapq.heapify(self._free_inos)

    def _alloc_ino(self) -> int:
        if not self._free_inos:
            raise NoSpaceFSError("out of i-nodes")
        return heapq.heappop(self._free_inos)

    def _release_ino(self, ino: int) -> None:
        self._inodes.pop(ino, None)
        self._dirty_inodes.discard(ino)
        self._file_blocks.pop(ino, None)
        self._dir_cache.pop(ino, None)
        heapq.heappush(self._free_inos, ino)

    def _get_inode(self, ino: int) -> Inode:
        """The in-core i-node (loaded from disk on first touch)."""
        cached = self._inodes.get(ino)
        if cached is not None:
            return cached
        index, offset = locate(ino, self.block_size)
        if index >= len(self._inode_blocks):
            raise FileNotFoundFSError(f"i-node {ino} out of range")
        raw = self.ld.read(self._inode_blocks[index])
        inode = Inode.decode(ino, raw[offset : offset + 64])
        self._inodes[ino] = inode
        return inode

    def _write_inode(self, ino: int, aru: Optional[ARUId]) -> None:
        """Read-modify-write the i-node's block (in the ARU's stream)."""
        inode = self._inodes[ino]
        index, offset = locate(ino, self.block_size)
        block = self._inode_blocks[index]
        raw = self.ld.read(block, aru=aru)
        self.ld.write(block, patch_block(raw, offset, inode.encode()), aru=aru)
        self._dirty_inodes.discard(ino)

    # ==================================================================
    # Directory management
    # ==================================================================

    def _dir_entries(self, dir_ino: int) -> Dict[str, Tuple[int, int, int]]:
        """The (cached) entry map of a directory.

        The cache models Minix scanning directory blocks out of its
        buffer cache: the scan cost is charged to the simulated CPU
        while the Python-level parse happens once.
        """
        cached = self._dir_cache.get(dir_ino)
        if cached is not None:
            self._charge_scan(len(cached))
            return cached
        entries: Dict[str, Tuple[int, int, int]] = {}
        blocks = self._blocks_of(dir_ino)
        for index, block in enumerate(blocks):
            raw = self.ld.read(block)
            for offset, entry in dirmod.iter_entries(raw):
                entries[entry.name] = (entry.ino, index, offset)
        self._dir_cache[dir_ino] = entries
        self._charge_scan(len(entries))
        return entries

    def _charge_scan(self, n_entries: int) -> None:
        self._c_dirent_scans.inc()
        self._c_dirents_scanned.add(n_entries)
        meter = getattr(self.ld, "meter", None)
        if meter is not None and n_entries:
            meter.charge("dirent_scan_us", n_entries)

    def _lookup(self, dir_ino: int, name: str) -> Optional[Tuple[int, int, int]]:
        """Find ``name`` in a directory: (ino, block index, offset)."""
        inode = self._get_inode(dir_ino)
        if not inode.is_dir:
            raise NotADirectoryFSError(f"i-node {dir_ino}")
        return self._dir_entries(dir_ino).get(name)

    def _add_dirent(
        self, dir_ino: int, entry: dirmod.Dirent, aru: Optional[ARUId]
    ) -> None:
        """Insert a directory entry (within the caller's ARU)."""
        blocks = self._blocks_of(dir_ino)
        inode = self._get_inode(dir_ino)
        for index, block in enumerate(blocks):
            raw = self.ld.read(block, aru=aru)
            slot = dirmod.find_free_slot(raw)
            if slot is not None:
                self.ld.write(block, dirmod.patch_block(raw, slot, entry), aru=aru)
                self._dir_entries(dir_ino)[entry.name] = (entry.ino, index, slot)
                return
        # Directory full: grow it by one block inside the same ARU.
        predecessor = blocks[-1] if blocks else FIRST
        new_block = self.ld.new_block(
            ListId(inode.list_id), predecessor=predecessor, aru=aru
        )
        raw = b"\x00" * self.block_size
        self.ld.write(new_block, dirmod.patch_block(raw, 0, entry), aru=aru)
        blocks.append(new_block)
        inode.size += self.block_size
        self._write_inode(dir_ino, aru)
        self._dir_entries(dir_ino)[entry.name] = (entry.ino, len(blocks) - 1, 0)

    def _remove_dirent(
        self, dir_ino: int, name: str, aru: Optional[ARUId]
    ) -> None:
        """Clear a directory entry (within the caller's ARU)."""
        found = self._lookup(dir_ino, name)
        if found is None:
            raise FileNotFoundFSError(name)
        _ino, index, offset = found
        block = self._blocks_of(dir_ino)[index]
        raw = self.ld.read(block, aru=aru)
        self.ld.write(block, dirmod.patch_block(raw, offset, None), aru=aru)
        self._dir_entries(dir_ino).pop(name, None)

    # ==================================================================
    # Data management
    # ==================================================================

    def _blocks_of(self, ino: int) -> List[BlockId]:
        """The (cached) ordered data blocks of a file or directory."""
        cached = self._file_blocks.get(ino)
        if cached is not None:
            return cached
        inode = self._get_inode(ino)
        blocks = list(self.ld.list_blocks(ListId(inode.list_id)))
        self._file_blocks[ino] = blocks
        return blocks

    def _delete_data(self, inode: Inode, aru: Optional[ARUId]) -> None:
        """Deallocate a file's data per the configured policy."""
        if self.delete_policy == "per_block":
            blocks = self._blocks_of(inode.ino)
            for block in reversed(blocks):
                self.ld.delete_block(block, aru=aru)
            self.ld.delete_list(ListId(inode.list_id), aru=aru)
        else:
            self.ld.delete_list(ListId(inode.list_id), aru=aru)

    def _write_at(self, ino: int, offset: int, data: bytes) -> int:
        if offset < 0:
            raise ValueError("negative offset")
        inode = self._get_inode(ino)
        if inode.is_dir:
            raise IsADirectoryFSError(f"i-node {ino}")
        if not data:
            return 0
        end = offset + len(data)
        blocks = self._blocks_of(ino)
        needed = -(-end // self.block_size)
        while len(blocks) < needed:
            predecessor = blocks[-1] if blocks else FIRST
            blocks.append(
                self.ld.new_block(ListId(inode.list_id), predecessor=predecessor)
            )
        first_block = offset // self.block_size
        last_block = (end - 1) // self.block_size
        for index in range(first_block, last_block + 1):
            block_lo = index * self.block_size
            block_hi = block_lo + self.block_size
            lo = max(offset, block_lo)
            hi = min(end, block_hi)
            chunk = data[lo - offset : hi - offset]
            if hi - lo == self.block_size:
                self.ld.write(blocks[index], chunk)
            else:
                raw = self.ld.read(blocks[index])
                patched = raw[: lo - block_lo] + chunk + raw[hi - block_lo :]
                self.ld.write(blocks[index], patched)
        if end > inode.size:
            inode.size = end
            self._dirty_inodes.add(ino)
        return len(data)

    def _read_at(self, ino: int, offset: int, size: Optional[int]) -> bytes:
        if offset < 0:
            raise ValueError("negative offset")
        inode = self._get_inode(ino)
        if inode.is_dir:
            raise IsADirectoryFSError(f"i-node {ino}")
        if offset >= inode.size:
            return b""
        end = inode.size if size is None else min(inode.size, offset + size)
        blocks = self._blocks_of(ino)
        first_block = offset // self.block_size
        last_block = (end - 1) // self.block_size
        # One batched read for the whole span: blocks of sequentially
        # written files sit adjacent on disk, so the logical disk can
        # fetch them with one seek instead of one per block.
        span = blocks[first_block : last_block + 1]
        raws = self.ld.read_many(span)
        pieces: List[bytes] = []
        for index, raw in zip(range(first_block, last_block + 1), raws):
            block_lo = index * self.block_size
            lo = max(offset, block_lo)
            hi = min(end, block_lo + self.block_size)
            pieces.append(raw[lo - block_lo : hi - block_lo])
        return b"".join(pieces)

    # ==================================================================
    # Path resolution
    # ==================================================================

    def _resolve(self, path: str) -> int:
        """Resolve an absolute path to an i-node number."""
        parts = self._split(path)
        ino = ROOT_INO
        for part in parts:
            found = self._lookup(ino, part)
            if found is None:
                raise FileNotFoundFSError(path)
            ino = found[0]
        return ino

    def _resolve_parent(self, path: str) -> Tuple[int, str]:
        """Resolve a path to (parent directory i-node, final name)."""
        parts = self._split(path)
        if not parts:
            raise FSError("path names the root directory")
        parent = ROOT_INO
        for part in parts[:-1]:
            found = self._lookup(parent, part)
            if found is None:
                raise FileNotFoundFSError(path)
            parent = found[0]
        parent_inode = self._get_inode(parent)
        if not parent_inode.is_dir:
            raise NotADirectoryFSError(path)
        return parent, parts[-1]

    @staticmethod
    def _split(path: str) -> List[str]:
        if not path.startswith("/"):
            raise FSError(f"paths must be absolute: {path!r}")
        return [part for part in path.split("/") if part]

    # ==================================================================
    # ARU plumbing
    # ==================================================================

    def _begin(self) -> Optional[ARUId]:
        return self.ld.begin_aru() if self.use_arus else None

    def _end(self, aru: Optional[ARUId]) -> None:
        if aru is not None:
            self.ld.end_aru(aru)

    def _abort(self, aru: Optional[ARUId]) -> None:
        if aru is not None:
            try:
                self.ld.abort_aru(aru)
            except Exception:
                pass  # the original error matters more

    def _drop_caches(self) -> None:
        """Forget everything cached (after an aborted multi-step op)."""
        self._inodes.clear()
        self._dirty_inodes.clear()
        self._file_blocks.clear()
        self._dir_cache.clear()

    def _charge_fs_call(self) -> None:
        self._c_fs_calls.inc()
        meter = getattr(self.ld, "meter", None)
        if meter is not None:
            meter.charge("fs_call_us")


class FileHandle:
    """A sequential read/write cursor over an open file."""

    def __init__(self, fs: MinixFS, ino: int) -> None:
        self.fs = fs
        self.ino = ino
        self.position = 0
        self.closed = False

    def read(self, size: Optional[int] = None) -> bytes:
        """Read from the cursor, advancing it."""
        self._check_open()
        with self.fs._lock:
            data = self.fs._read_at(self.ino, self.position, size)
        self.position += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write at the cursor, advancing it."""
        self._check_open()
        with self.fs._lock:
            written = self.fs._write_at(self.ino, self.position, data)
        self.position += written
        return written

    def seek(self, offset: int) -> None:
        """Move the cursor to an absolute offset."""
        if offset < 0:
            raise ValueError("negative offset")
        self.position = offset

    def tell(self) -> int:
        """Current cursor position."""
        return self.position

    def close(self) -> None:
        """Close the handle (idempotent)."""
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise FSError("I/O on closed file handle")

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
