"""Property tests for the remaining on-disk codecs.

The summary-entry codec already has property coverage; these cover
the two larger formats: whole segments (buffer -> seal -> decode) and
checkpoints (data -> write -> load), under arbitrary contents.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.ld.types import BlockId
from repro.lld.checkpoint import (
    BlockSnapshot,
    CheckpointData,
    CheckpointManager,
    ListSnapshot,
)
from repro.lld.segment import SegmentBuffer, decode_segment
from repro.lld.summary import EntryKind, SummaryEntry

GEO = DiskGeometry.small(num_segments=8)

_blocks_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=500),  # block id
        st.binary(min_size=0, max_size=GEO.block_size),
    ),
    max_size=GEO.max_data_blocks,
)

_entries_strategy = st.lists(
    st.builds(
        SummaryEntry,
        kind=st.sampled_from(list(EntryKind)),
        aru_tag=st.integers(min_value=0, max_value=2**32),
        timestamp=st.integers(min_value=0, max_value=2**32),
        a=st.integers(min_value=0, max_value=2**32),
        b=st.integers(min_value=0, max_value=2**31),
        c=st.integers(min_value=0, max_value=2**32),
    ),
    max_size=40,
)


class TestSegmentCodecProperties:
    @settings(max_examples=60, deadline=None)
    @given(blocks=_blocks_strategy, entries=_entries_strategy, seq=st.integers(1, 2**40))
    def test_seal_decode_roundtrip(self, blocks, entries, seq):
        buffer = SegmentBuffer(GEO, seq=seq, segment_no=3)
        expected_data = {}
        for block_id, data in blocks:
            padded = data + b"\x00" * (GEO.block_size - len(data))
            if not buffer.contains_block(BlockId(block_id)):
                if not buffer.has_room(1, 0):
                    break
            buffer.add_block(BlockId(block_id), padded)
            expected_data[block_id] = padded
        kept_entries = []
        for entry in entries:
            if not buffer.has_room(0, entry.encoded_size()):
                break
            buffer.add_entry(entry)
            kept_entries.append(entry)
        decoded = decode_segment(buffer.seal(), GEO, 3)
        assert decoded is not None
        assert decoded.seq == seq
        assert decoded.block_count == len(expected_data)
        assert len(decoded.entries) == len(kept_entries)
        for recorded, original in zip(decoded.entries, kept_entries):
            assert recorded.kind == original.kind
            assert recorded.aru_tag == original.aru_tag
        # Every block's payload survives at its assigned slot.
        for block_id, padded in expected_data.items():
            slot = buffer._block_slot[BlockId(block_id)]
            assert decoded.slot_data(slot) == padded

    @settings(max_examples=40, deadline=None)
    @given(
        blocks=_blocks_strategy,
        flip=st.integers(min_value=0, max_value=GEO.segment_size - 1),
    )
    def test_any_single_byte_corruption_detected(self, blocks, flip):
        buffer = SegmentBuffer(GEO, seq=9, segment_no=0)
        for block_id, data in blocks:
            padded = data + b"\x00" * (GEO.block_size - len(data))
            if not buffer.contains_block(BlockId(block_id)):
                if not buffer.has_room(1, 0):
                    break
            buffer.add_block(BlockId(block_id), padded)
        image = bytearray(buffer.seal())
        image[flip] ^= 0x5A
        assert decode_segment(bytes(image), GEO, 0) is None


_snapshot_blocks = st.lists(
    st.builds(
        BlockSnapshot,
        block_id=st.integers(1, 2**40),
        successor=st.integers(0, 2**40),
        list_id=st.integers(0, 2**40),
        timestamp=st.integers(0, 2**40),
        segment=st.integers(0, 2**20),
        slot=st.integers(0, 2**20),
        has_addr=st.booleans(),
    ),
    max_size=30,
)

_snapshot_lists = st.lists(
    st.builds(
        ListSnapshot,
        list_id=st.integers(1, 2**40),
        first=st.integers(0, 2**40),
        last=st.integers(0, 2**40),
        count=st.integers(0, 2**30),
        timestamp=st.integers(0, 2**40),
    ),
    max_size=30,
)


class TestCheckpointProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        blocks=_snapshot_blocks,
        lists=_snapshot_lists,
        ckpt_seq=st.integers(1, 2**30),
        segments=st.dictionaries(
            st.integers(0, 1000),
            st.tuples(
                st.integers(0, 2**40),
                st.integers(0, 2**20),
                st.integers(0, 2**20),
            ),
            max_size=20,
        ),
    )
    def test_write_load_roundtrip(self, blocks, lists, ckpt_seq, segments):
        disk = SimulatedDisk(DiskGeometry.small(num_segments=16))
        manager = CheckpointManager(disk, slot_segments=2)
        data = CheckpointData(
            ckpt_seq=ckpt_seq,
            last_log_seq=7,
            next_block_id=11,
            next_list_id=13,
            next_aru_id=17,
            blocks=blocks,
            lists=lists,
            segments=segments,
        )
        manager.write(data)
        loaded = manager.load()
        assert loaded.ckpt_seq == ckpt_seq
        assert loaded.blocks == blocks
        assert loaded.lists == lists
        assert loaded.segments == segments
        assert (loaded.next_block_id, loaded.next_list_id) == (11, 13)
