"""Directory entries: fixed-size records in a directory's data blocks.

A directory is an ordinary file whose blocks hold 32-byte entries:
a 4-byte i-node number (0 = free slot) and a NUL-padded name of up to
27 bytes.  This mirrors Minix's fixed-size directory slots; freeing a
slot just zeroes its i-node number.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Iterator, List, Optional, Tuple

from repro.errors import FSError

#: ino(I) name(28s)
_DIRENT_FMT = "<I28s"
DIRENT_SIZE = struct.calcsize(_DIRENT_FMT)
MAX_NAME = 27


@dataclasses.dataclass(frozen=True)
class Dirent:
    """One directory entry."""

    ino: int
    name: str

    def encode(self) -> bytes:
        raw_name = self.name.encode("utf-8")
        if len(raw_name) > MAX_NAME:
            raise FSError(f"name too long ({len(raw_name)} > {MAX_NAME} bytes)")
        return struct.pack(_DIRENT_FMT, self.ino, raw_name)


def validate_name(name: str) -> None:
    """Reject names a directory cannot hold."""
    if not name or name in (".", ".."):
        raise FSError(f"invalid file name {name!r}")
    if "/" in name or "\x00" in name:
        raise FSError(f"invalid character in file name {name!r}")
    if len(name.encode("utf-8")) > MAX_NAME:
        raise FSError(f"name too long: {name!r}")


def entries_per_block(block_size: int) -> int:
    """How many directory entries fit in one block."""
    return block_size // DIRENT_SIZE


def iter_entries(raw: bytes) -> Iterator[Tuple[int, Dirent]]:
    """Yield (byte offset, entry) for every *used* slot in a block."""
    for offset in range(0, len(raw) - DIRENT_SIZE + 1, DIRENT_SIZE):
        ino, raw_name = struct.unpack_from(_DIRENT_FMT, raw, offset)
        if ino == 0:
            continue
        name = raw_name.rstrip(b"\x00").decode("utf-8", errors="replace")
        yield offset, Dirent(ino, name)


def find_entry(raw: bytes, name: str) -> Optional[Tuple[int, Dirent]]:
    """Locate the entry with ``name`` in a block, if present."""
    for offset, entry in iter_entries(raw):
        if entry.name == name:
            return offset, entry
    return None


def find_free_slot(raw: bytes) -> Optional[int]:
    """Byte offset of the first free slot in a block, if any."""
    for offset in range(0, len(raw) - DIRENT_SIZE + 1, DIRENT_SIZE):
        (ino,) = struct.unpack_from("<I", raw, offset)
        if ino == 0:
            return offset
    return None


def patch_block(raw: bytes, offset: int, entry: Optional[Dirent]) -> bytes:
    """Return ``raw`` with the slot at ``offset`` set (or cleared)."""
    record = entry.encode() if entry is not None else b"\x00" * DIRENT_SIZE
    return raw[:offset] + record + raw[offset + DIRENT_SIZE :]


def used_entries(blocks: List[bytes]) -> List[Dirent]:
    """All used entries across a directory's data blocks, in order."""
    found: List[Dirent] = []
    for raw in blocks:
        found.extend(entry for _offset, entry in iter_entries(raw))
    return found
