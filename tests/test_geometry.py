"""Unit tests for disk geometry."""

import pytest

from repro.disk.geometry import DiskGeometry, TRAILER_SIZE


class TestDiskGeometry:
    def test_paper_partition(self):
        geo = DiskGeometry.paper_partition()
        assert geo.block_size == 4096
        assert geo.segment_size == 512 * 1024
        assert geo.num_segments == 800
        assert geo.partition_size == 400 * 1024 * 1024

    def test_usable_size_excludes_trailer(self):
        geo = DiskGeometry.small()
        assert geo.usable_size == geo.segment_size - TRAILER_SIZE

    def test_max_data_blocks(self):
        geo = DiskGeometry(block_size=4096, segment_size=512 * 1024, num_segments=4)
        # 524288 - 40 trailer = 524248 -> 127 whole blocks
        assert geo.max_data_blocks == 127

    def test_segment_offset(self):
        geo = DiskGeometry.small(num_segments=8)
        assert geo.segment_offset(0) == 0
        assert geo.segment_offset(3) == 3 * geo.segment_size

    def test_segment_offset_bounds(self):
        geo = DiskGeometry.small(num_segments=8)
        with pytest.raises(ValueError):
            geo.segment_offset(8)
        with pytest.raises(ValueError):
            geo.segment_offset(-1)

    def test_slot_offset(self):
        geo = DiskGeometry.small()
        assert geo.slot_offset(0) == 0
        assert geo.slot_offset(2) == 2 * geo.block_size

    def test_slot_offset_bounds(self):
        geo = DiskGeometry.small()
        with pytest.raises(ValueError):
            geo.slot_offset(geo.max_data_blocks)

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            DiskGeometry(block_size=0, segment_size=1024, num_segments=4)

    def test_rejects_tiny_segment(self):
        with pytest.raises(ValueError):
            DiskGeometry(block_size=4096, segment_size=4096, num_segments=4)

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            DiskGeometry(block_size=512, segment_size=8192, num_segments=0)
