"""Parameter sweeps: run an experiment across a config grid.

A small utility for sensitivity studies like Ablation F: take a grid
of named parameter values, run a measurement callable at every point,
and collect the results into a table-ready structure.

Example::

    from repro.harness.sweep import Sweep

    sweep = Sweep(
        {"segment_kb": [128, 256, 512], "cache_blocks": [256, 1024]}
    )
    results = sweep.run(measure)       # measure(**point) -> dict
    print(sweep.table(results, metric="tps"))
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, Iterator, List, Mapping, Sequence

from repro.harness.reporting import format_table


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One point of the grid and the metrics measured there."""

    params: Mapping[str, Any]
    metrics: Mapping[str, float]

    def label(self) -> str:
        """Compact ``k=v`` label for tables."""
        return ", ".join(f"{k}={v}" for k, v in self.params.items())


class Sweep:
    """A cartesian parameter grid with a measurement runner."""

    def __init__(self, grid: Mapping[str, Sequence[Any]]) -> None:
        if not grid:
            raise ValueError("sweep grid must name at least one parameter")
        for name, values in grid.items():
            if not values:
                raise ValueError(f"parameter {name!r} has no values")
        self.grid = {name: list(values) for name, values in grid.items()}

    def points(self) -> Iterator[Dict[str, Any]]:
        """Yield every grid point as a parameter dict."""
        names = list(self.grid)
        for combo in itertools.product(*(self.grid[n] for n in names)):
            yield dict(zip(names, combo))

    def __len__(self) -> int:
        size = 1
        for values in self.grid.values():
            size *= len(values)
        return size

    def run(
        self,
        measure: Callable[..., Mapping[str, float]],
        progress: Callable[[Dict[str, Any]], None] = None,
    ) -> List[SweepPoint]:
        """Run ``measure(**point)`` at every grid point.

        ``measure`` returns a mapping of metric name -> value; points
        are evaluated in deterministic grid order.
        """
        results: List[SweepPoint] = []
        for point in self.points():
            if progress is not None:
                progress(point)
            metrics = measure(**point)
            results.append(SweepPoint(params=point, metrics=dict(metrics)))
        return results

    @staticmethod
    def table(
        results: Sequence[SweepPoint],
        metric: str,
        title: str = "sweep results",
        precision: int = 2,
    ) -> str:
        """Render one metric across all points as a table.

        With exactly two swept parameters, the first becomes the rows
        and the second the columns; otherwise one row per point.
        """
        if not results:
            raise ValueError("no results to render")
        param_names = list(results[0].params)
        if len(param_names) == 2:
            row_name, col_name = param_names
            row_values = sorted(
                {p.params[row_name] for p in results}, key=str
            )
            col_values = sorted(
                {p.params[col_name] for p in results}, key=str
            )
            lookup = {
                (p.params[row_name], p.params[col_name]): p.metrics[metric]
                for p in results
            }
            rows = {
                f"{row_name}={row}": [
                    lookup[(row, col)] for col in col_values
                ]
                for row in row_values
            }
            columns = [f"{col_name}={col}" for col in col_values]
        else:
            rows = {p.label(): [p.metrics[metric]] for p in results}
            columns = [metric]
        return format_table(
            f"{title} — {metric}", columns, rows, precision=precision
        )

    @staticmethod
    def best(
        results: Sequence[SweepPoint], metric: str, maximize: bool = True
    ) -> SweepPoint:
        """The grid point with the best value of ``metric``."""
        chooser = max if maximize else min
        return chooser(results, key=lambda p: p.metrics[metric])
