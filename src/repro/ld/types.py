"""Identifier and address types of the logical-disk interface.

Logical block and list identifiers are plain integers handed out by
the logical disk; clients never see physical addresses.  The
:class:`PhysAddr` type is internal to LD implementations (a segment
number and a data-block slot within it) but lives here because the
segment summaries serialize it.
"""

from __future__ import annotations

import dataclasses
from typing import NewType, Optional, Union

#: Logical block identifier (assigned by NewBlock, never reused).
BlockId = NewType("BlockId", int)

#: Logical list identifier (assigned by NewList, never reused).
ListId = NewType("ListId", int)

#: Atomic-recovery-unit identifier (assigned by BeginARU).
ARUId = NewType("ARUId", int)

#: The ARU tag meaning "simple operation, not part of any ARU".
ARU_NONE: ARUId = ARUId(0)

#: First identifier of the *system* id range.  Ordinary allocations
#: hand out dense ids from 1; infrastructure the storage system
#: creates for itself — replica mirrors on peer shards of an array —
#: uses forced ids at or above this base so it never collides with
#: (or perturbs the striping arithmetic of) client-visible ids.
#: Summaries and checkpoints carry 64-bit ids, so the range is safe
#: on disk.
SYSTEM_ID_BASE = 1 << 40


def is_system_id(identifier: int) -> bool:
    """Whether an id belongs to the reserved system range."""
    return int(identifier) >= SYSTEM_ID_BASE


class _First:
    """Sentinel: insert a new block at the beginning of its list."""

    _instance: Optional["_First"] = None

    def __new__(cls) -> "_First":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "FIRST"


#: Predecessor sentinel for NewBlock: place the block first in the list.
FIRST = _First()

#: A block's insertion point: FIRST or the BlockId to insert after.
Predecessor = Union[_First, BlockId]


@dataclasses.dataclass(frozen=True, order=True)
class PhysAddr:
    """Physical location of a block: (segment number, data slot)."""

    segment: int
    slot: int

    def __post_init__(self) -> None:
        if self.segment < 0 or self.slot < 0:
            raise ValueError(f"negative physical address {self!r}")

    def __repr__(self) -> str:
        return f"PhysAddr(seg={self.segment}, slot={self.slot})"
