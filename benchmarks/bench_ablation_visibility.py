"""Ablation A — the cost of the three read-visibility options.

Section 3.3 defines three Read-visibility policies and the paper
implements option 3 (ARU-local) because, while the most complex, it
makes the honest test case for overhead.  This ablation runs an
ARU-heavy read/write workload on a raw logical disk under each
policy.  Expected shape: option 1 (scan all shadows) costs the most
per read when many ARUs are active; option 2 (committed only) is the
cheapest; option 3 sits between them.
"""

import pytest

from repro.core.visibility import Visibility
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.harness.reporting import format_table
from repro.ld.types import FIRST
from repro.lld.lld import LLD

from benchmarks.conftest import full_scale, report_table

N_ROUNDS = 4000 if full_scale() else 800
N_ARUS = 16
N_BLOCKS = 32

_RESULTS = {}


def run_policy(policy: Visibility) -> float:
    """ARU-heavy mixed workload; returns simulated ms per round."""
    geo = DiskGeometry.small(num_segments=256)
    disk = SimulatedDisk(geo)
    lld = LLD(disk, visibility=policy, checkpoint_slot_segments=2)
    lst = lld.new_list()
    blocks = []
    previous = FIRST
    for index in range(N_BLOCKS):
        block = lld.new_block(lst, predecessor=previous)
        lld.write(block, f"seed-{index}".encode())
        previous = block
        blocks.append(block)
    lld.flush()
    # Keep N_ARUS long-lived ARUs, each holding shadow versions of
    # every block, while a reader stream hammers Read.
    arus = [lld.begin_aru() for _ in range(N_ARUS)]
    for stream, aru in enumerate(arus):
        for block in blocks:
            lld.write(block, f"shadow-{stream}".encode(), aru=aru)
    # Warm the block cache so the measurement isolates the version
    # lookup cost rather than first-touch disk reads (which option 1
    # sidesteps entirely by serving in-memory shadow data).
    for block in blocks:
        lld.read(block)
    start = lld.clock.now_us
    for round_no in range(N_ROUNDS):
        block = blocks[round_no % N_BLOCKS]
        lld.read(block)
        lld.read(block, aru=arus[round_no % N_ARUS])
    elapsed_ms = (lld.clock.now_us - start) / 1000.0
    for aru in arus:
        lld.abort_aru(aru)
    return elapsed_ms / N_ROUNDS


@pytest.mark.benchmark(group="ablation-visibility")
@pytest.mark.parametrize(
    "policy",
    [
        Visibility.MOST_RECENT_SHADOW,
        Visibility.COMMITTED_ONLY,
        Visibility.ARU_LOCAL,
    ],
    ids=lambda p: p.name.lower(),
)
def test_visibility_policy_cost(benchmark, policy):
    per_round = benchmark.pedantic(
        lambda: run_policy(policy), rounds=1, iterations=1
    )
    _RESULTS[policy.name] = per_round
    benchmark.extra_info["simulated_ms_per_round"] = round(per_round, 5)
    if len(_RESULTS) == 3:
        table = format_table(
            "Ablation A — read cost under the three visibility options "
            f"({N_ARUS} active ARUs shadowing every block)",
            ["sim ms / round"],
            {name: [value] for name, value in sorted(_RESULTS.items())},
            precision=4,
        )
        report_table("ablation_visibility", table)
        # Option 2 never walks shadow chains: cheapest reads.
        assert (
            _RESULTS["COMMITTED_ONLY"]
            <= _RESULTS["ARU_LOCAL"]
            <= _RESULTS["MOST_RECENT_SHADOW"] * 1.01
        )
