"""A strict two-phase lock manager with wait-die deadlock avoidance.

Locks are held on arbitrary hashable resources (the transaction layer
uses block and list identifiers).  Shared locks are compatible with
shared locks; exclusive locks are compatible with nothing.  Lock
upgrades (shared -> exclusive) are supported.

Deadlock avoidance is the classic *wait-die* scheme: a transaction
may wait only for **older** transactions (smaller timestamp); when a
younger one wants a lock an older one holds, the younger requester
"dies" (:class:`~repro.errors.DeadlockError`) and is expected to
abort and retry **with its original timestamp** (see
:func:`repro.txn.transactions.run_transaction`, which threads the
timestamp through :meth:`repro.txn.transactions.TransactionManager.
begin`).  Retrying with the original timestamp is what makes wait-die
starvation-free: a victim only ever gets *relatively older* on each
retry, so it eventually outranks every competitor and wins.

Two refinements over the textbook scheme, both needed once many
threads actually contend (``docs/CONCURRENCY.md`` discusses them):

* **Waiter-aware grants.** A requester conflicts not only with the
  current *holders* but also with older *waiters*.  Without this, a
  stream of young shared requesters can be granted over and over
  while an older exclusive waiter starves — wait-die only kills
  waits-for-older, and those young readers never wait.  Letting an
  older waiter block (kill, in wait-die terms) younger conflicting
  requesters keeps every wait pointed at strictly younger owners, so
  the waits-for graph stays acyclic and the scheme stays
  deadlock-free.
* **Deadline timeouts.** Each :meth:`LockManager.acquire` computes
  one monotonic deadline up front and waits only for the *remaining*
  time after every wakeup.  Passing the full timeout to every
  ``Condition.wait`` call would reset the clock on each
  ``notify_all`` — under heavy traffic a waiter's effective timeout
  becomes unbounded, which is exactly when timeouts matter most.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Dict, Hashable, Set

from repro.errors import DeadlockError, LockError


class LockMode(enum.Enum):
    """Lock compatibility modes."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


def _conflicts(a: LockMode, b: LockMode) -> bool:
    return a is LockMode.EXCLUSIVE or b is LockMode.EXCLUSIVE


class _LockState:
    """Holders and waiters (by owner id -> mode) of one resource."""

    __slots__ = ("holders", "waiters")

    def __init__(self) -> None:
        self.holders: Dict[int, LockMode] = {}
        self.waiters: Dict[int, LockMode] = {}


class LockManager:
    """Grants shared/exclusive locks to timestamp-ordered owners."""

    def __init__(self, timeout_s: float = 10.0) -> None:
        self._mutex = threading.Lock()
        self._changed = threading.Condition(self._mutex)
        self._locks: Dict[Hashable, _LockState] = {}
        #: owner id -> priority timestamp (smaller = older = wins)
        self._owner_ts: Dict[int, int] = {}
        self.timeout_s = timeout_s
        self.grants = 0
        self.waits = 0
        self.deaths = 0
        self.timeouts = 0

    def register(self, owner: int, timestamp: int) -> None:
        """Introduce an owner with its wait-die priority timestamp."""
        with self._mutex:
            self._owner_ts[owner] = timestamp

    def acquire(self, owner: int, resource: Hashable, mode: LockMode) -> None:
        """Acquire (or upgrade to) ``mode`` on ``resource``.

        Raises:
            DeadlockError: If wait-die decides this owner must abort
                (it conflicts with an older holder or older waiter).
            LockError: If the owner was never registered, if a holder
                of the lock is not registered (corrupted lock table),
                or if the wait times out — a deadlock *symptom*
                callers should treat like a death (abort and retry
                with the original timestamp).
        """
        deadline = time.monotonic() + self.timeout_s
        with self._changed:
            if owner not in self._owner_ts:
                raise LockError(f"owner {owner} is not registered")
            waiting_on: Hashable = None
            registered_wait = False
            try:
                while True:
                    # Re-fetch each iteration: release_all drops empty
                    # lock states from the table while we wait, so a
                    # pre-wait reference could be an orphaned object.
                    state = self._locks.setdefault(resource, _LockState())
                    if self._compatible(state, owner, mode):
                        state.holders[owner] = self._merge_mode(
                            state, owner, mode
                        )
                        self.grants += 1
                        return
                    self._check_wait_die(state, owner, mode)
                    if not registered_wait:
                        state.waiters[owner] = mode
                        waiting_on = resource
                        registered_wait = True
                        self.waits += 1
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._changed.wait(
                        timeout=remaining
                    ):
                        self.timeouts += 1
                        raise LockError(
                            f"timed out waiting for {mode.value} lock on "
                            f"{resource!r}"
                        )
            finally:
                if registered_wait:
                    state = self._locks.get(waiting_on)
                    if state is not None:
                        state.waiters.pop(owner, None)
                        if not state.holders and not state.waiters:
                            del self._locks[waiting_on]
                        else:
                            # Our departure may unblock a younger
                            # requester that was queued behind us.
                            self._changed.notify_all()

    def _merge_mode(
        self, state: _LockState, owner: int, mode: LockMode
    ) -> LockMode:
        held = state.holders.get(owner)
        if held is LockMode.EXCLUSIVE or mode is LockMode.EXCLUSIVE:
            return LockMode.EXCLUSIVE
        return LockMode.SHARED

    def _ts(self, owner: int, other: int, resource_hint: str) -> int:
        """The registered timestamp of ``other`` — a holder or waiter
        seen by ``owner``.  An unregistered entry is corrupted state
        (release_all removes table entries and registration under one
        mutex acquisition), so it raises rather than silently winning
        every wait-die comparison."""
        ts = self._owner_ts.get(other)
        if ts is None:
            raise LockError(
                f"lock table corrupted: {resource_hint} {other} is not a "
                f"registered owner (seen by owner {owner})"
            )
        return ts

    def _compatible(
        self, state: _LockState, owner: int, mode: LockMode
    ) -> bool:
        for holder, held_mode in state.holders.items():
            if holder == owner:
                continue
            if _conflicts(mode, held_mode):
                return False
        # Waiter-aware grants: never overtake an *older* conflicting
        # waiter, or an old exclusive upgrade can starve behind an
        # endless stream of young shared grants.  An upgrader (owner
        # already holds the lock) is exempt — it must run before any
        # waiter can make progress anyway.
        if owner not in state.holders:
            my_ts = self._owner_ts[owner]
            for waiter, wait_mode in state.waiters.items():
                if waiter == owner:
                    continue
                if _conflicts(mode, wait_mode) and (
                    self._ts(owner, waiter, "waiter") < my_ts
                ):
                    return False
        return True

    def _check_wait_die(
        self, state: _LockState, owner: int, mode: LockMode
    ) -> None:
        my_ts = self._owner_ts[owner]
        for holder, held_mode in state.holders.items():
            if holder == owner or not _conflicts(mode, held_mode):
                continue
            holder_ts = self._ts(owner, holder, "holder")
            if my_ts > holder_ts:
                self.deaths += 1
                raise DeadlockError(
                    f"wait-die: owner {owner} (ts {my_ts}) must not wait "
                    f"for older owner {holder} (ts {holder_ts})"
                )
        for waiter, wait_mode in state.waiters.items():
            if waiter == owner or not _conflicts(mode, wait_mode):
                continue
            if my_ts > self._ts(owner, waiter, "waiter"):
                self.deaths += 1
                raise DeadlockError(
                    f"wait-die: owner {owner} (ts {my_ts}) must not queue "
                    f"behind older waiter {waiter}"
                )

    def release_all(self, owner: int) -> int:
        """Drop every lock the owner holds; returns how many.

        Also retires the owner's timestamp registration, so a
        released owner id can never shadow the lock table again.
        """
        with self._changed:
            released = 0
            empty = []
            for resource, state in self._locks.items():
                if owner in state.holders:
                    del state.holders[owner]
                    released += 1
                state.waiters.pop(owner, None)
                if not state.holders and not state.waiters:
                    empty.append(resource)
            for resource in empty:
                del self._locks[resource]
            self._owner_ts.pop(owner, None)
            self._changed.notify_all()
            return released

    def held_by(self, owner: int) -> Set[Hashable]:
        """Resources the owner currently holds locks on."""
        with self._mutex:
            return {
                resource
                for resource, state in self._locks.items()
                if owner in state.holders
            }

    # ------------------------------------------------------------------
    # Introspection (leak accounting)
    # ------------------------------------------------------------------

    def owner_count(self) -> int:
        """Registered owners — 0 when every transaction finished."""
        with self._mutex:
            return len(self._owner_ts)

    def resource_count(self) -> int:
        """Resources with any holder or waiter — 0 at quiesce."""
        with self._mutex:
            return len(self._locks)

    def snapshot(self) -> dict:
        """Counters plus live table sizes, for stats() views and the
        front end's leak assertions (all zeros at quiesce)."""
        with self._mutex:
            return {
                "grants": self.grants,
                "waits": self.waits,
                "deaths": self.deaths,
                "timeouts": self.timeouts,
                "owners_registered": len(self._owner_ts),
                "resources_locked": len(self._locks),
                "locks_held": sum(
                    len(state.holders) for state in self._locks.values()
                ),
                "waiters": sum(
                    len(state.waiters) for state in self._locks.values()
                ),
            }
