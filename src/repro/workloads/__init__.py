"""Workload generators for the paper's benchmarks.

* :mod:`repro.workloads.smallfile` — the small-file experiment of
  Figure 5: create+write, read, delete many 1 KB / 10 KB files.
* :mod:`repro.workloads.largefile` — the large-file experiment of
  Figure 6: sequential write, sequential read, random write, random
  read, sequential re-read of one 78.125 MB file.
* :mod:`repro.workloads.arulat` — the Section 5.3 microbenchmark:
  begin and end an empty ARU many times.
* :mod:`repro.workloads.generator` — synthetic mixed workloads for
  torture tests and the cleaner ablation.

All timings are *simulated* seconds from the shared
:class:`~repro.disk.clock.SimClock`.
"""

from repro.workloads.arulat import ARULatencyResult, run_aru_latency
from repro.workloads.largefile import LargeFileResult, run_large_file
from repro.workloads.postmark import PostmarkResult, run_postmark
from repro.workloads.smallfile import SmallFileResult, run_small_files

__all__ = [
    "ARULatencyResult",
    "LargeFileResult",
    "PostmarkResult",
    "SmallFileResult",
    "run_aru_latency",
    "run_large_file",
    "run_postmark",
    "run_small_files",
]
