"""Unit tests for fault injection."""

import pytest

from repro.disk.faults import CrashPlan, FaultInjector, MediaFault, _flip_bits
from repro.errors import DiskCrashedError, MediaError


class TestCrashPlan:
    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            CrashPlan(after_writes=-1)

    def test_zero_budget_crashes_first_write(self):
        injector = FaultInjector(CrashPlan(after_writes=0))
        assert injector.on_write(0, 1000) == 0
        assert injector.crashed


class TestMediaFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MediaFault(0, kind="melted")


class TestTearGranularity:
    def test_rejects_unknown_granularity(self):
        with pytest.raises(ValueError):
            CrashPlan(after_writes=0, torn=True, granularity="nibble")

    def test_rejects_bad_sector_size(self):
        with pytest.raises(ValueError):
            CrashPlan(after_writes=0, torn=True, sector_size=0)

    def test_default_tear_is_sector_aligned(self):
        for seed in range(20):
            injector = FaultInjector(
                CrashPlan(after_writes=0, torn=True, seed=seed)
            )
            surviving = injector.on_write(0, 64 * 1024)
            assert 0 < surviving < 64 * 1024
            assert surviving % 512 == 0

    def test_sub_sector_write_dropped_whole(self):
        # A write no larger than one sector cannot tear: real disks
        # commit sectors atomically.
        injector = FaultInjector(CrashPlan(after_writes=0, torn=True, seed=1))
        assert injector.on_write(0, 512) == 0
        injector = FaultInjector(CrashPlan(after_writes=0, torn=True, seed=1))
        assert injector.on_write(0, 8) == 0

    def test_custom_sector_size(self):
        injector = FaultInjector(
            CrashPlan(after_writes=0, torn=True, seed=2, sector_size=4096)
        )
        surviving = injector.on_write(0, 64 * 1024)
        assert 0 < surviving < 64 * 1024
        assert surviving % 4096 == 0

    def test_byte_mode_behind_flag(self):
        # The old byte-granular model stays available for sweeps that
        # want to explore every possible tear point.
        unaligned = False
        for seed in range(20):
            injector = FaultInjector(
                CrashPlan(
                    after_writes=0, torn=True, seed=seed, granularity="byte"
                )
            )
            surviving = injector.on_write(0, 1000)
            assert 1 <= surviving < 1000
            unaligned = unaligned or surviving % 512 != 0
        assert unaligned


class TestFaultInjector:
    def test_no_faults_passthrough(self):
        injector = FaultInjector()
        assert injector.on_write(0, 100) is None
        assert injector.on_read(0, b"abc") == b"abc"

    def test_crash_after_n_writes(self):
        injector = FaultInjector(CrashPlan(after_writes=2))
        assert injector.on_write(0, 100) is None
        assert injector.on_write(1, 100) is None
        assert injector.on_write(2, 100) == 0  # dropped whole
        assert injector.crashed

    def test_torn_write_keeps_prefix(self):
        injector = FaultInjector(CrashPlan(after_writes=0, torn=True, seed=3))
        surviving = injector.on_write(0, 1000)
        assert 1 <= surviving < 1000

    def test_torn_write_deterministic(self):
        a = FaultInjector(CrashPlan(after_writes=0, torn=True, seed=9))
        b = FaultInjector(CrashPlan(after_writes=0, torn=True, seed=9))
        assert a.on_write(0, 4096) == b.on_write(0, 4096)

    def test_io_after_crash_raises(self):
        injector = FaultInjector(CrashPlan(after_writes=0))
        injector.on_write(0, 10)
        with pytest.raises(DiskCrashedError):
            injector.on_write(1, 10)
        with pytest.raises(DiskCrashedError):
            injector.on_read(0, b"x")

    def test_power_cycle_restores_io(self):
        injector = FaultInjector(CrashPlan(after_writes=0))
        injector.on_write(0, 10)
        injector.power_cycle()
        assert injector.on_read(0, b"x") == b"x"
        assert injector.on_write(1, 10) is None  # plan cleared

    def test_unreadable_media_fault(self):
        injector = FaultInjector(media_faults={3: MediaFault(3, "unreadable")})
        with pytest.raises(MediaError):
            injector.on_read(3, b"data")
        assert injector.on_read(4, b"data") == b"data"

    def test_corrupt_media_fault_flips_bits(self):
        injector = FaultInjector()
        injector.add_media_fault(MediaFault(1, "corrupt"))
        assert injector.on_read(1, b"\x00\xff") == b"\xff\x00"

    def test_clear_media_fault(self):
        injector = FaultInjector()
        injector.add_media_fault(MediaFault(1, "unreadable"))
        injector.clear_media_fault(1)
        assert injector.on_read(1, b"ok") == b"ok"

    def test_flip_bits_involution(self):
        data = bytes(range(256))
        assert _flip_bits(_flip_bits(data)) == data
