"""`LLDConfig`: every LLD tuning knob in one validated dataclass.

The :class:`~repro.lld.lld.LLD` constructor grew a knob per PR
(write-behind depth, group commit, cleaner thresholds, cache size,
recovery parallelism…).  This module consolidates them: construct an
:class:`LLDConfig` and pass it as ``LLD(disk, config=cfg)``, or keep
using the historical keyword arguments — ``LLD(disk,
writeback_depth=8)`` — which :meth:`LLDConfig.from_kwargs` folds into
a config for you.  Either way :meth:`LLDConfig.validate` is the single
place knob values are checked.

``aru_mode`` and ``visibility`` live here too (they are constructor
knobs), but ``cost_model`` does not: it is a collaborating object
with its own type, not a tunable scalar, and stays a direct ``LLD``
parameter.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.visibility import Visibility


@dataclasses.dataclass(frozen=True)
class LLDConfig:
    """Tuning knobs for an LLD instance (and its recovery).

    Field groups, in rough subsystem order:

    * ARU semantics: ``aru_mode``, ``visibility``, ``conflict_policy``
    * read path: ``cache_blocks``, ``readahead``
    * checkpointing: ``checkpoint_slot_segments``
    * cleaner: ``clean_low_water``, ``clean_high_water``,
      ``cleaner_policy``
    * write pipeline: ``writeback_depth``, ``group_commit``,
      ``group_commit_max_parked``, ``group_commit_timeout_us``
    * recovery: ``recovery_parallel``, ``recovery_workers``,
      ``recovery_executor``, ``recovery_mode``,
      ``restore_tail_window``, ``restore_drain_segments``
    * observability: ``metrics``, ``recorder_events``,
      ``flight_dump_path``
    """

    aru_mode: str = "concurrent"
    visibility: Visibility = Visibility.ARU_LOCAL
    conflict_policy: str = "raise"
    cache_blocks: int = 2048
    readahead: bool = True
    checkpoint_slot_segments: Optional[int] = None
    clean_low_water: int = 4
    clean_high_water: int = 8
    cleaner_policy: str = "cost_benefit"
    writeback_depth: int = 0
    group_commit: bool = False
    group_commit_max_parked: int = 8
    group_commit_timeout_us: float = 10_000.0
    recovery_parallel: bool = True
    recovery_workers: int = 4
    #: Worker pool flavor for the parallel scan's CRC+decode lanes:
    #: ``"thread"`` (GIL-bound but cheap to start) or ``"process"``
    #: (a ``multiprocessing`` pool that wins wall-clock time on large
    #: scans).  Simulated time is identical either way — the pool
    #: flavor is a host-side detail the cost model never sees.
    recovery_executor: str = "thread"
    #: ``"eager"`` replays the whole log before the volume opens (the
    #: classic scan); ``"instant"`` opens the volume right after the
    #: checkpoint + summary-index pass and replays segments on demand
    #: per touched block/list, with a background sweep draining the
    #: rest in log order (see docs/RECOVERY.md).
    recovery_mode: str = "eager"
    #: Bytes read from each segment's tail during the instant-restore
    #: scan (must cover the trailer; summaries longer than the window
    #: trigger a follow-up batched read of exactly the missing bytes).
    restore_tail_window: int = 4096
    #: Segments the background sweep drains per public operation while
    #: a restore is in progress (0 = only on-demand + explicit drain).
    restore_drain_segments: int = 1
    metrics: bool = True
    recorder_events: int = 256
    flight_dump_path: Optional[str] = None

    def validate(self) -> "LLDConfig":
        """Raise ``ValueError`` for any out-of-range knob.

        This is the single validation point: the LLD constructor,
        ``recover()`` and ``build_variant`` all funnel through it.
        """
        if self.aru_mode not in ("concurrent", "sequential"):
            raise ValueError(f"unknown aru_mode: {self.aru_mode!r}")
        if self.conflict_policy not in ("raise", "skip"):
            raise ValueError(
                f"unknown conflict_policy: {self.conflict_policy!r}"
            )
        if self.cleaner_policy not in ("cost_benefit", "greedy"):
            raise ValueError(f"unknown cleaner policy: {self.cleaner_policy!r}")
        if self.cache_blocks < 0:
            raise ValueError(f"cache_blocks must be >= 0, got {self.cache_blocks}")
        if (
            self.checkpoint_slot_segments is not None
            and self.checkpoint_slot_segments < 1
        ):
            raise ValueError(
                "checkpoint_slot_segments must be >= 1, got "
                f"{self.checkpoint_slot_segments}"
            )
        if self.clean_low_water < 1:
            raise ValueError(
                f"clean_low_water must be >= 1, got {self.clean_low_water}"
            )
        if self.writeback_depth < 0:
            raise ValueError(
                f"writeback depth must be >= 0, got {self.writeback_depth}"
            )
        if self.group_commit_max_parked < 1:
            raise ValueError("group_commit_max_parked must be >= 1")
        if self.group_commit_timeout_us <= 0:
            raise ValueError(
                "group_commit_timeout_us must be > 0, got "
                f"{self.group_commit_timeout_us}"
            )
        if self.recovery_workers < 1:
            raise ValueError(
                f"recovery_workers must be >= 1, got {self.recovery_workers}"
            )
        if self.recovery_executor not in ("thread", "process"):
            raise ValueError(
                f"unknown recovery_executor: {self.recovery_executor!r}"
            )
        if self.recovery_mode not in ("eager", "instant"):
            raise ValueError(f"unknown recovery_mode: {self.recovery_mode!r}")
        from repro.disk.geometry import TRAILER_SIZE

        if self.restore_tail_window < TRAILER_SIZE:
            raise ValueError(
                f"restore_tail_window must be >= {TRAILER_SIZE}, got "
                f"{self.restore_tail_window}"
            )
        if self.restore_drain_segments < 0:
            raise ValueError(
                "restore_drain_segments must be >= 0, got "
                f"{self.restore_drain_segments}"
            )
        if self.recorder_events < 1:
            raise ValueError(
                f"recorder_events must be >= 1, got {self.recorder_events}"
            )
        return self

    @classmethod
    def from_kwargs(
        cls, config: Optional["LLDConfig"] = None, **kwargs
    ) -> "LLDConfig":
        """The backward-compatible kwargs shim.

        Starts from ``config`` (or the defaults), applies any
        historical keyword arguments as overrides, and validates.
        Unknown keywords raise ``TypeError`` with the valid knob
        names, exactly as a misspelled constructor argument used to.
        """
        base = config if config is not None else cls()
        if not kwargs:
            return base.validate()
        valid = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise TypeError(
                f"unknown LLD config knob(s): {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(valid))})"
            )
        return dataclasses.replace(base, **kwargs).validate()

    def replace(self, **changes) -> "LLDConfig":
        """A copy with ``changes`` applied, re-validated."""
        return dataclasses.replace(self, **changes).validate()
