#!/usr/bin/env python3
"""Randomized crash torture: hammer the invariants, thousands of ways.

Runs many rounds of a random file-system workload, each with a crash
(possibly a torn segment write) at a random point, recovers, and
checks four things every time:

1. the file system is structurally consistent (fsck finds nothing),
2. everything that was synced before the crash is present and
   byte-identical to the model,
3. media faults injected after recovery are survived: a scrub pass
   salvages every live block, quarantines the failed segments, and
   the file system stays intact,
4. a fresh workload runs cleanly on the recovered system — and never
   reuses a quarantined segment.

Run:  python examples/crash_torture.py [rounds]
"""

import random
import sys

from repro.disk.faults import CrashPlan, FaultInjector, MediaFault
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskCrashedError
from repro.fs import MinixFS, fsck
from repro.lld.lld import LLD
from repro.lld.recovery import recover
from repro.lld.usage import SegmentState
from repro.lld.verify import verify_lld
from repro.workloads.generator import random_fs_ops, verify_against_model


def torture_round(round_no: int) -> dict:
    rng = random.Random(round_no)
    crash_after = rng.randrange(1, 40)
    torn = rng.random() < 0.5
    geometry = DiskGeometry.small(num_segments=128)
    injector = FaultInjector(
        CrashPlan(after_writes=crash_after, torn=torn, seed=round_no)
    )
    disk = SimulatedDisk(geometry, injector=injector)
    ld = LLD(disk, checkpoint_slot_segments=2)
    fs = MinixFS.mkfs(ld, n_inodes=512)

    synced_model = {}
    crashed = False
    try:
        # Several bursts; the model snapshot advances at each sync.
        for burst in range(20):
            trace = random_fs_ops(
                fs, n_ops=15, seed=round_no * 100 + burst,
                sync_every=None, name_prefix=f"b{burst}_",
            )
            fs.sync()
            synced_model = dict(trace.expected)
    except DiskCrashedError:
        crashed = True

    ld2, report = recover(disk.power_cycle(), checkpoint_slot_segments=2)
    fs2 = MinixFS.mount(ld2)

    check = fsck(fs2)
    assert check.clean, (
        f"round {round_no}: fsck found {[str(p) for p in check.problems]}"
    )
    if crashed:
        # Only data synced before the crash is guaranteed; later
        # bursts may partially exist as *whole files* (never halves).
        mismatches = [
            problem
            for problem in verify_against_model(fs2, synced_model)
            if "differ" in problem
        ]
    else:
        mismatches = verify_against_model(fs2, synced_model)
    assert not mismatches, f"round {round_no}: {mismatches[:3]}"

    # Media-fault phase: fail the most-live segments under the
    # recovered system, then scrub.  The cache is warmed first, so
    # every live block has a byte-identical salvage source.
    victims = []
    if rng.random() < 0.7:
        live_blocks = [bid for bid, _v in ld2.bmap.persistent_blocks()]
        ld2.read_many(live_blocks)
        dirty = sorted(
            (seg for seg, _live, _seq in ld2.usage.dirty_segments()),
            key=lambda seg: ld2.usage.live_slots(seg),
            reverse=True,
        )
        victims = dirty[:2]
        for index, seg in enumerate(victims):
            kind = "corrupt" if index % 2 == 0 else "unreadable"
            ld2.disk.injector.add_media_fault(MediaFault(seg, kind))
        scrub = ld2.scrub()
        assert sorted(scrub.damaged) == sorted(victims)
        assert scrub.blocks_lost == 0, (
            f"round {round_no}: lost {scrub.lost_blocks} despite warm cache"
        )
        assert verify_lld(ld2) == [], f"round {round_no}: verify after scrub"
        check = fsck(fs2)
        assert check.clean, f"round {round_no}: fsck after scrub"
        mismatches = [
            problem
            for problem in verify_against_model(fs2, synced_model)
            if "differ" in problem
        ]
        assert not mismatches, f"round {round_no}: data after scrub"

    # The recovered system keeps working.
    post = random_fs_ops(
        fs2, n_ops=10, seed=round_no, sync_every=None, name_prefix="post_"
    )
    fs2.sync()
    assert verify_against_model(fs2, post.expected) == []
    for seg in victims:
        assert ld2.usage.state(seg) is SegmentState.QUARANTINED, (
            f"round {round_no}: quarantined segment {seg} was reused"
        )
    return {
        "crashed": crashed,
        "torn": torn,
        "orphans": len(report.orphan_blocks_freed),
        "invalid_segments": report.segments_invalid,
        "quarantined": len(victims),
    }


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    crashes = torn_crashes = orphans = quarantined = 0
    for round_no in range(rounds):
        outcome = torture_round(round_no)
        crashes += outcome["crashed"]
        torn_crashes += outcome["crashed"] and outcome["torn"]
        orphans += outcome["orphans"]
        quarantined += outcome["quarantined"]
        if (round_no + 1) % 10 == 0:
            print(f"  {round_no + 1}/{rounds} rounds, "
                  f"{crashes} crashes survived so far")
    print(f"\n{rounds} torture rounds: {crashes} crashes "
          f"({torn_crashes} with torn segments), "
          f"{orphans} orphan blocks reclaimed, "
          f"{quarantined} segments quarantined by scrub, "
          "zero inconsistencies.")


if __name__ == "__main__":
    main()
