"""Unit tests for alternative records and the perpendicular chains."""

import pytest

from repro.core.records import BlockVersion, ChainRoot, ListVersion, StateChain
from repro.core.versions import VersionState
from repro.disk.clock import CostMeter, CostModel, SimClock
from repro.ld.types import ARU_NONE, ARUId, BlockId, ListId, PhysAddr


def _shadow(block_id, aru, ts=0):
    return BlockVersion(
        BlockId(block_id), VersionState.SHADOW, aru_id=ARUId(aru), timestamp=ts
    )


def _committed(block_id, ts=0):
    return BlockVersion(BlockId(block_id), VersionState.COMMITTED, timestamp=ts)


class TestChainRoot:
    def test_empty(self):
        root = ChainRoot()
        assert root.empty
        assert root.find(VersionState.COMMITTED, ARU_NONE) is None

    def test_push_and_find_committed(self):
        root = ChainRoot()
        version = _committed(1)
        root.push_alt(version)
        assert root.find(VersionState.COMMITTED, ARU_NONE) is version
        assert not root.empty

    def test_find_shadow_by_aru(self):
        root = ChainRoot()
        a = _shadow(1, aru=1)
        b = _shadow(1, aru=2)
        root.push_alt(a)
        root.push_alt(b)
        assert root.find(VersionState.SHADOW, ARUId(1)) is a
        assert root.find(VersionState.SHADOW, ARUId(2)) is b
        assert root.find(VersionState.SHADOW, ARUId(3)) is None

    def test_n_plus_2_versions(self):
        """Section 3.3: n active ARUs -> up to n+2 versions coexist."""
        root = ChainRoot()
        root.persistent = BlockVersion(BlockId(1), VersionState.PERSISTENT)
        root.push_alt(_committed(1))
        for aru in range(1, 6):
            root.push_alt(_shadow(1, aru=aru))
        assert len(list(root.iter_alts())) == 6  # 5 shadows + 1 committed
        assert root.persistent is not None  # + persistent = n + 2

    def test_remove_alt(self):
        root = ChainRoot()
        a, b, c = _shadow(1, 1), _committed(1), _shadow(1, 2)
        for version in (a, b, c):
            root.push_alt(version)
        root.remove_alt(b)
        assert list(root.iter_alts()) == [c, a]
        root.remove_alt(c)
        root.remove_alt(a)
        assert root.empty

    def test_remove_missing_raises(self):
        root = ChainRoot()
        with pytest.raises(ValueError):
            root.remove_alt(_committed(1))

    def test_newest_shadow_by_timestamp(self):
        root = ChainRoot()
        old = _shadow(1, aru=1, ts=5)
        new = _shadow(1, aru=2, ts=9)
        root.push_alt(new)
        root.push_alt(old)
        assert root.newest_shadow() is new

    def test_find_charges_chain_hops(self):
        meter = CostMeter(SimClock(), CostModel(chain_hop_us=1.0))
        root = ChainRoot()
        for aru in range(1, 4):
            root.push_alt(_shadow(1, aru=aru))
        root.find(VersionState.COMMITTED, ARU_NONE, meter)
        assert meter.counters["chain_hop_us"] == 3


class TestStateChain:
    def test_push_and_iterate(self):
        chain = StateChain()
        versions = [_committed(index) for index in range(3)]
        for version in versions:
            chain.push(version)
        assert list(chain) == list(reversed(versions))
        assert len(chain) == 3

    def test_drain_empties(self):
        chain = StateChain()
        for index in range(4):
            chain.push(_committed(index))
        drained = list(chain.drain())
        assert len(drained) == 4
        assert len(chain) == 0
        assert all(v.next_same_state is None for v in drained)

    def test_remove_middle(self):
        chain = StateChain()
        a, b, c = _committed(1), _committed(2), _committed(3)
        for version in (a, b, c):
            chain.push(version)
        chain.remove(b)
        assert list(chain) == [c, a]
        assert len(chain) == 2

    def test_remove_while_iterating(self):
        chain = StateChain()
        versions = [_committed(index) for index in range(5)]
        for version in versions:
            chain.push(version)
        for version in chain:
            chain.remove(version)
        assert len(chain) == 0

    def test_remove_missing_raises(self):
        chain = StateChain()
        with pytest.raises(ValueError):
            chain.remove(_committed(9))


class TestVersionRecords:
    def test_block_copy_from(self):
        src = _committed(1)
        src.allocated = True
        src.address = PhysAddr(3, 4)
        src.successor = BlockId(9)
        src.list_id = ListId(2)
        src.timestamp = 77
        dst = _shadow(1, aru=1)
        dst.copy_from(src)
        assert dst.address == PhysAddr(3, 4)
        assert dst.successor == BlockId(9)
        assert dst.list_id == ListId(2)
        assert dst.timestamp == 77
        assert dst.state is VersionState.SHADOW  # state not copied

    def test_list_copy_from(self):
        src = ListVersion(ListId(1), VersionState.COMMITTED)
        src.first = BlockId(5)
        src.last = BlockId(7)
        src.count = 3
        dst = ListVersion(ListId(1), VersionState.SHADOW, aru_id=ARUId(2))
        dst.copy_from(src)
        assert (dst.first, dst.last, dst.count) == (BlockId(5), BlockId(7), 3)
        assert dst.aru_id == ARUId(2)
