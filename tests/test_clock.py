"""Unit tests for the simulated clock and CPU cost model."""

import dataclasses

import pytest

from repro.disk.clock import CostMeter, CostModel, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0.0

    def test_custom_start(self):
        assert SimClock(start_us=500.0).now_us == 500.0

    def test_advance(self):
        clock = SimClock()
        clock.advance_us(12.5)
        clock.advance_us(7.5)
        assert clock.now_us == 20.0

    def test_advance_zero_is_allowed(self):
        clock = SimClock()
        clock.advance_us(0.0)
        assert clock.now_us == 0.0

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_us(-1.0)

    def test_now_s_converts_units(self):
        clock = SimClock()
        clock.advance_us(2_500_000)
        assert clock.now_s == pytest.approx(2.5)

    def test_ticks_are_unique_and_increasing(self):
        clock = SimClock()
        ticks = [clock.tick() for _ in range(100)]
        assert ticks == sorted(ticks)
        assert len(set(ticks)) == 100

    def test_ticks_do_not_advance_time(self):
        clock = SimClock()
        clock.tick()
        assert clock.now_us == 0.0

    def test_elapsed_since(self):
        clock = SimClock()
        mark = clock.now_us
        clock.advance_us(42.0)
        assert clock.elapsed_since_us(mark) == 42.0


class TestCostModel:
    def test_defaults_are_positive(self):
        model = CostModel()
        for field in dataclasses.fields(model):
            assert getattr(model, field.name) >= 0, field.name

    def test_scaled(self):
        model = CostModel()
        doubled = model.scaled(2.0)
        assert doubled.block_copy_us == pytest.approx(2 * model.block_copy_us)
        assert doubled.aru_begin_us == pytest.approx(2 * model.aru_begin_us)

    def test_scaled_is_new_instance(self):
        model = CostModel()
        assert model.scaled(1.0) is not model

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CostModel().ld_call_us = 5.0


class TestCostMeter:
    def test_charge_advances_clock(self):
        clock = SimClock()
        meter = CostMeter(clock, CostModel(ld_call_us=3.0))
        meter.charge("ld_call_us")
        assert clock.now_us == 3.0

    def test_charge_count(self):
        clock = SimClock()
        meter = CostMeter(clock, CostModel(chain_hop_us=1.5))
        meter.charge("chain_hop_us", 4)
        assert clock.now_us == pytest.approx(6.0)
        assert meter.counters["chain_hop_us"] == 4

    def test_charge_unknown_category(self):
        meter = CostMeter(SimClock(), CostModel())
        with pytest.raises(AttributeError):
            meter.charge("not_a_cost")

    def test_total_charged(self):
        meter = CostMeter(SimClock(), CostModel(ld_call_us=2.0, fs_call_us=5.0))
        meter.charge("ld_call_us")
        meter.charge("fs_call_us", 2)
        assert meter.total_charged_us() == pytest.approx(12.0)

    def test_reset_counters_keeps_clock(self):
        clock = SimClock()
        meter = CostMeter(clock, CostModel(ld_call_us=2.0))
        meter.charge("ld_call_us")
        meter.reset_counters()
        assert meter.counters == {}
        assert clock.now_us == 2.0
