"""In-memory segment buffers and the on-disk segment codec.

A segment holds data blocks filling from the front and a summary
filling toward a fixed-size trailer at the tail; the segment is full
when the two regions would collide.  Rewriting a block that is
already in the *current, unwritten* buffer overwrites it in place —
its physical address has not been published to disk yet, so this is
not a log violation — which is how LLD absorbs repeated meta-data
updates (directory and i-node blocks) without writing a copy per
update.

Trailer layout (see :data:`TRAILER_FMT`): magic, format version,
sequence number, entry count, block count, summary length, CRC-32 of
the summary region (summary bytes plus the trailer fields up to it),
CRC-32 of the whole segment.  A torn segment write destroys the
trailer and/or a checksum, so recovery detects and skips it.  The
summary CRC lets recovery validate a segment's *summary* from a tail
window alone — the basis of instant restore's redo-on-demand scan —
while the whole-image CRC still guards data slots end to end.

Wall-clock fast path
--------------------

The buffer owns a preallocated ``bytearray`` segment image and fills
it *as blocks arrive*: :meth:`SegmentBuffer.add_block` slice-assigns
the caller's data (``bytes`` or ``memoryview``) straight into the
image, so :meth:`SegmentBuffer.seal` only has to append the summary
and trailer in place and hand the image out — no assembly copy of the
data region at seal time and no final ``bytes(image)`` copy (the disk
layer makes the single platter copy).  A sealed buffer refuses all
further mutation, which is what makes returning the internal
``bytearray`` alias-safe (``tests/test_wallclock_fastpath.py`` pins
this).  :func:`reference_seal` keeps the original copy-everything
assembly as a differential oracle: both must produce byte-identical
images.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Optional, Tuple

from repro.disk.geometry import DiskGeometry, TRAILER_SIZE
from repro.ld.types import BlockId, PhysAddr
from repro.lld.summary import (
    SummaryEntry,
    decode_entries,
    decode_entry_tuples,
    encode_entries_into,
)

#: magic(4s) version(H) pad(H) seq(Q) nentries(I) nblocks(I)
#: summary_len(I) summary_crc(I) crc(Q)
TRAILER_FMT = "<4sHHQIIIIQ"
TRAILER_MAGIC = b"LLDS"
FORMAT_VERSION = 2

#: Precompiled trailer codec (hot on the seal and recovery paths).
TRAILER_STRUCT = struct.Struct(TRAILER_FMT)
_CRC_STRUCT = struct.Struct("<Q")
_SUMMARY_CRC_STRUCT = struct.Struct("<I")

assert TRAILER_STRUCT.size == TRAILER_SIZE

#: Offset (from the segment end) of the summary CRC field and the
#: whole-image CRC field.  The summary CRC covers
#: ``[summary_start, segment_size - 12)`` — the summary bytes plus
#: every trailer field before the two checksums; the whole-image CRC
#: covers ``[0, segment_size - 8)``.
_SUMMARY_CRC_END = 12
_CRC_END = 8


def parse_trailer(trailer) -> Optional[Tuple[int, int, int, int, int, int]]:
    """Parse a raw segment trailer, validating magic and version.

    ``trailer`` is the final :data:`TRAILER_SIZE` bytes of a segment
    (bytes or memoryview).  Returns ``(seq, nentries, nblocks,
    summary_len, summary_crc, crc)`` or None if this is not an LLD
    trailer.  Shared by :func:`decode_segment` and recovery's trailer
    peek so both classify segments identically.
    """
    if len(trailer) != TRAILER_SIZE:
        return None
    magic, version, _pad, seq, nentries, nblocks, summary_len, summary_crc, crc = (
        TRAILER_STRUCT.unpack(trailer)
    )
    if magic != TRAILER_MAGIC or version != FORMAT_VERSION:
        return None
    return seq, nentries, nblocks, summary_len, summary_crc, crc


class SegmentBuffer:
    """The current segment being filled in main memory.

    Args:
        geometry: Partition layout.
        seq: This segment's log sequence number (strictly increasing
            across all segments ever written).
        segment_no: The physical segment this buffer will be written
            to.
    """

    __slots__ = (
        "geometry",
        "seq",
        "segment_no",
        "_image",
        "_slot_data",
        "_slot_owner",
        "_block_slot",
        "entries",
        "_summary_bytes",
        "_sealed",
    )

    def __init__(self, geometry: DiskGeometry, seq: int, segment_no: int) -> None:
        self.geometry = geometry
        self.seq = seq
        self.segment_no = segment_no
        #: The segment image, filled in place as blocks arrive.
        self._image = bytearray(geometry.segment_size)
        #: Per-slot source object: the caller's ``bytes`` (kept so
        #: buffer reads stay zero-copy) or None when the block arrived
        #: as a borrowed buffer (e.g. a cleaner memoryview) — those
        #: reads materialize from the image on demand.
        self._slot_data: List[Optional[bytes]] = []
        self._slot_owner: List[BlockId] = []
        self._block_slot: Dict[BlockId, int] = {}
        self.entries: List[SummaryEntry] = []
        self._summary_bytes = 0
        self._sealed = False

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    def bytes_free(self) -> int:
        """Bytes still available for data and summary combined."""
        used = (
            len(self._slot_data) * self.geometry.block_size + self._summary_bytes
        )
        return self.geometry.usable_size - used

    def has_room(self, new_blocks: int, entry_bytes: int) -> bool:
        """True if ``new_blocks`` data blocks plus ``entry_bytes`` of
        summary fit without colliding."""
        need = new_blocks * self.geometry.block_size + entry_bytes
        return need <= self.bytes_free()

    @property
    def is_empty(self) -> bool:
        """True if nothing has been placed in this buffer."""
        return not self._slot_data and not self.entries

    @property
    def is_sealed(self) -> bool:
        """True once :meth:`seal` has run; the buffer is then frozen."""
        return self._sealed

    @property
    def block_count(self) -> int:
        """Number of distinct data blocks currently in the buffer."""
        return len(self._slot_data)

    @property
    def entry_count(self) -> int:
        """Number of summary entries currently in the buffer."""
        return len(self.entries)

    @property
    def summary_bytes(self) -> int:
        """Encoded size of the summary accumulated so far."""
        return self._summary_bytes

    @property
    def fill_ratio(self) -> float:
        """Fraction of the usable segment capacity occupied by data
        blocks plus summary bytes — the quantity eager flushes waste."""
        used = (
            len(self._slot_data) * self.geometry.block_size
            + self._summary_bytes
        )
        return used / self.geometry.usable_size if self.geometry.usable_size else 0.0

    # ------------------------------------------------------------------
    # Filling
    # ------------------------------------------------------------------

    def add_block(self, block_id: BlockId, data) -> PhysAddr:
        """Place one block of data, deduplicating within this buffer.

        ``data`` may be ``bytes`` or any buffer (``memoryview``,
        ``bytearray``): it is slice-assigned into the segment image
        immediately, so borrowed views are consumed before return and
        never retained.  The caller must have checked :meth:`has_room`
        first when the block is new to this buffer.
        """
        if self._sealed:
            raise RuntimeError("segment buffer is sealed")
        if len(data) != self.geometry.block_size:
            raise ValueError(
                f"block data must be {self.geometry.block_size} bytes, "
                f"got {len(data)}"
            )
        slot = self._block_slot.get(block_id)
        if slot is None:
            slot = len(self._slot_data)
            if not self.has_room(1, 0):
                raise RuntimeError("segment buffer overflow (missing room check)")
            self._slot_data.append(data if type(data) is bytes else None)
            self._slot_owner.append(block_id)
            self._block_slot[block_id] = slot
        else:
            self._slot_data[slot] = data if type(data) is bytes else None
        offset = slot * self.geometry.block_size
        self._image[offset : offset + self.geometry.block_size] = data
        return PhysAddr(self.segment_no, slot)

    def add_entry(self, entry: SummaryEntry) -> None:
        """Append one summary entry (room must have been checked)."""
        if self._sealed:
            raise RuntimeError("segment buffer is sealed")
        size = entry.encoded_size()
        if size > self.bytes_free():
            raise RuntimeError("segment summary overflow (missing room check)")
        self.entries.append(entry)
        self._summary_bytes += size

    def contains_block(self, block_id: BlockId) -> bool:
        """True if this buffer currently holds data for ``block_id``."""
        return block_id in self._block_slot

    def _slot_bytes(self, slot: int) -> bytes:
        """The slot's data as ``bytes``, zero-copy when the caller's
        original object is on hand, materialized from the image (and
        cached) otherwise."""
        data = self._slot_data[slot]
        if data is None:
            offset = slot * self.geometry.block_size
            data = bytes(self._image[offset : offset + self.geometry.block_size])
            self._slot_data[slot] = data
        return data

    def get_block(self, block_id: BlockId) -> bytes:
        """Read a block's data out of the unwritten buffer."""
        return self._slot_bytes(self._block_slot[block_id])

    def get_slot(self, slot: int) -> bytes:
        """Read a data slot out of the unwritten buffer."""
        return self._slot_bytes(slot)

    def live_block_ids(self) -> Tuple[BlockId, ...]:
        """The distinct block ids placed in this buffer."""
        return tuple(self._block_slot.keys())

    def iter_blocks(self):
        """Yield (block id, slot, data) for every block in the buffer."""
        for block_id, slot in self._block_slot.items():
            yield block_id, slot, self._slot_bytes(slot)

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------

    def seal(self) -> bytearray:
        """Finish the segment image in place and return it.

        The image is exactly ``geometry.segment_size`` bytes: data
        slots (already in place, filled by :meth:`add_block`), summary
        just before the trailer, CRC over everything.  The returned
        object is the buffer's own ``bytearray`` — no copy — which is
        safe because sealing freezes the buffer: any further
        ``add_block``/``add_entry`` raises.  The disk layer stores an
        immutable ``bytes`` snapshot of whatever it is handed.
        """
        if self._sealed:
            raise RuntimeError("segment buffer is sealed")
        geo = self.geometry
        image = self._image
        summary_len = self._summary_bytes
        summary_start = geo.segment_size - TRAILER_SIZE - summary_len
        end = encode_entries_into(self.entries, image, summary_start)
        if end != summary_start + summary_len:
            raise RuntimeError("summary size accounting is inconsistent")
        TRAILER_STRUCT.pack_into(
            image,
            geo.segment_size - TRAILER_SIZE,
            TRAILER_MAGIC,
            FORMAT_VERSION,
            0,
            self.seq,
            len(self.entries),
            len(self._slot_data),
            summary_len,
            0,  # summary crc placeholder
            0,  # crc placeholder
        )
        summary_crc = zlib.crc32(
            memoryview(image)[summary_start : geo.segment_size - _SUMMARY_CRC_END]
        )
        _SUMMARY_CRC_STRUCT.pack_into(
            image, geo.segment_size - _SUMMARY_CRC_END, summary_crc
        )
        crc = zlib.crc32(memoryview(image)[: geo.segment_size - _CRC_END])
        _CRC_STRUCT.pack_into(image, geo.segment_size - _CRC_END, crc)
        self._sealed = True
        return image


def reference_seal(buffer: SegmentBuffer) -> bytes:
    """The pre-fast-path segment assembly, kept as a differential oracle.

    Builds the image the original way — fresh ``bytearray``, one copy
    per data slot at seal time, then summary, trailer and CRC — without
    touching ``buffer``'s own image or sealed flag.  Must produce a
    byte-identical image to :meth:`SegmentBuffer.seal`;
    ``bench_wallclock.py`` gates the fast path against it and
    ``tests/test_wallclock_fastpath.py`` proves the identity.
    """
    geo = buffer.geometry
    image = bytearray(geo.segment_size)
    block_size = geo.block_size
    for slot in range(buffer.block_count):
        offset = slot * block_size
        image[offset : offset + block_size] = buffer._slot_bytes(slot)
    summary_len = buffer.summary_bytes
    summary_start = geo.segment_size - TRAILER_SIZE - summary_len
    end = encode_entries_into(buffer.entries, image, summary_start)
    if end != summary_start + summary_len:
        raise RuntimeError("summary size accounting is inconsistent")
    TRAILER_STRUCT.pack_into(
        image,
        geo.segment_size - TRAILER_SIZE,
        TRAILER_MAGIC,
        FORMAT_VERSION,
        0,
        buffer.seq,
        len(buffer.entries),
        buffer.block_count,
        summary_len,
        0,  # summary crc placeholder
        0,  # crc placeholder
    )
    summary_crc = zlib.crc32(
        memoryview(image)[summary_start : geo.segment_size - _SUMMARY_CRC_END]
    )
    _SUMMARY_CRC_STRUCT.pack_into(
        image, geo.segment_size - _SUMMARY_CRC_END, summary_crc
    )
    crc = zlib.crc32(memoryview(image)[: geo.segment_size - _CRC_END])
    _CRC_STRUCT.pack_into(image, geo.segment_size - _CRC_END, crc)
    return bytes(image)


class DecodedSegment:
    """A validated on-disk segment, ready for recovery or cleaning.

    Carries the summary as raw field tuples (``entry_tuples``, from
    :func:`repro.lld.summary.decode_entry_tuples`) — the wall-clock
    fast path replay and cleaning loops consume these directly.  The
    :attr:`entries` property lazily re-decodes the summary bytes with
    the reference codec for consumers that want
    :class:`~repro.lld.summary.SummaryEntry` objects (inspection
    tools, tests); because it starts again from the raw bytes it
    doubles as an independent differential check on the tuple decoder.
    """

    __slots__ = (
        "segment_no",
        "seq",
        "entry_tuples",
        "block_count",
        "raw",
        "geometry",
        "summary_start",
        "summary_len",
        "_entries",
    )

    def __init__(
        self,
        segment_no: int,
        seq: int,
        entry_tuples: List[Tuple[int, ...]],
        block_count: int,
        raw,
        geometry: DiskGeometry,
        summary_start: int,
        summary_len: int,
    ) -> None:
        self.segment_no = segment_no
        self.seq = seq
        self.entry_tuples = entry_tuples
        self.block_count = block_count
        self.raw = raw
        self.geometry = geometry
        self.summary_start = summary_start
        self.summary_len = summary_len
        self._entries: Optional[List[SummaryEntry]] = None

    @property
    def entries(self) -> List[SummaryEntry]:
        """The summary as :class:`SummaryEntry` objects (lazy, cached).

        Decoded from the raw summary bytes with the reference codec,
        independently of :attr:`entry_tuples`.
        """
        if self._entries is None:
            view = memoryview(self.raw)
            self._entries = list(
                decode_entries(
                    view[self.summary_start : self.summary_start + self.summary_len]
                )
            )
        return self._entries

    @property
    def entry_count(self) -> int:
        """Number of summary entries (without materializing objects)."""
        return len(self.entry_tuples)

    def slot_data(self, slot: int) -> bytes:
        """Return the data of slot ``slot`` as ``bytes`` (a copy)."""
        if not 0 <= slot < self.block_count:
            raise ValueError(f"slot {slot} out of range for decoded segment")
        offset = slot * self.geometry.block_size
        return bytes(self.raw[offset : offset + self.geometry.block_size])

    def slot_view(self, slot: int) -> memoryview:
        """Return slot ``slot`` as a zero-copy read-only view.

        For hot consumers (cleaner evacuation, salvage) that hand the
        data straight to :meth:`SegmentBuffer.add_block`, which
        consumes the view immediately; do not retain the view anywhere
        user-visible (caches and read results must hold ``bytes``).
        """
        if not 0 <= slot < self.block_count:
            raise ValueError(f"slot {slot} out of range for decoded segment")
        offset = slot * self.geometry.block_size
        return memoryview(self.raw).toreadonly()[
            offset : offset + self.geometry.block_size
        ]


def decode_segment(
    raw, geometry: DiskGeometry, segment_no: int, check: str = "full"
) -> Optional[DecodedSegment]:
    """Validate and parse a raw segment image.

    Returns None if the segment is not a valid LLD segment (never
    written, torn, or corrupted) — recovery treats such segments as
    free space.  With ``check="full"`` (the default) one CRC-32 pass
    over the whole image (C-backed ``zlib.crc32``) validates
    everything, data slots included; ``check="summary"`` validates
    only the summary CRC (summary bytes plus trailer), which is the
    rule recovery classification uses so that eager and instant
    restore accept exactly the same set of segments.  The summary is
    then batch-decoded into field tuples in a single pass.
    """
    if check not in ("full", "summary"):
        raise ValueError(f"unknown check mode {check!r}")
    if len(raw) != geometry.segment_size:
        return None
    view = memoryview(raw)
    parsed = parse_trailer(view[geometry.segment_size - TRAILER_SIZE :])
    if parsed is None:
        return None
    seq, nentries, nblocks, summary_len, summary_crc, crc = parsed
    summary_start = geometry.segment_size - TRAILER_SIZE - summary_len
    if summary_start < nblocks * geometry.block_size:
        return None
    if check == "full":
        if zlib.crc32(view[: geometry.segment_size - _CRC_END]) != crc:
            return None
    else:
        checked = view[summary_start : geometry.segment_size - _SUMMARY_CRC_END]
        if zlib.crc32(checked) != summary_crc:
            return None
    try:
        entry_tuples = decode_entry_tuples(
            view[summary_start : summary_start + summary_len]
        )
    except ValueError:
        return None
    if len(entry_tuples) != nentries:
        return None
    return DecodedSegment(
        segment_no=segment_no,
        seq=seq,
        entry_tuples=entry_tuples,
        block_count=nblocks,
        raw=raw,
        geometry=geometry,
        summary_start=summary_start,
        summary_len=summary_len,
    )


def decode_segment_tail(tail, geometry: DiskGeometry, segment_no: int):
    """Decode a segment's summary from a tail window alone.

    ``tail`` is the *last* ``len(tail)`` bytes of the segment image
    (at least :data:`TRAILER_SIZE`).  Returns:

    * ``None`` — not a valid LLD segment (bad magic/version, summary
      CRC mismatch, structural violation), same verdict
      :func:`decode_segment` with ``check="summary"`` would reach on
      the full image;
    * an ``int`` — the tail is valid so far but too short to hold the
      whole summary; the value is the tail length (bytes from the
      segment end) needed to decode it; or
    * a :class:`DecodedSegment` **without a body**: ``raw`` holds only
      the summary+trailer bytes and ``summary_start`` is relative to
      it (0), so ``entry_tuples``/``entries`` work but
      ``slot_data``/``slot_view`` must not be called.

    This is instant restore's scan primitive: one small tail read per
    segment replaces streaming the whole body through the CRC.
    """
    size = geometry.segment_size
    if len(tail) < TRAILER_SIZE or len(tail) > size:
        return None
    view = memoryview(tail)
    parsed = parse_trailer(view[len(tail) - TRAILER_SIZE :])
    if parsed is None:
        return None
    seq, nentries, nblocks, summary_len, summary_crc, _crc = parsed
    summary_start = size - TRAILER_SIZE - summary_len
    if summary_start < nblocks * geometry.block_size:
        return None
    needed = TRAILER_SIZE + summary_len
    if len(tail) < needed:
        return needed
    tail_summary_start = len(tail) - needed
    checked = view[tail_summary_start : len(tail) - _SUMMARY_CRC_END]
    if zlib.crc32(checked) != summary_crc:
        return None
    try:
        entry_tuples = decode_entry_tuples(
            view[tail_summary_start : tail_summary_start + summary_len]
        )
    except ValueError:
        return None
    if len(entry_tuples) != nentries:
        return None
    return DecodedSegment(
        segment_no=segment_no,
        seq=seq,
        entry_tuples=entry_tuples,
        block_count=nblocks,
        raw=bytes(view[tail_summary_start:]),
        geometry=geometry,
        summary_start=0,
        summary_len=summary_len,
    )
