"""The pipelined write path: write_many, write-behind, group commit.

Three layers under test:

* :meth:`~repro.disk.simdisk.SimulatedDisk.write_many` — scatter-gather
  batched segment writes with per-write fault-injection semantics.
* :class:`~repro.lld.writeback.WritebackQueue` — sealed segments park
  and drain in log order; barriers (``flush``, ``write_checkpoint``)
  make everything durable; queued segments stay readable and invisible
  to the cleaner.
* Group commit — ``end_aru`` parks commit records until a cap, a
  simulated-time budget, or a drain point releases the group.

The crash sweeps at the bottom are the correctness proof the write
pipeline rides on: at *every* physical-write index, the write-behind
configuration leaves the platter byte-identical to the serial writer,
and group commit preserves ARU all-or-nothing atomicity.
"""

import pytest

from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import (
    BadBlockError,
    ConcurrencyError,
    DiskCrashedError,
    SegmentOverflowError,
)
from repro.lld.lld import LLD
from repro.lld.recovery import recover
from repro.lld.summary import EntryKind
from repro.lld.usage import SegmentState
from repro.lld.verify import verify_lld


def make_disk(num_segments=64, injector=None):
    return SimulatedDisk(DiskGeometry.small(num_segments=num_segments), injector=injector)


def make_lld(num_segments=64, injector=None, **kwargs):
    kwargs.setdefault("checkpoint_slot_segments", 2)
    return LLD(make_disk(num_segments, injector), **kwargs)


def fill_blocks(ld, count, tag=b"blk"):
    """Allocate and write ``count`` blocks outside any ARU; returns
    {block_id: payload}."""
    lst = ld.new_list()
    data = {}
    for index in range(count):
        block = ld.new_block(lst)
        payload = b"%s-%05d" % (tag, index)
        ld.write(block, payload)
        data[block] = payload
    return data


def assert_payloads(ld, data):
    for block, payload in data.items():
        assert ld.read(block).startswith(payload), block


# ======================================================================
# Disk layer: write_many
# ======================================================================


class TestWriteMany:
    def test_roundtrip_matches_serial_writes(self):
        a, b = make_disk(), make_disk()
        images = [
            (seg, bytes([seg]) * a.geometry.segment_size)
            for seg in (3, 4, 5, 9)
        ]
        for seg, image in images:
            a.write_segment(seg, image)
        b.write_many(images)
        for seg, image in images:
            assert a.read_segment(seg) == image == b.read_segment(seg)
        assert a.write_count == b.write_count == len(images)

    def test_adjacent_segments_coalesce_into_one_run(self):
        disk = make_disk()
        image = b"\xaa" * disk.geometry.segment_size
        disk.write_many([(seg, image) for seg in (10, 11, 12)])
        stats = disk.stats()
        assert stats["write_batches"] == 1
        assert stats["write_batched_requests"] == 3
        assert stats["write_batched_runs"] == 1

    def test_scattered_segments_cost_a_run_each(self):
        disk = make_disk()
        image = b"\xbb" * disk.geometry.segment_size
        disk.write_many([(seg, image) for seg in (2, 20, 40)])
        assert disk.stats()["write_batched_runs"] == 3

    def test_batched_write_faster_than_serial(self):
        serial, batched = make_disk(), make_disk()
        image = b"\xcc" * serial.geometry.segment_size
        segs = list(range(8, 14))
        for seg in segs:
            serial.write_segment(seg, image)
        serial_us = serial.clock.now_us
        batched.write_many([(seg, image) for seg in segs])
        assert batched.clock.now_us < serial_us

    def test_crash_mid_batch_tears_one_write_drops_the_rest(self):
        # after_writes=2: the write that crosses the budget — the
        # third — is the crashing one.
        injector = FaultInjector(CrashPlan(after_writes=2, torn=True, seed=7))
        disk = make_disk(injector=injector)
        geo = disk.geometry
        images = [(seg, bytes([seg]) * geo.segment_size) for seg in (5, 6, 7, 8)]
        with pytest.raises(DiskCrashedError):
            disk.write_many(images)
        platter = disk.power_cycle()
        # Writes 1-2 survive whole, write 3 is torn (a strict prefix
        # of new data over old zeros), write 4 never happened.
        assert platter.read_segment(5) == images[0][1]
        assert platter.read_segment(6) == images[1][1]
        torn = platter.read_segment(7)
        assert torn != images[2][1]
        assert set(torn) <= {0, 7}
        assert platter.read_segment(8) == b"\x00" * geo.segment_size

    def test_crash_counts_match_serial_semantics(self):
        """after_writes=N crashes on the N-th physical write whether
        the writes arrive one at a time or in one batch."""
        geo = DiskGeometry.small(num_segments=16)
        image = b"\xdd" * geo.segment_size
        for n in (1, 2, 3):
            serial = SimulatedDisk(
                geo, injector=FaultInjector(CrashPlan(after_writes=n, torn=False))
            )
            batched = SimulatedDisk(
                geo, injector=FaultInjector(CrashPlan(after_writes=n, torn=False))
            )
            with pytest.raises(DiskCrashedError):
                for seg in (1, 2, 3, 4):
                    serial.write_segment(seg, image)
            with pytest.raises(DiskCrashedError):
                batched.write_many([(seg, image) for seg in (1, 2, 3, 4)])
            assert serial._segments == batched._segments, n

    def test_validates_before_writing_anything(self):
        disk = make_disk()
        good = b"\xee" * disk.geometry.segment_size
        with pytest.raises(ValueError):
            disk.write_many([(1, good), (2, b"short")])
        assert disk.write_count == 0
        with pytest.raises(ValueError):
            disk.write_many([(1, good), (disk.geometry.num_segments, good)])
        assert disk.write_count == 0


# ======================================================================
# LLD layer: the write-behind queue
# ======================================================================


class TestWritebackQueue:
    def test_depth_zero_is_write_through(self):
        ld = make_lld(writeback_depth=0)
        before = ld.disk.write_count
        fill_blocks(ld, 40)
        assert ld.disk.write_count > before  # segments hit disk eagerly
        stats = ld.stats()["writeback"]
        assert stats["depth"] == 0
        assert stats["submitted"] == 0
        assert stats["queued"] == 0

    def test_sealed_segments_park_until_flush(self):
        ld = make_lld(writeback_depth=16)
        before = ld.disk.write_count
        data = fill_blocks(ld, 40)  # several 16-block segments
        stats = ld.stats()["writeback"]
        assert stats["queued"] >= 2
        assert ld.disk.write_count == before  # nothing durable yet
        for seg in ld._writeback.pending_segments():
            assert ld.usage.state(seg) is SegmentState.QUEUED
        ld.flush()
        assert ld.disk.write_count > before
        assert ld.stats()["writeback"]["queued"] == 0
        for seg, *_ in ld.usage.dirty_segments():
            assert ld.usage.state(seg) is SegmentState.DIRTY
        assert_payloads(ld, data)
        assert verify_lld(ld) == []

    def test_queued_blocks_readable_without_cache(self):
        ld = make_lld(writeback_depth=16)
        data = fill_blocks(ld, 40)
        queued = ld._writeback.pending_segments()
        assert queued
        for seg in queued:
            ld.cache.invalidate_segment(seg)
        # Platter has nothing for these segments; reads must come from
        # the parked images.
        assert_payloads(ld, data)
        many = ld.read_many(list(data))
        for payload, got in zip(data.values(), many):
            assert got.startswith(payload)

    def test_auto_drain_at_depth_uses_one_batch(self):
        ld = make_lld(writeback_depth=2)
        fill_blocks(ld, 40)
        wb = ld.stats()["writeback"]
        assert wb["auto_drains"] >= 1
        assert wb["max_depth_seen"] == 2
        assert ld.disk.stats()["write_batches"] >= 1
        assert ld.disk.stats()["write_batched_requests"] >= 2

    def test_drain_batch_coalesces_sequential_segments(self):
        ld = make_lld(writeback_depth=4)
        fill_blocks(ld, 80)
        ld.flush()
        stats = ld.disk.stats()
        # Consecutively allocated segments are physically adjacent, so
        # batches collapse into far fewer runs than requests.
        assert stats["write_batched_runs"] < stats["write_batched_requests"]

    def test_commit_durability_waits_for_drain(self):
        ld = make_lld(writeback_depth=16)
        aru = ld.begin_aru()
        lst = ld.new_list(aru)
        block = ld.new_block(lst, aru=aru)
        ld.write(block, b"in-aru", aru)
        ld.end_aru(aru)
        # Commit record may still sit in the open buffer or the queue.
        assert not ld.checkpoint_safe()
        ld.flush()
        assert ld.checkpoint_safe()
        assert int(aru) in ld._commit_on_disk

    def test_cleaner_never_selects_queued_segments(self):
        from repro.lld.cleaner import SegmentCleaner

        ld = make_lld(writeback_depth=16)
        fill_blocks(ld, 40)
        queued = ld._writeback.pending_segments()
        assert queued
        cleaner = SegmentCleaner(ld)
        victims = cleaner.select_victims(len(queued) + 8)
        assert not (set(victims) & queued)

    def test_write_behind_survives_power_cycle_after_flush(self):
        ld = make_lld(writeback_depth=8)
        data = fill_blocks(ld, 40)
        ld.flush()
        ld2, report = recover(
            ld.disk.power_cycle(), checkpoint_slot_segments=2, writeback_depth=8
        )
        assert_payloads(ld2, data)
        assert verify_lld(ld2) == []

    def test_unflushed_queue_lost_on_crash_like_serial_buffer(self):
        ld = make_lld(writeback_depth=16)
        committed = fill_blocks(ld, 40, tag=b"old")
        ld.flush()
        fill_blocks(ld, 40, tag=b"new")  # parked, never drained
        ld2, _report = recover(ld.disk.power_cycle(), checkpoint_slot_segments=2)
        assert_payloads(ld2, committed)
        assert verify_lld(ld2) == []


# ======================================================================
# LLD layer: group commit
# ======================================================================


def run_aru(ld, lst, payload, aru=None):
    close = aru is None
    if aru is None:
        aru = ld.begin_aru()
    block = ld.new_block(lst, aru=aru)
    ld.write(block, payload, aru)
    if close:
        ld.end_aru(aru)
    return block


class TestGroupCommit:
    def test_cap_releases_one_group(self):
        ld = make_lld(group_commit=True, group_commit_max_parked=3,
                      group_commit_timeout_us=1e9)
        lst = ld.new_list()
        blocks = [run_aru(ld, lst, b"gc-%d" % i) for i in range(3)]
        gc = ld.stats()["group_commit"]
        assert gc["groups_flushed"] == 1
        assert gc["commits_grouped"] == 3
        assert gc["parked"] == 0
        # The cap release is a drain point: everything is durable.
        assert ld.checkpoint_safe()
        for i, block in enumerate(blocks):
            assert ld.read(block).startswith(b"gc-%d" % i)

    def test_group_shares_one_commit_segment(self):
        """N parked commits land through one drain, not N partial
        flushes — the N-commits-one-write payoff."""
        ld = make_lld(group_commit=True, group_commit_max_parked=4,
                      group_commit_timeout_us=1e9)
        lst = ld.new_list()
        ld.flush()
        flushed_before = ld.segments_flushed
        for i in range(4):
            run_aru(ld, lst, b"shared-%d" % i)
        # All four ARUs' data and commit records fit two segments
        # (data + commits), not four commit flushes.
        assert ld.segments_flushed - flushed_before <= 2
        assert ld.checkpoint_safe()

    def test_flush_releases_partial_group(self):
        ld = make_lld(group_commit=True, group_commit_max_parked=8,
                      group_commit_timeout_us=1e9)
        lst = ld.new_list()
        block = run_aru(ld, lst, b"partial")
        gc = ld.stats()["group_commit"]
        assert gc["parked"] == 1
        assert not ld.checkpoint_safe()
        ld.flush()
        gc = ld.stats()["group_commit"]
        assert gc["parked"] == 0
        assert gc["commits_grouped"] == 1
        assert ld.checkpoint_safe()
        assert ld.read(block).startswith(b"partial")

    def test_timer_budget_releases_group(self):
        ld = make_lld(group_commit=True, group_commit_max_parked=100,
                      group_commit_timeout_us=5.0)
        lst = ld.new_list()
        run_aru(ld, lst, b"timed")
        assert ld.stats()["group_commit"]["parked"] == 1
        # Any later begin/end checks the deadline; the cost-model
        # charges of intervening operations advance simulated time
        # well past 5 us.
        aru = ld.begin_aru()
        gc = ld.stats()["group_commit"]
        assert gc["parked"] == 0
        assert gc["groups_flushed"] == 1
        ld.abort_aru(aru)

    def test_abort_against_parked_state(self):
        ld = make_lld(group_commit=True, group_commit_max_parked=8,
                      group_commit_timeout_us=1e9)
        lst = ld.new_list()
        keep = ld.begin_aru()
        drop = ld.begin_aru()
        kept_block = run_aru(ld, lst, b"kept", aru=keep)
        dropped_block = run_aru(ld, lst, b"dropped", aru=drop)
        ld.end_aru(keep)  # parks
        ld.abort_aru(drop)  # must work with a commit parked
        ld.flush()
        assert ld.read(kept_block).startswith(b"kept")
        # Allocation commits immediately; the aborted write is undone,
        # so the block reads back as never written.
        assert ld.read(dropped_block) == b"\x00" * ld.geometry.block_size
        assert verify_lld(ld) == []

    def test_checkpoint_flushes_parked_commits_first(self):
        ld = make_lld(group_commit=True, group_commit_max_parked=8,
                      group_commit_timeout_us=1e9)
        lst = ld.new_list()
        block = run_aru(ld, lst, b"ckpt")
        assert not ld.checkpoint_safe()
        ld.write_checkpoint()  # flush() inside releases the group
        ld2, report = recover(ld.disk.power_cycle(), checkpoint_slot_segments=2)
        assert ld2.read(block).startswith(b"ckpt")

    def test_sequential_mode_checkpoint_guard_still_raises(self):
        ld = make_lld(aru_mode="sequential", group_commit=True,
                      group_commit_timeout_us=1e9)
        aru = ld.begin_aru()
        with pytest.raises(ConcurrencyError):
            ld.write_checkpoint()
        ld.end_aru(aru)
        ld.write_checkpoint()

    def test_parked_commits_lost_on_crash_are_not_recovered(self):
        """A crash before the group is released loses the parked
        commits — exactly the window an unflushed commit record has in
        the serial path — and recovery undoes those ARUs."""
        ld = make_lld(group_commit=True, group_commit_max_parked=100,
                      group_commit_timeout_us=1e9, writeback_depth=16)
        lst = ld.new_list()
        ld.flush()
        block = run_aru(ld, lst, b"unreleased")
        assert ld.stats()["group_commit"]["parked"] == 1
        ld2, _report = recover(ld.disk.power_cycle(), checkpoint_slot_segments=2)
        from repro.errors import BadBlockError

        with pytest.raises(BadBlockError):
            ld2.read(block)
        assert verify_lld(ld2) == []

    def test_group_commit_many_arus_storm(self):
        ld = make_lld(num_segments=128, group_commit=True,
                      group_commit_max_parked=16, group_commit_timeout_us=1e9)
        lst = ld.new_list()
        blocks = [run_aru(ld, lst, b"storm-%03d" % i) for i in range(64)]
        ld.flush()
        gc = ld.stats()["group_commit"]
        assert gc["commits_grouped"] == 64
        assert gc["groups_flushed"] >= 4
        for i, block in enumerate(blocks):
            assert ld.read(block).startswith(b"storm-%03d" % i)
        assert verify_lld(ld) == []


# ======================================================================
# Satellites: overflow guard, empty flush, fill stats
# ======================================================================


class _HugeEntry:
    """A summary entry too large for an *empty* segment."""

    kind = EntryKind.COMMIT
    aru_tag = 0
    timestamp = 1

    def __init__(self, size):
        self._size = size

    def encoded_size(self):
        return self._size


class TestEmitEntryGuard:
    def test_oversized_entry_raises_precise_error(self):
        ld = make_lld()
        capacity = ld.geometry.usable_size
        with pytest.raises(SegmentOverflowError) as excinfo:
            ld._emit_entry(_HugeEntry(capacity + 1))
        assert excinfo.value.needed == capacity + 1
        assert excinfo.value.capacity == capacity
        assert "COMMIT" in str(excinfo.value)

    def test_oversized_entry_consumes_no_segments(self):
        ld = make_lld()
        free_before = ld.usage.free_count
        flushed_before = ld.segments_flushed
        with pytest.raises(SegmentOverflowError):
            ld._emit_entry(_HugeEntry(ld.geometry.usable_size + 1))
        assert ld.usage.free_count == free_before
        assert ld.segments_flushed == flushed_before
        # The instance is still usable.
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"still-alive")
        assert ld.read(block).startswith(b"still-alive")

    def test_entry_that_fits_an_empty_segment_rolls_instead(self):
        ld = make_lld()
        fill_blocks(ld, 10)  # partially fill the current buffer
        flushed_before = ld.segments_flushed
        # Larger than what's left in the buffer, smaller than an empty
        # segment: this must roll, not raise.
        size = ld._buffer.bytes_free() + 1
        assert size <= ld.geometry.usable_size
        ld._emit_entry(_HugeEntry(size))
        assert ld.segments_flushed > flushed_before


class TestEmptyFlushAndCheckpoint:
    @pytest.mark.parametrize("depth", [0, 8])
    def test_empty_flush_consumes_no_segment(self, depth):
        ld = make_lld(writeback_depth=depth)
        free_before = ld.usage.free_count
        flushed_before = ld.segments_flushed
        ld.flush()
        ld.flush()
        assert ld.usage.free_count == free_before
        assert ld.segments_flushed == flushed_before
        assert ld.checkpoint_safe()
        ld.write_checkpoint()  # must not raise, must not consume a segment
        assert ld.usage.free_count == free_before
        assert ld.segments_flushed == flushed_before

    def test_flush_after_real_work_then_empty_flush(self):
        ld = make_lld(writeback_depth=8)
        fill_blocks(ld, 5)
        ld.flush()
        flushed = ld.segments_flushed
        ld.flush()
        assert ld.segments_flushed == flushed


class TestFillStats:
    def test_fill_accounting_tracks_sealed_segments(self):
        ld = make_lld(writeback_depth=4)
        fill_blocks(ld, 40)
        ld.flush()
        seg_stats = ld.stats()["segments"]
        assert seg_stats["sealed"] >= 2
        assert seg_stats["sealed"] == seg_stats["flushed"]
        assert seg_stats["data_bytes"] > 0
        assert seg_stats["summary_bytes"] > 0
        assert 0.0 < seg_stats["avg_fill"] <= 1.0
        assert 0.0 < seg_stats["min_fill"] <= seg_stats["avg_fill"]

    def test_full_segments_fill_close_to_one(self):
        ld = make_lld()
        fill_blocks(ld, 64)  # forces several full 16-block segments
        ld.flush()
        seg_stats = ld.stats()["segments"]
        # Rolled segments are full up to summary-vs-block granularity.
        assert seg_stats["avg_fill"] > 0.5

    def test_no_segments_sealed_reports_zero(self):
        ld = make_lld()
        seg_stats = ld.stats()["segments"]
        assert seg_stats["sealed"] == 0
        assert seg_stats["avg_fill"] == 0.0
        assert seg_stats["min_fill"] is None


# ======================================================================
# The crash-sweep proof
# ======================================================================


def lld_workload(ld):
    """Deterministic mixed workload: plain writes, ARUs, aborts, with
    scattered flushes so partial segments reach the disk too."""
    lst = ld.new_list()
    for index in range(12):
        block = ld.new_block(lst)
        ld.write(block, b"plain-%02d" % index)
    for round_no in range(32):
        aru = ld.begin_aru()
        for i in range(6):
            block = ld.new_block(lst, aru=aru)
            ld.write(block, b"aru-%02d-%d" % (round_no, i), aru)
        if round_no % 3 == 2:
            ld.abort_aru(aru)
        else:
            ld.end_aru(aru)
        if round_no % 4 == 3:
            ld.flush()
    ld.flush()


def sweep_configs():
    serial = dict(writeback_depth=0, group_commit=False)
    pipelined = dict(writeback_depth=4, group_commit=False)
    return serial, pipelined


def run_sweep_instance(config, crash_after, torn):
    injector = FaultInjector(
        CrashPlan(after_writes=crash_after, torn=torn, seed=crash_after)
    )
    disk = make_disk(injector=injector)
    ld = LLD(disk, checkpoint_slot_segments=2, **config)
    crashed = True
    try:
        lld_workload(ld)
        crashed = False
    except DiskCrashedError:
        pass
    return disk, crashed


class TestCrashSweepByteIdentity:
    """At every crash index the write-behind platter is byte-identical
    to the serial writer's — same writes, same content, same order —
    so recovery's reachable states are exactly the serial ones."""

    @pytest.mark.parametrize("torn", [False, True])
    def test_every_crash_point_matches_serial(self, torn):
        serial_cfg, pipelined_cfg = sweep_configs()
        # Total writes with no crash plan (identical by construction;
        # asserted below anyway).
        probe = make_disk()
        ld = LLD(probe, checkpoint_slot_segments=2, **serial_cfg)
        lld_workload(ld)
        limit = probe.write_count
        probe2 = make_disk()
        ld2 = LLD(probe2, checkpoint_slot_segments=2, **pipelined_cfg)
        lld_workload(ld2)
        assert probe2.write_count == limit
        assert probe._segments == probe2._segments
        assert limit > 10, "workload too small to be interesting"

        for crash_after in range(1, limit + 1):
            serial_disk, s_crashed = run_sweep_instance(
                serial_cfg, crash_after, torn
            )
            pipe_disk, p_crashed = run_sweep_instance(
                pipelined_cfg, crash_after, torn
            )
            assert s_crashed == p_crashed, (torn, crash_after)
            assert serial_disk._segments == pipe_disk._segments, (
                torn,
                crash_after,
            )
            if not s_crashed:
                continue
            # And the pipelined platter recovers cleanly.
            recovered, _report = recover(
                pipe_disk.power_cycle(), checkpoint_slot_segments=2
            )
            assert verify_lld(recovered) == [], (torn, crash_after)


class TestCrashSweepGroupCommitAtomicity:
    """Group commit changes *when* commit records reach the disk, never
    what an ARU's atomicity promises: at every crash index each ARU is
    all-or-nothing after recovery."""

    @pytest.mark.parametrize("torn", [False, True])
    def test_every_crash_point_is_atomic(self, torn):
        config = dict(
            writeback_depth=4,
            group_commit=True,
            group_commit_max_parked=3,
            group_commit_timeout_us=1e9,
        )

        def workload(ld):
            lst = ld.new_list()
            groups = []
            for g in range(10):
                members = []
                for i in range(4):
                    block = ld.new_block(lst)
                    ld.write(block, b"old-%d-%d" % (g, i))
                    members.append(block)
                groups.append(members)
            ld.flush()
            for g, members in enumerate(groups):
                aru = ld.begin_aru()
                for i, block in enumerate(members):
                    ld.write(block, b"new-%d-%d" % (g, i), aru)
                ld.end_aru(aru)
            ld.flush()
            return groups

        probe = make_disk(num_segments=96)
        groups = workload(LLD(probe, checkpoint_slot_segments=2, **config))
        limit = probe.write_count
        assert limit > 5

        for crash_after in range(1, limit + 1):
            injector = FaultInjector(
                CrashPlan(after_writes=crash_after, torn=torn, seed=crash_after)
            )
            disk = make_disk(num_segments=96, injector=injector)
            ld = LLD(disk, checkpoint_slot_segments=2, **config)
            try:
                workload(ld)
                continue  # budget outlived the workload
            except DiskCrashedError:
                pass
            recovered, _report = recover(
                disk.power_cycle(), checkpoint_slot_segments=2
            )
            assert verify_lld(recovered) == [], (torn, crash_after)
            for g, members in enumerate(groups):
                states = set()
                for i, block in enumerate(members):
                    try:
                        got = recovered.read(block)
                    except BadBlockError:
                        # Crash before this baseline allocation became
                        # durable (or the orphan sweep freed it).
                        states.add("zero")
                        continue
                    if got.startswith(b"new-%d-%d" % (g, i)):
                        states.add("new")
                    elif got.startswith(b"old-%d-%d" % (g, i)):
                        states.add("old")
                    elif got == b"\x00" * recovered.geometry.block_size:
                        # Crash before the plain baseline write of this
                        # block became durable — the baseline phase has
                        # no atomicity promise of its own.
                        states.add("zero")
                    else:  # pragma: no cover - failure path
                        raise AssertionError(
                            f"group {g} block {block}: unexpected {got[:16]!r} "
                            f"(torn={torn} crash={crash_after})"
                        )
                # The ARU rewrite is all-or-nothing: if any member
                # carries the new version, every member must.
                assert "new" not in states or states == {"new"}, (
                    f"group {g} torn between versions {states} "
                    f"(torn={torn} crash={crash_after})"
                )
