"""Experiment harness: builds the paper's system variants, runs the
benchmarks, and renders tables shaped like the paper's figures."""

from repro.harness.variants import VARIANTS, Variant, build_variant
from repro.harness.runner import (
    run_aru_latency_experiment,
    run_figure5,
    run_figure6,
)
from repro.harness.reporting import format_table, percent_difference
from repro.harness.sweep import Sweep, SweepPoint

__all__ = [
    "Sweep",
    "SweepPoint",
    "VARIANTS",
    "Variant",
    "build_variant",
    "format_table",
    "percent_difference",
    "run_aru_latency_experiment",
    "run_figure5",
    "run_figure6",
]
