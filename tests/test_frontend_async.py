"""Async front-end tests: crash-mid-storm, interference, parity.

The deterministic concurrency harness for the asyncio lanes — the
async mirror of ``tests/test_frontend.py``'s proof obligations:

* a 4-shard array dies at fixed crash points while hundreds of
  coroutine clients storm the async lanes; the locks (thread *and*
  event-loop waiter tables) must quiesce leak-free, and
  :func:`repro.recover` must yield an all-or-nothing, byte-identical
  image — twice, from the same saved disks;
* cleaner + scrubber passes mid-storm leave the platter
  ``verify_lld``-clean and the decomposed latency stats schema-valid;
* the same seeded open-loop plan sequence through thread lanes and
  async lanes commits the same work (the lane knob changes the
  scheduler, never the outcome).
"""

from __future__ import annotations

import pytest

import repro
from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskCrashedError
from repro.frontend import (
    AsyncFrontEnd,
    FrontEnd,
    FrontendConfig,
    MaintenanceDriver,
    make_frontend,
)
from repro.lld.verify import verify_lld
from repro.obs.schema import validate_artifact, validate_frontend_stats
from repro.shard.sharded import build_sharded
from repro.workloads.openloop import (
    OpenLoopConfig,
    provision_hot_block,
    provision_tenants,
    run_openloop,
    run_openloop_async,
)
from tests.conftest import make_lld
from tests.test_frontend import CrashStorm, assert_no_leaks


def async_frontend(ld, **overrides) -> AsyncFrontEnd:
    defaults = dict(lane_impl="async", max_inflight=256)
    defaults.update(overrides)
    return make_frontend(ld, FrontendConfig(**defaults))


class TestAsyncSchedulerBasics:
    def test_make_frontend_dispatches_on_lane_impl(self):
        ld = make_lld()
        frontend = make_frontend(ld, FrontendConfig(lane_impl="async"))
        try:
            assert isinstance(frontend, AsyncFrontEnd)
        finally:
            frontend.close()
        assert isinstance(make_frontend(make_lld()), FrontEnd)
        with pytest.raises(ValueError, match="lane_impl"):
            FrontendConfig(lane_impl="fiber").validate()
        # Constructors reject the mismatched knob rather than
        # silently running the wrong scheduler.
        with pytest.raises(ValueError, match="lane"):
            FrontEnd(make_lld(), FrontendConfig(lane_impl="async"))
        with pytest.raises(ValueError, match="lane"):
            AsyncFrontEnd(make_lld(), FrontendConfig(lane_impl="thread"))

    def test_sync_submit_runs_async_and_sync_bodies(self):
        ld = make_lld()
        frontend = async_frontend(ld)
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"\0" * 16)
        ld.flush()

        def sync_body(txn):
            txn.write(block, b"sync")
            return txn.read(block)

        async def async_body(txn):
            await txn.write(block, b"asyn")
            return await txn.read(block)

        assert frontend.submit(sync_body, "a").wait(10.0)[:4] == b"sync"
        assert frontend.submit(async_body, "a").wait(10.0)[:4] == b"asyn"
        stats = frontend.stats()
        frontend.close()
        assert stats["lane_impl"] == "async"
        assert stats["completed"] == 2
        assert_no_leaks(stats)

    def test_submit_async_and_wait_async_on_the_loop(self):
        ld = make_lld()
        frontend = async_frontend(ld)
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"\0" * 16)
        ld.flush()

        async def client(stamp: int) -> bytes:
            async def body(txn):
                await txn.write(block, bytes([stamp]) * 8)
                return await txn.read(block)

            request = await frontend.submit_async(body, f"t{stamp % 4}")
            return await request.wait_async()

        async def swarm():
            import asyncio

            return await asyncio.gather(*(client(i) for i in range(1, 33)))

        results = frontend.run_on_loop(swarm()).result(30.0)
        stats = frontend.stats()
        frontend.close()
        assert len(results) == 32
        for data in results:
            assert len(set(data[:8])) == 1  # each read saw one write
        assert stats["completed"] == 32
        assert_no_leaks(stats)

    def test_failure_propagates_to_async_waiter(self):
        ld = make_lld()
        frontend = async_frontend(ld)

        async def broken(_txn):
            raise ValueError("application bug")

        handle = frontend.submit(broken, "t")
        with pytest.raises(ValueError, match="application bug"):
            handle.wait(10.0)
        assert handle.state == "failed"
        stats = frontend.stats()
        frontend.close()
        assert stats["failed"] == 1
        assert_no_leaks(stats)

    def test_stats_schema_identical_across_impls(self):
        def paths(tree, prefix=""):
            out = set()
            for key, value in tree.items():
                where = f"{prefix}.{key}" if prefix else key
                if isinstance(value, dict) and key != "per_tenant_completed":
                    out |= paths(value, where)
                else:
                    out.add(where)
            return out

        ld = make_lld()
        thread_fe = make_frontend(ld, FrontendConfig())
        thread_stats = thread_fe.stats()
        thread_fe.close()
        ld2 = make_lld()
        async_fe = async_frontend(ld2)
        async_stats = async_fe.stats()
        async_fe.close()
        assert paths(thread_stats) == paths(async_stats)
        assert validate_frontend_stats(thread_stats) == []
        assert validate_frontend_stats(async_stats) == []


class AsyncCrashStorm(CrashStorm):
    """The crash-mid-storm rig, stormed by coroutine clients."""

    def storm(self, volume, tenants, hot):
        """Same uniform-fill rewrite storm as the threaded rig, but
        every request is an async body submitted by a client
        coroutine on the front end's loop (shed-not-queue admission,
        mirroring ``try_submit``)."""
        import asyncio

        from repro.frontend.scheduler import RequestRejected

        frontend = make_frontend(
            volume,
            FrontendConfig(
                lane_impl="async",
                max_inflight=64,
                lock_timeout_s=1.0,
                # 4 lanes x 8 txn slots = 32 concurrent transactions
                # all bumping one hot counter — four times the
                # threaded rig's contention, so a deeper wait-die
                # retry budget.
                max_attempts=64,
                async_txns_per_lane=8,
            ),
        )
        names = sorted(tenants)
        handles = []

        async def client(tenant, fill):
            async def body(txn):
                for block in tenant.blocks:
                    await txn.write(block, fill)
                counter = int.from_bytes(
                    (await txn.read(hot))[:8], "little"
                )
                await txn.write(
                    hot,
                    (counter + 1)
                    .to_bytes(8, "little")
                    .ljust(self.PAYLOAD, b"\0"),
                )

            try:
                request = await frontend.submit_async(
                    body, tenant.name, shard=tenant.shard, wait=False
                )
            except RequestRejected:
                return
            handles.append(request)
            try:
                await request.wait_async()
            except BaseException:  # noqa: BLE001 — tallied via state
                pass

        async def swarm():
            clients = []
            for index in range(self.N_REQUESTS):
                tenant = tenants[names[index % len(names)]]
                fill = bytes([1 + index % 255]) * self.PAYLOAD
                clients.append(
                    asyncio.get_running_loop().create_task(
                        client(tenant, fill)
                    )
                )
            await asyncio.gather(*clients)

        frontend.run_on_loop(swarm()).result(120.0)
        frontend.drain()
        stats = frontend.stats()
        frontend.close(flush=False)  # the disks are (probably) dead
        return handles, stats


class TestAsyncCrashDuringLoad(AsyncCrashStorm):
    @pytest.mark.parametrize("delta", [7, 31])
    def test_crash_mid_storm_recovers_all_or_nothing(self, delta, tmp_path):
        """Cut power a fixed number of disk writes into the async
        storm (two fixed crash points); the thread AND event-loop
        waiter tables must quiesce leak-free, and ``repro.recover``
        — run twice from the same saved disks — must be
        all-or-nothing per transaction and byte-identical."""
        injector = FaultInjector(
            CrashPlan(
                after_writes=self.setup_writes() + delta,
                torn=True,
                seed=delta,
                granularity="byte",
            )
        )
        volume = self.build(injector)
        tenants, hot = self.provision(volume)
        handles, stats = self.storm(volume, tenants, hot)

        crashed = [h for h in handles if h.state == "failed"]
        assert crashed, "the crash plan never fired mid-storm"
        assert all(
            isinstance(h.error, DiskCrashedError) for h in crashed
        ), [type(h.error) for h in crashed]
        # THE regression: a storm of failed commits must leak
        # nothing — no held locks, no waiters (thread or async), no
        # stale timestamps.
        assert_no_leaks(stats)
        assert stats["inflight"] == 0

        cycled = [shard.disk.power_cycle() for shard in volume.shards]
        paths = []
        for index, disk in enumerate(cycled):
            path = tmp_path / f"shard{index}.img"
            disk.save_image(path)
            paths.append(path)

        readings = []
        for _attempt in range(2):
            disks = [SimulatedDisk.load_image(path) for path in paths]
            recovered, _report = repro.recover(disks)
            self.check_recovered(
                recovered, tenants, hot, max_commits=len(handles)
            )
            readings.append(
                {
                    "tenants": {
                        name: [
                            bytes(recovered.read(block))
                            for block in tenant.blocks
                        ]
                        for name, tenant in tenants.items()
                    },
                    "hot": bytes(recovered.read(hot)),
                }
            )
        assert readings[0] == readings[1], "recovery is not deterministic"

    def test_clean_async_storm_commits_everything(self):
        """Control run: no crash plan, same async storm — every
        request commits, the hot counter is exact, nothing leaks."""
        volume = self.build(FaultInjector())
        tenants, hot = self.provision(volume)
        handles, stats = self.storm(volume, tenants, hot)
        assert stats["failed"] == 0
        assert stats["gave_up"] == 0
        assert len(handles) == stats["admitted"]
        assert stats["completed"] == len(handles)
        assert_no_leaks(stats)
        volume.flush()
        counter = int.from_bytes(volume.read(hot)[:8], "little")
        assert counter == stats["completed"]


class TestMaintenanceInterference:
    def test_cleaner_and_scrubber_mid_storm(self):
        """Cleaner + scrubber passes *during* an async open-loop storm:
        every shard stays ``verify_lld``-clean, every request still
        commits leak-free, and the decomposed latency stats remain
        schema-valid (the exact surface ``python -m repro.obs.schema``
        checks)."""
        volume = build_sharded(
            2,
            geometry=DiskGeometry.small(num_segments=96),
            checkpoint_slot_segments=2,
            writeback_depth=4,
        )
        frontend = async_frontend(volume, max_tenant_queue=64)
        tenants = provision_tenants(volume, 8, blocks_per_tenant=3)
        hot = provision_hot_block(volume)
        config = OpenLoopConfig(
            rate=1e9,
            n_requests=200,
            n_tenants=8,
            blocks_per_tenant=3,
            hot_fraction=0.1,
            seed=11,
            pace=False,
        )
        with MaintenanceDriver(volume, interval_s=0.01) as driver:
            result = run_openloop_async(
                frontend, tenants, config, hot_block=hot
            )
        stats = frontend.stats()
        frontend.close()
        assert driver.error is None, driver.error
        assert result.failed == 0
        assert result.completed == result.admitted
        assert_no_leaks(stats)
        for shard in volume.shards:
            assert verify_lld(shard) == []
        assert validate_frontend_stats(stats) == []
        artifact = {
            "experiment": "interference",
            "variants": {
                "storm": {"stats": volume.stats(), "frontend": stats}
            },
        }
        assert validate_artifact(artifact) == []
        # The decomposition genuinely covered the storm.
        assert stats["latency"]["storage"]["count"] == result.completed


class TestLaneParity:
    def test_same_plans_commit_the_same_work(self):
        """One seeded open-loop plan sequence, both lane impls, no
        shedding: identical completed counts and identical hot-block
        commit totals — the knob changes the scheduler only."""
        outcomes = {}
        for lane_impl in ("thread", "async"):
            volume = build_sharded(
                2,
                geometry=DiskGeometry.small(num_segments=96),
                checkpoint_slot_segments=2,
            )
            frontend = make_frontend(
                volume,
                FrontendConfig(
                    lane_impl=lane_impl,
                    max_inflight=512,
                    max_tenant_queue=128,
                ),
            )
            tenants = provision_tenants(volume, 6, blocks_per_tenant=3)
            hot = provision_hot_block(volume)
            config = OpenLoopConfig(
                rate=1e9,
                n_requests=180,
                n_tenants=6,
                blocks_per_tenant=3,
                hot_fraction=0.25,
                read_fraction=0.25,
                seed=42,
                pace=False,
            )
            runner = (
                run_openloop_async if lane_impl == "async" else run_openloop
            )
            result = runner(frontend, tenants, config, hot_block=hot)
            frontend.close()
            assert result.shed == 0, (lane_impl, result)
            assert result.failed == 0 and result.gave_up == 0
            assert_no_leaks(result.frontend)
            outcomes[lane_impl] = (result.completed, result.hot_value)
        assert outcomes["thread"] == outcomes["async"], outcomes
