"""A segment-granular simulated disk.

LLD's write path is segment-at-a-time by construction ("segments that
are filled in main memory and written to disk in single disk
operations"), so the simulated disk exposes exactly that interface:
whole-segment writes, whole-segment or intra-segment reads.  Contents
are stored sparsely per segment; latency is charged to the shared
:class:`~repro.disk.clock.SimClock` through a
:class:`~repro.disk.timing.DiskTimer`.

Failure injection is delegated to a
:class:`~repro.disk.faults.FaultInjector`: power failures drop or
tear in-flight segment writes, media faults corrupt reads.  After a
simulated crash, :meth:`power_cycle` returns a *new* disk view of the
surviving bytes, which is what the recovery scan reads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.disk.clock import SimClock
from repro.disk.faults import FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.timing import DiskModel, DiskTimer, HP_C3010
from repro.obs.registry import NULL_HISTOGRAM


class SimulatedDisk:
    """Simulated segment-addressed disk with timing and faults.

    Args:
        geometry: Partition layout.
        clock: Shared simulated clock; a private one is created if
            omitted (convenient in unit tests).
        model: Mechanical timing model; defaults to the paper's
            HP C3010.
        injector: Fault injector; defaults to a fault-free one.
        shard_index: This disk's position in a sharded array, if any.
            Passed to the injector on every read and write so
            shard-scoped faults (per-shard media faults, whole-shard
            loss) hit the right member disk.  ``None`` for a
            standalone disk.
    """

    def __init__(
        self,
        geometry: DiskGeometry,
        clock: Optional[SimClock] = None,
        model: DiskModel = HP_C3010,
        injector: Optional[FaultInjector] = None,
        shard_index: Optional[int] = None,
    ) -> None:
        self.geometry = geometry
        self.clock = clock if clock is not None else SimClock()
        self.timer = DiskTimer(self.clock, model)
        self.injector = injector if injector is not None else FaultInjector()
        self.shard_index = shard_index
        self._segments: Dict[int, bytes] = {}
        self.write_count = 0
        self.read_count = 0
        #: Set when :meth:`power_cycle` hands the platter to a
        #: successor disk; all I/O through this handle then raises.
        self._retired = False
        # Per-op latency histograms; no-ops until an owning system
        # calls :meth:`attach_observability`.  Observing a latency
        # never touches the clock (the timer already charged it), so
        # instrumentation cannot change simulated results.
        self._h_read_us = NULL_HISTOGRAM
        self._h_write_us = NULL_HISTOGRAM
        self._h_batch_read_us = NULL_HISTOGRAM
        self._h_batch_write_us = NULL_HISTOGRAM

    def attach_observability(self, obs) -> None:
        """Register per-op latency histograms against ``obs``.

        Called by the owning logical disk; a disabled registry hands
        back null instruments, keeping the hot path free.
        """
        metrics = obs.metrics
        self._h_read_us = metrics.histogram("disk.read_us")
        self._h_write_us = metrics.histogram("disk.write_us")
        self._h_batch_read_us = metrics.histogram("disk.batch_read_us")
        self._h_batch_write_us = metrics.histogram("disk.batch_write_us")

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def write_segment(self, segment_no: int, data: bytes) -> None:
        """Write one whole segment.

        The write is synchronous: when this returns normally the
        bytes are durable.  Under an active crash plan the write may
        be dropped or torn, in which case :class:`DiskCrashedError`
        is raised *after* the surviving prefix is recorded — exactly
        the situation recovery must cope with.
        """
        offset = self.geometry.segment_offset(segment_no)
        if len(data) != self.geometry.segment_size:
            raise ValueError(
                f"segment write must be exactly {self.geometry.segment_size} "
                f"bytes, got {len(data)}"
            )
        self._check_retired(f"write to segment {segment_no}")
        surviving = self.injector.on_write(segment_no, len(data), shard=self.shard_index)
        if surviving is None:
            self._h_write_us.observe(self.timer.access(offset, len(data)))
            self._segments[segment_no] = bytes(data)
            self.write_count += 1
            return
        # Crashing write: record the torn prefix (padding the rest of
        # the segment with stale bytes), then report the power loss.
        if surviving > 0:
            old = self._segments.get(segment_no, b"\x00" * len(data))
            # bytes(...) also normalizes bytearray images (the sealed
            # buffer's own image) to the immutable platter snapshot.
            self._segments[segment_no] = bytes(
                data[:surviving] + old[surviving:]
            )
        from repro.errors import DiskCrashedError

        raise DiskCrashedError(
            f"power failure during write of segment {segment_no}"
        )

    def write_many(self, writes: Sequence[Tuple[int, bytes]]) -> None:
        """Scatter-gather write: many whole segments in one batch.

        Mirrors :meth:`read_many`: each element of ``writes`` is a
        ``(segment_no, data)`` pair of one full segment image.  The
        batch is charged to the timing model as coalesced contiguous
        runs — adjacent segments cost one seek plus a single streamed
        transfer — which is what lets a write-behind queue drain at
        media bandwidth instead of paying a seek per segment.

        Failure semantics are identical to issuing the writes one at
        a time with :meth:`write_segment`: the fault injector gates
        every physical write individually, in submission order, so an
        active :class:`~repro.disk.faults.CrashPlan` ticks once per
        segment and the crashing write is dropped or torn exactly as
        it would be un-batched.  Writes earlier in the batch are
        durable (and charged to the clock) before the power loss is
        reported; later writes never reach the platter.
        """
        geometry = self.geometry
        segment_size = geometry.segment_size
        for segment_no, data in writes:
            geometry.segment_offset(segment_no)  # bounds-check segment
            if len(data) != segment_size:
                raise ValueError(
                    f"segment write must be exactly {segment_size} bytes, "
                    f"got {len(data)} for segment {segment_no}"
                )
        self._check_retired("batched write")
        ranges: List[Tuple[int, int]] = []
        try:
            for segment_no, data in writes:
                surviving = self.injector.on_write(segment_no, len(data), shard=self.shard_index)
                if surviving is None:
                    self._segments[segment_no] = bytes(data)
                    self.write_count += 1
                    ranges.append(
                        (geometry.segment_offset(segment_no), len(data))
                    )
                    continue
                if surviving > 0:
                    old = self._segments.get(segment_no, b"\x00" * len(data))
                    self._segments[segment_no] = bytes(
                        data[:surviving] + old[surviving:]
                    )
                from repro.errors import DiskCrashedError

                raise DiskCrashedError(
                    f"power failure during batched write of segment "
                    f"{segment_no}"
                )
        finally:
            # The writes that completed were serviced before the power
            # loss; charge them even when the batch ends in a crash.
            if ranges:
                self._h_batch_write_us.observe(
                    self.timer.access_batch(
                        ranges, requests=len(ranges), is_write=True
                    )
                )

    def write_at(self, segment_no: int, offset: int, data: bytes) -> None:
        """Write a byte range within a segment, in place.

        LLD never needs this (it writes whole segments), but
        overwrite-in-place clients such as :class:`repro.jld.JLD`
        update home locations at block granularity.  The write counts
        against crash plans like any other; a torn write keeps a
        prefix.
        """
        if offset < 0 or offset + len(data) > self.geometry.segment_size:
            raise ValueError(
                f"write [{offset}, {offset + len(data)}) out of segment bounds"
            )
        self._check_retired(f"write into segment {segment_no}")
        surviving = self.injector.on_write(segment_no, len(data), shard=self.shard_index)
        old = self._segments.get(
            segment_no, b"\x00" * self.geometry.segment_size
        )
        if surviving is None:
            self._h_write_us.observe(
                self.timer.access(
                    self.geometry.segment_offset(segment_no) + offset,
                    len(data),
                )
            )
            self._segments[segment_no] = (
                old[:offset] + bytes(data) + old[offset + len(data):]
            )
            self.write_count += 1
            return
        if surviving > 0:
            kept = bytes(data[:surviving])
            self._segments[segment_no] = (
                old[:offset] + kept + old[offset + len(kept):]
            )
        from repro.errors import DiskCrashedError

        raise DiskCrashedError(
            f"power failure during write into segment {segment_no}"
        )

    def read_segment(self, segment_no: int) -> bytes:
        """Read one whole segment (zero-filled if never written)."""
        return self.read(segment_no, 0, self.geometry.segment_size)

    def read(self, segment_no: int, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at byte ``offset`` within a segment."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.geometry.segment_size:
            raise ValueError(
                f"read [{offset}, {offset + nbytes}) out of segment bounds"
            )
        self._check_retired(f"read of segment {segment_no}")
        base = self.geometry.segment_offset(segment_no)
        raw = self._segments.get(segment_no)
        if raw is None:
            raw = b"\x00" * self.geometry.segment_size
        raw = self.injector.on_read(segment_no, raw, shard=self.shard_index)
        self._h_read_us.observe(self.timer.access(base + offset, nbytes))
        self.read_count += 1
        return raw[offset : offset + nbytes]

    def read_many(
        self,
        requests: Sequence[Tuple[int, int, int]],
        errors: str = "raise",
    ) -> List[Optional[bytes]]:
        """Scatter-gather read: many ranges in one batched operation.

        Each request is a ``(segment_no, offset, nbytes)`` triple (a
        range may not cross a segment boundary).  The batch is charged
        to the timing model as coalesced contiguous runs — adjacent
        ranges cost one seek plus a single sequential transfer, which
        is what makes the recovery scan and readahead run at media
        bandwidth instead of seek-bound.

        Results come back in request order.  ``errors`` controls media
        faults: ``"raise"`` propagates :class:`MediaError` like
        :meth:`read` does; ``"none"`` returns ``None`` for requests on
        unreadable segments so one bad segment does not abort the
        batch (recovery classifies those as unreadable).  A crashed
        disk always raises.
        """
        if errors not in ("raise", "none"):
            raise ValueError(f"unknown errors policy {errors!r}")
        self._check_retired("batched read")
        from repro.errors import MediaError

        geometry = self.geometry
        segment_size = geometry.segment_size
        for segment_no, offset, nbytes in requests:
            geometry.segment_offset(segment_no)  # bounds-check segment
            if offset < 0 or nbytes < 0 or offset + nbytes > segment_size:
                raise ValueError(
                    f"read [{offset}, {offset + nbytes}) out of segment bounds"
                )
        results: List[Optional[bytes]] = []
        ranges: List[Tuple[int, int]] = []
        zeros: Optional[bytes] = None
        for segment_no, offset, nbytes in requests:
            raw = self._segments.get(segment_no)
            if raw is None:
                if zeros is None:
                    zeros = b"\x00" * segment_size
                raw = zeros
            try:
                raw = self.injector.on_read(segment_no, raw, shard=self.shard_index)
            except MediaError:
                if errors == "raise":
                    raise
                results.append(None)
                continue
            results.append(raw[offset : offset + nbytes])
            ranges.append((geometry.segment_offset(segment_no) + offset, nbytes))
            self.read_count += 1
        if ranges:
            self._h_batch_read_us.observe(
                self.timer.access_batch(ranges, requests=len(ranges))
            )
        return results

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        """True while simulated power is off (or this handle was
        retired by a :meth:`power_cycle`)."""
        return self._retired or self.injector.crashed

    def _check_retired(self, what: str) -> None:
        """Reject I/O through a handle superseded by power_cycle.

        The survivor shares this handle's platter dict and injector;
        without this gate, clearing the injector's ``crashed`` flag
        for the survivor would silently resurrect the pre-crash
        handle, and writes through it would corrupt the survivor's
        platter underneath it.
        """
        if self._retired:
            from repro.errors import DiskCrashedError

            raise DiskCrashedError(
                f"{what} through a disk handle retired by power_cycle()"
            )

    def power_cycle(self) -> "SimulatedDisk":
        """Restore power after a crash.

        Returns a fresh :class:`SimulatedDisk` over the *same*
        surviving bytes with a fresh clock position, modelling a
        reboot: all in-memory state of the logical disk is gone, only
        platter contents remain.  This handle is *retired*: it shares
        the survivor's platter and fault injector, so any further I/O
        through it raises :class:`DiskCrashedError` (power-cycling it
        again is allowed and yields another fresh view).
        """
        self.injector.power_cycle()
        survivor = SimulatedDisk(
            self.geometry,
            clock=self.clock,
            model=self.timer.model,
            injector=self.injector,
            shard_index=self.shard_index,
        )
        survivor._segments = self._segments
        self._retired = True
        return survivor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """I/O statistics snapshot for the harness."""
        return {
            "requests": self.timer.requests,
            "sequential_requests": self.timer.sequential_requests,
            "bytes_transferred": self.timer.bytes_transferred,
            "busy_us": self.timer.busy_us,
            "writes": self.write_count,
            "reads": self.read_count,
            "read_batches": self.timer.batches,
            "batched_requests": self.timer.batched_requests,
            "batched_runs": self.timer.batched_runs,
            "write_batches": self.timer.write_batches,
            "write_batched_requests": self.timer.write_batched_requests,
            "write_batched_runs": self.timer.write_batched_runs,
        }

    # ------------------------------------------------------------------
    # Image persistence
    # ------------------------------------------------------------------

    _IMAGE_MAGIC = b"LDIM"
    _IMAGE_HEADER = "<4sHHIIII"

    def save_image(self, path) -> int:
        """Persist the disk contents to an image file.

        Only written segments are stored, so images of mostly-empty
        disks stay small.  Returns the number of segments saved.
        Saving does not charge simulated time (it is a host-side
        operation, like dd-ing a real disk).
        """
        import struct

        geo = self.geometry
        written = sorted(self._segments)
        with open(path, "wb") as image:
            image.write(
                struct.pack(
                    self._IMAGE_HEADER,
                    self._IMAGE_MAGIC,
                    1,
                    0,
                    geo.block_size,
                    geo.segment_size,
                    geo.num_segments,
                    len(written),
                )
            )
            for seg in written:
                image.write(struct.pack("<I", seg))
                image.write(self._segments[seg])
        return len(written)

    @classmethod
    def load_image(
        cls,
        path,
        clock: Optional[SimClock] = None,
        model: DiskModel = HP_C3010,
    ) -> "SimulatedDisk":
        """Reconstruct a disk from an image written by
        :meth:`save_image`."""
        import struct

        from repro.errors import CorruptionError

        header_size = struct.calcsize(cls._IMAGE_HEADER)
        with open(path, "rb") as image:
            header = image.read(header_size)
            if len(header) < header_size:
                raise CorruptionError(f"{path}: truncated image header")
            magic, version, _pad, block_size, segment_size, num, count = (
                struct.unpack(cls._IMAGE_HEADER, header)
            )
            if magic != cls._IMAGE_MAGIC or version != 1:
                raise CorruptionError(f"{path}: not an LD disk image")
            geometry = DiskGeometry(
                block_size=block_size,
                segment_size=segment_size,
                num_segments=num,
            )
            disk = cls(geometry, clock=clock, model=model)
            for _ in range(count):
                entry = image.read(4)
                if len(entry) != 4:
                    raise CorruptionError(f"{path}: truncated segment index")
                (seg,) = struct.unpack("<I", entry)
                data = image.read(segment_size)
                if len(data) != segment_size:
                    raise CorruptionError(f"{path}: truncated segment {seg}")
                disk._segments[seg] = data
        return disk
