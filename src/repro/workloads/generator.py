"""Synthetic mixed workloads: torture tests and cleaner pressure.

Two generators:

* :func:`random_fs_ops` — a reproducible stream of file-system
  operations (create/write/read/unlink/mkdir/rename) used by the
  crash-torture tests and examples.
* :func:`overwrite_pressure` — repeatedly overwrites a working set of
  blocks to drive the disk toward full and force the segment cleaner
  to run (the cleaner ablation uses this).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional

from repro.errors import FSError
from repro.fs.filesystem import MinixFS
from repro.ld.interface import LogicalDisk
from repro.ld.types import BlockId, ListId


@dataclasses.dataclass
class FsOpTrace:
    """What :func:`random_fs_ops` did (for replay and assertions)."""

    ops: List[str] = dataclasses.field(default_factory=list)
    #: path -> expected contents (the model the FS must match)
    expected: Dict[str, bytes] = dataclasses.field(default_factory=dict)
    dirs: List[str] = dataclasses.field(default_factory=list)


def random_fs_ops(
    fs: MinixFS,
    n_ops: int,
    seed: int = 0,
    max_file_kb: int = 8,
    sync_every: Optional[int] = 25,
    name_prefix: str = "",
) -> FsOpTrace:
    """Apply ``n_ops`` random operations, tracking expected state.

    Returns the trace with the model contents; callers assert the
    file system matches (possibly after a crash — in which case only
    synced state is guaranteed, and callers compare against a
    snapshot taken at the last sync).
    """
    rng = random.Random(seed)
    trace = FsOpTrace(dirs=["/"])
    counter = 0
    tag = name_prefix
    for index in range(n_ops):
        roll = rng.random()
        if roll < 0.08 and len(trace.dirs) < 12:
            path = f"{rng.choice(trace.dirs)}".rstrip("/") + f"/{tag}dir{counter}"
            counter += 1
            fs.mkdir(path)
            trace.dirs.append(path)
            trace.ops.append(f"mkdir {path}")
        elif roll < 0.45 or not trace.expected:
            parent = rng.choice(trace.dirs).rstrip("/")
            path = f"{parent}/{tag}file{counter}"
            counter += 1
            size = rng.randrange(0, max_file_kb * 1024)
            data = rng.getrandbits(8 * max(size, 1)).to_bytes(
                max(size, 1), "little"
            )[:size]
            fs.create(path)
            if data:
                fs.write_file(path, data)
            trace.expected[path] = data
            trace.ops.append(f"create {path} ({size}B)")
        elif roll < 0.65:
            path = rng.choice(sorted(trace.expected))
            size = rng.randrange(0, max_file_kb * 1024)
            offset = rng.randrange(0, max(1, len(trace.expected[path]) + 1))
            data = bytes((rng.randrange(256),)) * max(size, 0)
            if data:
                fs.write_file(path, data, offset=offset)
                old = trace.expected[path]
                if offset > len(old):
                    old = old + b"\x00" * (offset - len(old))
                trace.expected[path] = (
                    old[:offset] + data + old[offset + len(data):]
                )
            trace.ops.append(f"write {path} @{offset} ({size}B)")
        elif roll < 0.85:
            path = rng.choice(sorted(trace.expected))
            fs.unlink(path)
            del trace.expected[path]
            trace.ops.append(f"unlink {path}")
        else:
            path = rng.choice(sorted(trace.expected))
            parent = rng.choice(trace.dirs).rstrip("/")
            new_path = f"{parent}/{tag}moved{counter}"
            counter += 1
            try:
                fs.rename(path, new_path)
            except FSError:
                continue
            trace.expected[new_path] = trace.expected.pop(path)
            trace.ops.append(f"rename {path} -> {new_path}")
        if sync_every and index % sync_every == sync_every - 1:
            fs.sync()
            trace.ops.append("sync")
    return trace


def verify_against_model(fs: MinixFS, expected: Dict[str, bytes]) -> List[str]:
    """Compare the file system against model contents.

    Returns a list of human-readable mismatches (empty = consistent).
    """
    problems: List[str] = []
    for path, data in sorted(expected.items()):
        if not fs.exists(path):
            problems.append(f"missing file {path}")
            continue
        actual = fs.read_file(path)
        if actual != data:
            problems.append(
                f"contents of {path} differ "
                f"({len(actual)}B vs expected {len(data)}B)"
            )
    return problems


def overwrite_pressure(
    ld: LogicalDisk,
    working_set_blocks: int,
    n_writes: int,
    seed: int = 0,
    payload: Optional[Callable[[int], bytes]] = None,
    hot_fraction: float = 1.0,
    hot_weight: float = 0.0,
) -> List[BlockId]:
    """Allocate a working set, then overwrite random members.

    Drives segment turnover so the cleaner has work to do; returns
    the working-set block ids so callers can verify contents after
    cleaning.

    ``hot_fraction``/``hot_weight`` skew the overwrites: with
    probability ``hot_weight`` the victim comes from the first
    ``hot_fraction`` of the working set.  The default is uniform.
    A hot/cold split (e.g. 0.1/0.9) is the workload where the
    cost-benefit cleaner beats greedy, per the LFS literature.
    """
    rng = random.Random(seed)
    block_size = ld.geometry.block_size  # type: ignore[attr-defined]
    make = payload or (
        lambda index: (f"block-{index}-".encode() * 64)[:block_size]
    )
    lst = ld.new_list()
    blocks: List[BlockId] = []
    previous = None
    for index in range(working_set_blocks):
        if previous is None:
            block = ld.new_block(lst)
        else:
            block = ld.new_block(lst, predecessor=previous)
        ld.write(block, make(index))
        blocks.append(block)
        previous = block
    ld.flush()
    hot_count = max(1, int(working_set_blocks * hot_fraction))
    for _index in range(n_writes):
        if hot_weight and rng.random() < hot_weight:
            victim = rng.randrange(hot_count)
        else:
            victim = rng.randrange(working_set_blocks)
        ld.write(blocks[victim], make(victim))
    ld.flush()
    return blocks
