"""Alternative block/list records and the perpendicular chain mesh.

Section 4 of the paper: the persistent tables (block-number-map and
list-table) are augmented with in-memory singly-linked lists of
*alternative records* describing blocks and lists in the committed
and shadow states.  Each record is a member of two chains:

* a **same-state** chain — one per active ARU for shadow records,
  plus one for all committed records — used to transition a whole
  state at once (commit, flush), and
* a **same-identifier** chain rooted at the table entry for that
  logical identifier, used to look up the right version of a block
  or list efficiently.

The resulting mesh makes both lookups by state and by identifier
cheap, which the paper credits for the low overhead of concurrent
ARUs.  We keep the singly-linked structure faithful to the paper and
charge traversal costs through the
:class:`~repro.disk.clock.CostMeter`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.versions import VersionState
from repro.ld.types import ARU_NONE, ARUId, BlockId, ListId, PhysAddr


class BlockVersion:
    """One version of a logical block (one record in the mesh).

    A persistent version is the block-number-map entry itself; shadow
    and committed versions are alternative records chained off it.

    Attributes:
        block_id: Logical identifier.
        state: Which version class this record describes.
        aru_id: Owning ARU for shadow records, ``ARU_NONE`` otherwise.
        allocated: False once the block is deallocated in this version.
        address: Physical location of the data, or None if the block
            was never written (or this is a shadow version holding
            data in memory).
        successor: Next block in this block's list, or None.
        list_id: The list this block belongs to, or None.
        timestamp: Logical time of the last operation that produced
            this version (orders replace-or-discard transitions).
        data: In-memory data for shadow versions; None otherwise.
        origin_aru: For committed records, the ARU whose commit
            produced this version (``ARU_NONE`` for simple
            operations).  A committed record only folds into the
            persistent state once its origin's commit record is on
            disk.
        pending_segment: Sequence number of the segment buffer that
            holds this record's latest data/summary entry; the record
            folds when that segment has been written.
    """

    __slots__ = (
        "block_id",
        "state",
        "aru_id",
        "allocated",
        "address",
        "successor",
        "list_id",
        "timestamp",
        "data",
        "origin_aru",
        "pending_segment",
        "next_same_id",
        "next_same_state",
    )

    def __init__(
        self,
        block_id: BlockId,
        state: VersionState,
        aru_id: ARUId = ARU_NONE,
        allocated: bool = True,
        address: Optional[PhysAddr] = None,
        successor: Optional[BlockId] = None,
        list_id: Optional[ListId] = None,
        timestamp: int = 0,
    ) -> None:
        self.block_id = block_id
        self.state = state
        self.aru_id = aru_id
        self.allocated = allocated
        self.address = address
        self.successor = successor
        self.list_id = list_id
        self.timestamp = timestamp
        self.data: Optional[bytes] = None
        self.origin_aru: ARUId = ARU_NONE
        self.pending_segment: int = -1
        self.next_same_id: Optional[BlockVersion] = None
        self.next_same_state: Optional[BlockVersion] = None

    def copy_from(self, other: "BlockVersion") -> None:
        """Copy the logical content (not chain links) of ``other``."""
        self.allocated = other.allocated
        self.address = other.address
        self.successor = other.successor
        self.list_id = other.list_id
        self.timestamp = other.timestamp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BlockVersion {self.block_id} {self.state.name} aru={self.aru_id} "
            f"alloc={self.allocated} addr={self.address} succ={self.successor} "
            f"list={self.list_id} ts={self.timestamp}>"
        )


class ListVersion:
    """One version of a block list (list-table entry or alternative).

    The list-table records the first and last block of each list
    (Section 4); block order within the list is carried by the
    ``successor`` fields of the member block versions in the same
    state.
    """

    __slots__ = (
        "list_id",
        "state",
        "aru_id",
        "allocated",
        "first",
        "last",
        "count",
        "timestamp",
        "origin_aru",
        "pending_segment",
        "next_same_id",
        "next_same_state",
    )

    def __init__(
        self,
        list_id: ListId,
        state: VersionState,
        aru_id: ARUId = ARU_NONE,
        allocated: bool = True,
        first: Optional[BlockId] = None,
        last: Optional[BlockId] = None,
        count: int = 0,
        timestamp: int = 0,
    ) -> None:
        self.list_id = list_id
        self.state = state
        self.aru_id = aru_id
        self.allocated = allocated
        self.first = first
        self.last = last
        self.count = count
        self.timestamp = timestamp
        self.origin_aru: ARUId = ARU_NONE
        self.pending_segment: int = -1
        self.next_same_id: Optional[ListVersion] = None
        self.next_same_state: Optional[ListVersion] = None

    def copy_from(self, other: "ListVersion") -> None:
        """Copy the logical content (not chain links) of ``other``."""
        self.allocated = other.allocated
        self.first = other.first
        self.last = other.last
        self.count = other.count
        self.timestamp = other.timestamp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ListVersion {self.list_id} {self.state.name} aru={self.aru_id} "
            f"alloc={self.allocated} first={self.first} last={self.last} "
            f"count={self.count}>"
        )


class ChainRoot:
    """Table entry for one logical identifier: the same-id chain root.

    Holds the persistent version (if any) and the head of the
    same-identifier chain of alternative records, newest first.
    """

    __slots__ = ("persistent", "alt_head")

    def __init__(self) -> None:
        self.persistent = None
        self.alt_head = None

    # The chain is generic over BlockVersion/ListVersion; both carry
    # the same chain attributes.

    def push_alt(self, version) -> None:
        """Insert an alternative record at the head of the id chain."""
        version.next_same_id = self.alt_head
        self.alt_head = version

    def remove_alt(self, version) -> None:
        """Unlink an alternative record from the id chain."""
        prev = None
        node = self.alt_head
        while node is not None:
            if node is version:
                if prev is None:
                    self.alt_head = node.next_same_id
                else:
                    prev.next_same_id = node.next_same_id
                node.next_same_id = None
                return
            prev = node
            node = node.next_same_id
        raise ValueError(f"record {version!r} not on its id chain")

    def iter_alts(self) -> Iterator:
        """Yield alternative records newest-first (no cost charging)."""
        node = self.alt_head
        while node is not None:
            yield node
            node = node.next_same_id

    def find(self, state: VersionState, aru_id: ARUId, meter=None):
        """Find the alternative record in ``state`` (for ``aru_id``).

        For shadow lookups ``aru_id`` selects whose shadow; for
        committed lookups ``aru_id`` is ignored.  Charges one chain
        hop per record visited when a meter is supplied.
        """
        node = self.alt_head
        while node is not None:
            if meter is not None:
                meter.charge("chain_hop_us")
            if node.state is state and (
                state is not VersionState.SHADOW or node.aru_id == aru_id
            ):
                return node
            node = node.next_same_id
        return None

    def newest_shadow(self, meter=None):
        """The most recent shadow record across all ARUs (option 1)."""
        best = None
        node = self.alt_head
        while node is not None:
            if meter is not None:
                meter.charge("chain_hop_us")
            if node.state is VersionState.SHADOW and (
                best is None or node.timestamp > best.timestamp
            ):
                best = node
            node = node.next_same_id
        return best

    @property
    def empty(self) -> bool:
        """True when neither a persistent nor any alternative exists."""
        return self.persistent is None and self.alt_head is None


class StateChain:
    """A same-state chain: all records currently in one state.

    One instance exists per active ARU (its shadow records) and one
    for the committed state.  Records are pushed at the head; commit
    and flush consume the chain, so the singly-linked structure never
    needs mid-chain removal on the hot path (removal is provided for
    in-place supersession and aborts).
    """

    __slots__ = ("head", "length")

    def __init__(self) -> None:
        self.head = None
        self.length = 0

    def push(self, version) -> None:
        """Insert a record at the head of the chain."""
        version.next_same_state = self.head
        self.head = version
        self.length += 1

    def remove(self, version) -> None:
        """Unlink a record from the chain (O(length))."""
        prev = None
        node = self.head
        while node is not None:
            if node is version:
                if prev is None:
                    self.head = node.next_same_state
                else:
                    prev.next_same_state = node.next_same_state
                node.next_same_state = None
                self.length -= 1
                return
            prev = node
            node = node.next_same_state
        raise ValueError(f"record {version!r} not on its state chain")

    def __iter__(self) -> Iterator:
        node = self.head
        while node is not None:
            # Capture the successor first so callers may unlink node.
            nxt = node.next_same_state
            yield node
            node = nxt

    def drain(self) -> Iterator:
        """Yield and unlink every record, oldest state intact.

        Records come off newest-first (push order).  The chain is
        empty afterwards.
        """
        node = self.head
        self.head = None
        self.length = 0
        while node is not None:
            nxt = node.next_same_state
            node.next_same_state = None
            yield node
            node = nxt

    def __len__(self) -> int:
        return self.length
