"""Unit tests for the disk timing model."""

import pytest

from repro.disk.clock import SimClock
from repro.disk.timing import DiskModel, DiskTimer, HP_C3010


class TestDiskModel:
    def test_rotational_latency_5400rpm(self):
        # Half a revolution at 5400 rpm = 60/5400/2 s = 5.555... ms
        assert HP_C3010.avg_rotational_us == pytest.approx(5555.5, abs=0.2)

    def test_transfer_time(self):
        model = DiskModel(transfer_rate_bps=1_000_000)
        assert model.transfer_us(500_000) == pytest.approx(500_000.0)

    def test_random_request_includes_seek(self):
        model = DiskModel(
            avg_seek_us=10_000,
            rpm=6000,
            transfer_rate_bps=1_000_000,
            controller_overhead_us=100,
        )
        random_cost = model.request_us(1_000_000, sequential=False)
        sequential_cost = model.request_us(1_000_000, sequential=True)
        assert random_cost - sequential_cost == pytest.approx(
            10_000 + model.avg_rotational_us
        )

    def test_sequential_request_has_no_seek(self):
        model = DiskModel(controller_overhead_us=50, transfer_rate_bps=2e6)
        assert model.request_us(2_000_000, sequential=True) == pytest.approx(
            50 + 1_000_000
        )


class TestDiskTimer:
    def test_first_access_is_random(self):
        clock = SimClock()
        timer = DiskTimer(clock, HP_C3010)
        timer.access(0, 4096)
        assert timer.requests == 1
        assert timer.sequential_requests == 0

    def test_back_to_back_is_sequential(self):
        clock = SimClock()
        timer = DiskTimer(clock, HP_C3010)
        timer.access(0, 4096)
        timer.access(4096, 4096)
        assert timer.sequential_requests == 1

    def test_gap_is_not_sequential(self):
        clock = SimClock()
        timer = DiskTimer(clock, HP_C3010)
        timer.access(0, 4096)
        timer.access(8192, 4096)
        assert timer.sequential_requests == 0

    def test_time_charged_to_clock(self):
        clock = SimClock()
        timer = DiskTimer(clock, HP_C3010)
        latency = timer.access(0, 512 * 1024)
        assert clock.now_us == pytest.approx(latency)
        assert latency > HP_C3010.avg_seek_us

    def test_bytes_accumulated(self):
        timer = DiskTimer(SimClock(), HP_C3010)
        timer.access(0, 100)
        timer.access(100, 200)
        assert timer.bytes_transferred == 300

    def test_sequential_writes_reach_near_bandwidth(self):
        """Large sequential transfers should approach the sustained
        transfer rate — the property LLD's segment writes exploit."""
        clock = SimClock()
        timer = DiskTimer(clock, HP_C3010)
        total = 0
        for index in range(64):
            timer.access(index * 512 * 1024, 512 * 1024)
            total += 512 * 1024
        seconds = clock.now_us / 1e6
        bandwidth = total / seconds
        assert bandwidth > 0.85 * HP_C3010.transfer_rate_bps
