"""Tests for the unified observability subsystem (repro.obs).

Covers the metrics registry and flight recorder in isolation, their
integration into a live LLD, and the crash-dump contract: after a
torn-write power failure the recorder's tail survives as a JSON-lines
dump, and neither recording nor dumping perturbs a single simulated
byte (the instrumented and uninstrumented runs leave byte-identical
platters and recover identically).
"""

import json

import pytest

from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskCrashedError
from repro.lld.lld import LLD
from repro.lld.recovery import recover
from repro.lld.verify import verify_lld
from repro.obs import (
    DISABLED_REGISTRY,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    FlightRecorder,
    MetricsRegistry,
    Observability,
)

from tests.conftest import make_lld


class TestRegistry:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.add(4)
        assert counter.value == 5
        assert registry.value("a.b") == 5

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", initial=None)
        assert gauge.value is None
        gauge.update_min(3.5)
        gauge.update_min(7.0)
        assert gauge.value == 3.5
        peak = registry.gauge("peak")
        peak.update_max(2)
        peak.update_max(1)
        assert peak.value == 2
        peak.set(9)
        assert peak.value == 9

    def test_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (1.0, 3.0, 1000.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["max_us"] == 1000.0
        assert snap["mean_us"] == pytest.approx((1 + 3 + 1000) / 3)
        assert sum(bucket["count"] for bucket in snap["buckets"]) == 3

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_cross_kind_name_reuse_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")
        with pytest.raises(ValueError):
            registry.histogram("name")

    def test_group_values(self):
        registry = MetricsRegistry()
        registry.counter("ops.read").add(2)
        registry.counter("ops.write").add(3)
        registry.counter("other").inc()
        assert registry.group_values("ops.") == {"read": 2, "write": 3}

    def test_disabled_registry_hands_out_nulls(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("anything") is NULL_COUNTER
        assert registry.gauge("anything") is NULL_GAUGE
        assert registry.histogram("anything") is NULL_HISTOGRAM
        NULL_COUNTER.inc()
        NULL_GAUGE.set(5)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert registry.value("anything") == 0
        assert registry.snapshot()["enabled"] is False
        assert DISABLED_REGISTRY.counter("x") is NULL_COUNTER

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(10.0)
        json.dumps(registry.snapshot())  # must not raise


class TestFlightRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_ring_keeps_newest(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record("tick", index=index)
        events = list(recorder.events())
        assert [event["index"] for event in events] == [2, 3, 4]
        assert [event["seq"] for event in events] == [3, 4, 5]
        assert recorder.recorded == 5
        assert recorder.dropped == 2

    def test_field_named_kind_and_seq_do_not_clash(self):
        recorder = FlightRecorder()
        recorder.record("quarantine", kind="corrupt", seq=999)
        event = next(recorder.events())
        assert event["event"] == "quarantine"
        assert event["kind"] == "corrupt"
        assert event["seq"] == 1  # recorder's own sequence wins

    def test_disabled_recorder_is_free(self):
        recorder = FlightRecorder(enabled=False)
        recorder.record("tick")
        assert recorder.recorded == 0
        assert list(recorder.events()) == []

    def test_dump_jsonl_roundtrip(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        for index in range(6):
            recorder.record("tick", index=index)
        path = tmp_path / "events.jsonl"
        written = recorder.dump_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert written == len(lines) == 4
        parsed = [json.loads(line) for line in lines]
        assert [event["index"] for event in parsed] == [2, 3, 4, 5]

    def test_observability_crash_dump_swallows_io_errors(self, tmp_path):
        obs = Observability(dump_path=str(tmp_path / "no" / "dir" / "x"))
        assert obs.crash_dump("test") is None  # bad path, no raise
        good = Observability(dump_path=str(tmp_path / "dump.jsonl"))
        good.record("before")
        assert good.crash_dump("test") == str(tmp_path / "dump.jsonl")
        events = [
            json.loads(line)
            for line in (tmp_path / "dump.jsonl").read_text().splitlines()
        ]
        assert events[-1]["event"] == "crash_dump"
        assert events[-1]["reason"] == "test"


class TestLLDIntegration:
    def workload(self, ld):
        lst = ld.new_list()
        aru = ld.begin_aru()
        block = ld.new_block(lst, aru=aru)
        ld.write(block, b"payload", aru=aru)
        ld.end_aru(aru)
        doomed = ld.begin_aru()
        ld.abort_aru(doomed)
        ld.flush()
        return block

    def test_events_cover_the_lifecycle(self):
        ld = make_lld()
        self.workload(ld)
        kinds = {event["event"] for event in ld.obs.recorder.events()}
        assert {"aru.begin", "aru.commit", "aru.abort", "segment.seal"} \
            <= kinds

    def test_registry_backs_the_counters(self):
        ld = make_lld()
        self.workload(ld)
        assert ld.obs.metrics.value("lld.ops.write") == 1
        assert ld.op_counts["write"] == 1
        assert ld.segments_flushed == ld.obs.metrics.value(
            "lld.segments.flushed"
        )

    def test_commit_latency_histogram_observes_commits(self):
        ld = make_lld()
        self.workload(ld)
        hist = ld.obs.metrics.histogram("lld.commit_us")
        assert hist.count == 1
        assert hist.snapshot()["max_us"] >= 0.0

    def test_metrics_off_is_invisible_to_simulation(self):
        on = make_lld()
        off = make_lld(metrics=False)
        for ld in (on, off):
            self.workload(ld)
        assert on.clock.now_us == off.clock.now_us
        assert off.obs.metrics.enabled is False
        assert off.op_counts == {}
        assert off.segments_flushed == 0  # documented trade-off
        # The recorder still runs with metrics off.
        assert off.obs.recorder.recorded > 0

    def test_stats_obs_section(self):
        ld = make_lld()
        self.workload(ld)
        obs = ld.stats()["obs"]
        assert obs["metrics_enabled"] is True
        assert obs["events_recorded"] == ld.obs.recorder.recorded
        assert obs["events_capacity"] == ld.obs.recorder.capacity

    def test_scrub_and_cleaner_events(self):
        from repro.workloads.generator import overwrite_pressure

        ld = make_lld(
            num_segments=24, clean_low_water=3, clean_high_water=6
        )
        overwrite_pressure(ld, working_set_blocks=40, n_writes=600)
        assert ld.cleanings > 0
        ld.scrub()
        kinds = {event["event"] for event in ld.obs.recorder.events()}
        assert "cleaner.pass" in kinds
        assert "scrub.pass" in kinds
        assert ld.obs.metrics.value("lld.scrub.scrubs") == 1
        assert ld.obs.metrics.value("lld.cleaner.passes") == ld.cleanings

    def test_recovery_events_and_phase_counters(self):
        ld = make_lld()
        self.workload(ld)
        ld.write_checkpoint()
        survivor = ld.disk.power_cycle()
        ld2, report = recover(survivor, checkpoint_slot_segments=2)
        kinds = [event["event"] for event in ld2.obs.recorder.events()]
        assert kinds[0] == "recovery.start"
        assert "recovery.done" in kinds
        assert ld2.obs.metrics.value("lld.recovery.recoveries") == 1
        for phase in report.phase_us:
            assert ld2.obs.metrics.value(f"lld.recovery.{phase}_us") == \
                pytest.approx(report.phase_us[phase])


def crash_workload(ld):
    """Deterministic ARU-per-block stream with periodic flushes and a
    mid-stream checkpoint, so the sweep crosses data, summary and
    checkpoint writes alike."""
    lst = ld.new_list()
    for index in range(40):
        aru = ld.begin_aru()
        block = ld.new_block(lst, aru=aru)
        ld.write(block, bytes([index + 1]) * 256, aru=aru)
        ld.end_aru(aru)
        if index % 3 == 0:
            ld.flush()
        if index == 20:
            ld.write_checkpoint()
    ld.flush()


def run_to_crash(crash_after, tmp_path=None, **lld_kwargs):
    """Run the workload into a torn-write crash; returns (disk, ld)."""
    injector = FaultInjector(
        CrashPlan(
            after_writes=crash_after,
            torn=True,
            seed=crash_after,
            granularity="byte",
        )
    )
    disk = SimulatedDisk(
        DiskGeometry.small(num_segments=96), injector=injector
    )
    if tmp_path is not None:
        lld_kwargs["flight_dump_path"] = str(
            tmp_path / f"crash_{crash_after}.jsonl"
        )
    ld = LLD(disk, checkpoint_slot_segments=2, **lld_kwargs)
    crashed = False
    try:
        crash_workload(ld)
    except DiskCrashedError:
        crashed = True
    return disk, ld, crashed


def crash_budget():
    """(total segment writes, the workload's list id) with no crash."""
    disk = SimulatedDisk(DiskGeometry.small(num_segments=96))
    ld = LLD(disk, checkpoint_slot_segments=2)
    crash_workload(ld)
    list_id = next(iter(ld.ltable.persistent_lists()))[0]
    return disk.write_count, list_id


class TestCrashDump:
    def test_torn_crash_sweep_dumps_event_tail(self, tmp_path):
        """At every torn-write crash point, the flight recorder dumps
        its last-N-events tail, and observability never perturbs the
        platter: the instrumented run and a metrics-off run leave
        byte-identical disks and recover identically."""
        limit, list_id = crash_budget()
        assert limit > 5, "workload too small to be interesting"
        capacity = 16
        for crash_after in range(1, limit + 1):
            disk_a, ld_a, crashed = run_to_crash(
                crash_after, tmp_path=tmp_path, recorder_events=capacity
            )
            disk_b, _ld_b, crashed_b = run_to_crash(
                crash_after, metrics=False
            )
            assert crashed == crashed_b, crash_after
            if not crashed:
                continue  # the budget outlived the workload

            # Byte-identical platters: metrics and the dump changed
            # nothing the disk can see.
            assert disk_a._segments == disk_b._segments, crash_after

            # The dump exists and holds the recorder's tail.
            dump = tmp_path / f"crash_{crash_after}.jsonl"
            events = [
                json.loads(line)
                for line in dump.read_text().splitlines()
            ]
            assert 0 < len(events) <= capacity, crash_after
            assert events[-1]["event"] == "crash_dump"
            seqs = [event["seq"] for event in events]
            assert seqs == list(
                range(seqs[0], seqs[0] + len(seqs))
            ), crash_after
            assert seqs[-1] == ld_a.obs.recorder.recorded

            # Both survivors recover to the same state.
            rec_a, report_a = recover(
                disk_a.power_cycle(), checkpoint_slot_segments=2
            )
            rec_b, report_b = recover(
                disk_b.power_cycle(), checkpoint_slot_segments=2
            )
            assert verify_lld(rec_a) == []
            assert report_a.segments_replayed == report_b.segments_replayed
            assert report_a.arus_committed == report_b.arus_committed
            surviving_a = dict(rec_a.ltable.persistent_lists())
            surviving_b = dict(rec_b.ltable.persistent_lists())
            assert surviving_a.keys() == surviving_b.keys(), crash_after
            if list_id in surviving_a:
                blocks_a = rec_a.list_blocks(list_id)
                assert blocks_a == rec_b.list_blocks(list_id)
                for block in blocks_a:
                    assert rec_a.read(block) == rec_b.read(block)

    def test_dumping_does_not_perturb_recovery(self, tmp_path):
        """Dumping the ring mid-flight is a pure read: the platter is
        unchanged and a subsequent recovery is byte-identical to one
        without the dump."""
        limit, _list_id = crash_budget()
        disk, ld, crashed = run_to_crash(limit // 2)
        assert crashed
        before = {
            seg: bytes(data) for seg, data in disk._segments.items()
        }
        ld.obs.recorder.dump_jsonl(str(tmp_path / "manual.jsonl"))
        after = {seg: bytes(data) for seg, data in disk._segments.items()}
        assert before == after
        recovered, _report = recover(
            disk.power_cycle(), checkpoint_slot_segments=2
        )
        assert verify_lld(recovered) == []

    def test_verify_failure_triggers_crash_dump(self, tmp_path):
        from repro.ld.types import BlockId

        dump = tmp_path / "verify.jsonl"
        ld = make_lld(flight_dump_path=str(dump))
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"data")
        ld.flush()
        # Seed a mesh corruption so verification fails.
        ld.bmap.root(block).persistent.successor = BlockId(999)
        problems = verify_lld(ld)
        assert problems
        events = [
            json.loads(line)
            for line in dump.read_text().splitlines()
        ]
        assert events[-1]["event"] == "crash_dump"
        assert events[-1]["reason"] == "verify_failed"
        failed = [e for e in events if e["event"] == "verify.failed"]
        assert failed and failed[-1]["problems"] == len(problems)
