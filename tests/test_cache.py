"""Unit tests for the block read cache."""

import pytest

from repro.ld.types import PhysAddr
from repro.lld.cache import BlockCache


class TestBlockCache:
    def test_miss_then_hit(self):
        cache = BlockCache(4)
        addr = PhysAddr(1, 2)
        assert cache.get(addr) is None
        cache.put(addr, b"data")
        assert cache.get(addr) == b"data"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = BlockCache(2)
        a, b, c = PhysAddr(0, 0), PhysAddr(0, 1), PhysAddr(0, 2)
        cache.put(a, b"a")
        cache.put(b, b"b")
        cache.get(a)  # refresh a
        cache.put(c, b"c")  # evicts b
        assert cache.get(b) is None
        assert cache.get(a) == b"a"
        assert cache.get(c) == b"c"

    def test_put_refreshes(self):
        cache = BlockCache(2)
        a, b, c = PhysAddr(0, 0), PhysAddr(0, 1), PhysAddr(0, 2)
        cache.put(a, b"a1")
        cache.put(b, b"b")
        cache.put(a, b"a2")  # refresh + replace
        cache.put(c, b"c")  # evicts b
        assert cache.get(a) == b"a2"
        assert cache.get(b) is None

    def test_invalidate_segment(self):
        cache = BlockCache(8)
        cache.put(PhysAddr(1, 0), b"x")
        cache.put(PhysAddr(1, 1), b"y")
        cache.put(PhysAddr(2, 0), b"z")
        assert cache.invalidate_segment(1) == 2
        assert cache.get(PhysAddr(1, 0)) is None
        assert cache.get(PhysAddr(2, 0)) == b"z"

    def test_invalidate_all(self):
        cache = BlockCache(8)
        cache.put(PhysAddr(1, 0), b"x")
        cache.invalidate_all()
        assert len(cache) == 0

    def test_zero_capacity_never_stores(self):
        cache = BlockCache(0)
        cache.put(PhysAddr(0, 0), b"x")
        assert cache.get(PhysAddr(0, 0)) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(-1)

    def test_hit_rate(self):
        cache = BlockCache(4)
        addr = PhysAddr(0, 0)
        cache.put(addr, b"x")
        cache.get(addr)
        cache.get(PhysAddr(9, 9))
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert BlockCache(4).hit_rate == 0.0

    def test_capacity_bound_holds(self):
        cache = BlockCache(3)
        for index in range(10):
            cache.put(PhysAddr(0, index), bytes([index]))
        assert len(cache) == 3
