"""Sharded multi-volume logical disks.

:class:`ShardedLLD` stripes logical block and list identifiers across
N independent :class:`~repro.lld.lld.LLD` volumes (each with its own
simulated disk, clock, cleaner, write-behind queue and metrics
registry) behind the ordinary :class:`~repro.ld.interface.LogicalDisk`
API, keeping ``begin_aru``/``end_aru`` failure-atomic *across* the
volumes via a two-phase coordinator commit, and — with an
:class:`ArrayConfig` replication factor above 1 — mirroring every
entity on ring peer shards so the array serves reads and writes
through the loss of any ``replication_factor - 1`` members and
rebuilds them online (:meth:`ShardedLLD.repair`).
:func:`repro.recovery.recover` (or the deprecated
:func:`recover_sharded`) scans every surviving shard in parallel and
rolls each shard's prepared state forward or discards it according
to the union of the decision shards' DECIDE records.  See
``docs/SHARDING.md``.
"""

from repro.shard.config import ArrayConfig
from repro.shard.recovery import ShardRecoveryReport, recover_sharded
from repro.shard.sharded import (
    ShardedLLD,
    build_sharded,
    mirror_id,
    shard_of,
    to_global,
    to_local,
)

__all__ = [
    "ArrayConfig",
    "ShardedLLD",
    "ShardRecoveryReport",
    "build_sharded",
    "mirror_id",
    "recover_sharded",
    "shard_of",
    "to_global",
    "to_local",
]
