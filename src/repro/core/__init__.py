"""The paper's primary contribution: concurrent atomic recovery units.

This package implements the version machinery of Section 3 — the
shadow / committed / persistent block and list versions, the
perpendicular in-memory record chains of Section 4, the per-ARU
list-operation log, and the three read-visibility policies of
Section 3.3.  The log-structured logical disk (:mod:`repro.lld`)
drives these structures; they are kept separate so a different LD
implementation could reuse them (the paper notes other LD
implementations "will have to utilize at least a meta-data update log
... to fully support multiple shadow states").
"""

from repro.core.aru import ARURecord, ARUTable
from repro.core.oplog import ListOp, ListOpKind, ListOpLog
from repro.core.records import BlockVersion, ChainRoot, ListVersion, StateChain
from repro.core.versions import VersionState
from repro.core.visibility import Visibility

__all__ = [
    "ARURecord",
    "ARUTable",
    "BlockVersion",
    "ChainRoot",
    "ListOp",
    "ListOpKind",
    "ListOpLog",
    "ListVersion",
    "StateChain",
    "VersionState",
    "Visibility",
]
