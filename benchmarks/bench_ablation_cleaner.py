"""Ablation C — segment-cleaner policy under overwrite pressure.

The paper inherits LLD's segment cleaner (Section 2) without
evaluating it; this ablation compares the two classic policies on a
nearly-full partition under uniform random overwrites: greedy
(fewest live blocks) vs cost-benefit (LFS's age-weighted score).
Reported: simulated time, cleaner passes, blocks copied (write
amplification).
"""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.harness.reporting import format_table
from repro.lld.lld import LLD
from repro.workloads.generator import overwrite_pressure

from benchmarks.conftest import full_scale, report_table

N_WRITES = 24_000 if full_scale() else 8_000
_RESULTS = {}


def run_policy(policy: str, skewed: bool) -> dict:
    geo = DiskGeometry.small(num_segments=64)
    disk = SimulatedDisk(geo)
    lld = LLD(
        disk,
        cleaner_policy=policy,
        checkpoint_slot_segments=1,
        clean_low_water=5,
        clean_high_water=14,
    )
    # Working set ~55 % of the partition's data capacity.
    working_set = int(geo.max_data_blocks * (geo.num_segments - 2) * 0.55)
    # Skewed: 90 % of writes hit 10 % of the blocks — the hot/cold
    # split where segment age carries signal.
    hot_kwargs = (
        {"hot_fraction": 0.1, "hot_weight": 0.9} if skewed else {}
    )
    blocks = overwrite_pressure(
        lld,
        working_set_blocks=working_set,
        n_writes=N_WRITES,
        seed=17,
        **hot_kwargs,
    )
    # Verify no data was harmed by cleaning.
    for index in (0, len(blocks) // 2, len(blocks) - 1):
        assert lld.read(blocks[index]).startswith(f"block-{index}-".encode())
    copied = lld.meter.counters.get("block_copy_us", 0)
    return {
        "sim_seconds": lld.clock.now_s,
        "cleanings": lld.cleanings,
        "segments_flushed": lld.segments_flushed,
        "blocks_copied_proxy": copied,
    }


@pytest.mark.benchmark(group="ablation-cleaner")
@pytest.mark.parametrize("workload", ["uniform", "hot_cold"])
@pytest.mark.parametrize("policy", ["greedy", "cost_benefit"])
def test_cleaner_policy(benchmark, policy, workload):
    stats = benchmark.pedantic(
        lambda: run_policy(policy, skewed=workload == "hot_cold"),
        rounds=1,
        iterations=1,
    )
    _RESULTS[(workload, policy)] = stats
    for key, value in stats.items():
        benchmark.extra_info[key] = round(value, 2)
    assert stats["cleanings"] > 0, "workload failed to trigger the cleaner"
    if len(_RESULTS) == 4:
        table = format_table(
            "Ablation C — cleaner policy vs workload skew "
            f"({N_WRITES} writes, 55% utilization; hot/cold = 90% of "
            "writes to 10% of blocks)",
            ["sim seconds", "cleanings", "segments flushed"],
            {
                f"{workload_name}/{policy_name}": [
                    result["sim_seconds"],
                    float(result["cleanings"]),
                    float(result["segments_flushed"]),
                ]
                for (workload_name, policy_name), result in sorted(
                    _RESULTS.items()
                )
            },
        )
        report_table("ablation_cleaner", table)
