"""The frozen ``stats()`` schema, in one place.

Every key that :meth:`repro.lld.lld.LLD.stats` returns is declared
here, with its type; the regression test in
``tests/test_stats_schema.py`` snapshots the declared paths, so
renaming or dropping a counter is a deliberate, visible act (edit
this module *and* the test) rather than a silent drift.

The schema language is deliberately tiny:

* ``INT`` / ``NUM`` / ``BOOL`` — leaf sentinels (``NUM`` accepts int
  or float; ``bool`` is never a valid ``INT``/``NUM``).
* ``OPT_NUM`` — a number or ``None`` (e.g. ``segments.min_fill``
  before any segment sealed).
* a dict — a nested section whose keys must match exactly…
* …unless it contains the single key ``"*"``, which declares an open
  group: any keys, every value matching the ``"*"`` type (used for
  the op/CPU counter groups, whose members depend on the workload).

``python -m repro.obs.schema FILE...`` validates harness metrics
artifacts (or bare ``stats()`` dumps) against the schema — the CI
metrics-smoke job runs exactly that.
"""

from __future__ import annotations

import json
import sys
from typing import Iterator, List

INT = "int"
NUM = "number"
BOOL = "bool"
OPT_NUM = "number-or-null"
STR = "str"

#: The frozen schema.  Add keys freely in future PRs; renames and
#: removals must update the snapshot test alongside this table.
STATS_SCHEMA = {
    "ops": {"*": INT},
    "cpu_us": {"*": NUM},
    # Units vary by charge kind (calls, entries, KB), so fractional
    # counts are legitimate (e.g. crc charged per KB).
    "cpu_counts": {"*": NUM},
    "segments_flushed": INT,
    "cleanings": INT,
    "active_arus": INT,
    "arus_begun": INT,
    "arus_committed": INT,
    "cache_hits": INT,
    "cache_misses": INT,
    "free_segments": INT,
    "scrub": {
        "scrubs": INT,
        "segments_quarantined": INT,
        "blocks_salvaged": INT,
        "blocks_salvaged_stale": INT,
        "blocks_lost": INT,
        "degraded_reads": INT,
        "salvaged_reads": INT,
        "unrecoverable_reads": INT,
        "pending_segments": INT,
        "quarantined_segments": INT,
    },
    "writeback": {
        "depth": INT,
        "queued": INT,
        "submitted": INT,
        "drains": INT,
        "auto_drains": INT,
        "max_depth_seen": INT,
    },
    "group_commit": {
        "enabled": BOOL,
        "parked": INT,
        "groups_flushed": INT,
        "commits_grouped": INT,
    },
    "segments": {
        "sealed": INT,
        "flushed": INT,
        "data_bytes": INT,
        "summary_bytes": INT,
        "avg_fill": NUM,
        "min_fill": OPT_NUM,
    },
    "recovery": {
        "restoring": BOOL,
        "watermark": INT,
        "pending_segments": INT,
        "on_demand_replays": INT,
        "instant_restores": INT,
    },
    "disk": {
        "requests": INT,
        "sequential_requests": INT,
        "bytes_transferred": INT,
        "busy_us": NUM,
        "writes": INT,
        "reads": INT,
        "read_batches": INT,
        "batched_requests": INT,
        "batched_runs": INT,
        "write_batches": INT,
        "write_batched_requests": INT,
        "write_batched_runs": INT,
    },
    "obs": {
        "metrics_enabled": BOOL,
        "events_recorded": INT,
        "events_dropped": INT,
        "events_capacity": INT,
    },
}


#: The ``sharding`` section a :class:`~repro.shard.sharded.ShardedLLD`
#: adds beside its per-shard and aggregate stats.  Separate table, not
#: part of STATS_SCHEMA: single-volume stats never carry it, and the
#: frozen-path snapshot covers single volumes only.
SHARDING_SCHEMA = {
    "shards": INT,
    "replication_factor": INT,
    "xids_issued": INT,
    "commits_single_shard": INT,
    "commits_cross_shard": INT,
    "decided_pending": INT,
    "dead_shards": INT,
    "degraded_reads": INT,
    "repairs_completed": INT,
    "blocks_healed": INT,
    "lists_healed": INT,
    "replica_skips": INT,
    "redundancy_full": BOOL,
}


#: One component of the front end's decomposed request latency —
#: the shape :func:`repro.obs.registry.latency_summary` emits.
LATENCY_SUMMARY_SCHEMA = {
    "count": INT,
    "mean_us": NUM,
    "max_us": NUM,
    "p50_us": NUM,
    "p99_us": NUM,
    "p999_us": NUM,
}

#: The front-end ``stats()`` schema — identical for both lane
#: implementations (``lane_impl="thread"`` and ``"async"``); the
#: regression tests run each through this table, so the two
#: schedulers cannot drift apart.
FRONTEND_SCHEMA = {
    "lane_impl": STR,
    "lanes": INT,
    "workers": INT,
    "inflight": INT,
    "inflight_max": INT,
    "submitted": INT,
    "admitted": INT,
    "shed": INT,
    "completed": INT,
    "gave_up": INT,
    "failed": INT,
    "per_tenant_completed": {"*": INT},
    "latency": {
        "queue_wait": LATENCY_SUMMARY_SCHEMA,
        "lock_wait": LATENCY_SUMMARY_SCHEMA,
        "storage": LATENCY_SUMMARY_SCHEMA,
        "sched_overhead": LATENCY_SUMMARY_SCHEMA,
        "service": LATENCY_SUMMARY_SCHEMA,
    },
    "txn": {
        "begun": INT,
        "committed": INT,
        "aborted": INT,
        "locks": {
            "grants": INT,
            "waits": INT,
            "deaths": INT,
            "timeouts": INT,
            "owners_registered": INT,
            "resources_locked": INT,
            "locks_held": INT,
            "waiters": INT,
            "async_waiters": INT,
        },
    },
}


def _type_ok(sentinel: str, value) -> bool:
    # bool is a subclass of int, so it must be ruled on first.
    if sentinel == BOOL:
        return isinstance(value, bool)
    if sentinel == STR:
        return isinstance(value, str)
    if isinstance(value, bool):
        return False
    if sentinel == INT:
        return isinstance(value, int)
    if sentinel == NUM:
        return isinstance(value, (int, float))
    if sentinel == OPT_NUM:
        return value is None or isinstance(value, (int, float))
    raise ValueError(f"unknown schema sentinel {sentinel!r}")


def _validate(schema: dict, stats, path: str, problems: List[str]) -> None:
    if not isinstance(stats, dict):
        problems.append(f"{path or '<root>'}: expected a dict, got "
                        f"{type(stats).__name__}")
        return
    if set(schema) == {"*"}:
        sentinel = schema["*"]
        for key, value in stats.items():
            if not _type_ok(sentinel, value):
                problems.append(
                    f"{path}.{key}: expected {sentinel}, got {value!r}"
                )
        return
    for key, expected in schema.items():
        where = f"{path}.{key}" if path else key
        if key not in stats:
            problems.append(f"{where}: missing")
            continue
        value = stats[key]
        if isinstance(expected, dict):
            _validate(expected, value, where, problems)
        elif not _type_ok(expected, value):
            problems.append(f"{where}: expected {expected}, got {value!r}")
    for key in stats:
        if key not in schema:
            where = f"{path}.{key}" if path else key
            problems.append(f"{where}: not in the frozen schema")


def validate_stats(stats: dict) -> List[str]:
    """Problems with a ``stats()`` dict against the frozen schema.

    Empty list means the dict conforms: every declared key present
    with the declared type, and no undeclared keys.
    """
    problems: List[str] = []
    _validate(STATS_SCHEMA, stats, "", problems)
    return problems


def is_sharded_stats(stats) -> bool:
    """Whether a dict has the sharded-volume stats shape."""
    return (
        isinstance(stats, dict)
        and "shards" in stats
        and "aggregate" in stats
    )


def validate_sharded_stats(stats: dict) -> List[str]:
    """Problems with a :class:`ShardedLLD` ``stats()`` dict.

    The shape is ``{"shards": {index: <frozen stats>}, "aggregate":
    <frozen stats>, "sharding": <SHARDING_SCHEMA>}`` — every per-shard
    dict and the aggregate must each conform to the frozen
    single-volume schema.
    """
    problems: List[str] = []
    per_shard = stats.get("shards")
    if not isinstance(per_shard, dict) or not per_shard:
        problems.append("shards: expected a non-empty dict")
    else:
        for index, entry in per_shard.items():
            problems += [
                f"shards.{index}.{problem}"
                for problem in validate_stats(entry)
            ]
    if "aggregate" not in stats:
        problems.append("aggregate: missing")
    else:
        problems += [
            f"aggregate.{problem}"
            for problem in validate_stats(stats["aggregate"])
        ]
    if "sharding" not in stats:
        problems.append("sharding: missing")
    else:
        sharding: List[str] = []
        _validate(SHARDING_SCHEMA, stats["sharding"], "sharding", sharding)
        problems += sharding
    for key in stats:
        if key not in ("shards", "aggregate", "sharding"):
            problems.append(f"{key}: not in the sharded stats shape")
    return problems


def validate_any_stats(stats: dict) -> List[str]:
    """Validate either stats shape, dispatching on structure."""
    if is_sharded_stats(stats):
        return validate_sharded_stats(stats)
    return validate_stats(stats)


def validate_frontend_stats(stats: dict) -> List[str]:
    """Problems with a front-end ``stats()`` dict (either lane
    implementation) against :data:`FRONTEND_SCHEMA`."""
    problems: List[str] = []
    _validate(FRONTEND_SCHEMA, stats, "", problems)
    return problems


def schema_paths() -> List[str]:
    """Every declared key path, dotted, sorted (``ops.*`` style for
    open groups) — the surface the snapshot test freezes."""

    def walk(schema: dict, prefix: str) -> Iterator[str]:
        for key, expected in schema.items():
            where = f"{prefix}.{key}" if prefix else key
            if isinstance(expected, dict):
                yield from walk(expected, where)
            else:
                yield f"{where}:{expected}"

    return sorted(walk(STATS_SCHEMA, ""))


def validate_artifact(payload: dict) -> List[str]:
    """Problems with a harness metrics artifact (or bare stats dict).

    Artifacts look like ``{"experiment": ..., "variants": {label:
    {"stats": ..., "metrics": ...}}}``; anything else is validated as
    a bare ``stats()`` dict.  Each stats entry may be a single-volume
    dict (the frozen schema) or a sharded-volume dict (per-shard +
    aggregate + sharding), dispatched on shape.  A variant may also
    carry a ``"frontend"`` entry — a front-end ``stats()`` dict,
    validated against :data:`FRONTEND_SCHEMA`.
    """
    problems: List[str] = []
    if "variants" in payload:
        variants = payload["variants"]
        if not isinstance(variants, dict) or not variants:
            return ["variants: expected a non-empty dict"]
        for label, entry in variants.items():
            if not isinstance(entry, dict) or "stats" not in entry:
                problems.append(f"variants.{label}: missing 'stats'")
                continue
            problems += [
                f"variants.{label}.stats: {problem}"
                for problem in validate_any_stats(entry["stats"])
            ]
            if "frontend" in entry:
                problems += [
                    f"variants.{label}.frontend: {problem}"
                    for problem in validate_frontend_stats(
                        entry["frontend"]
                    )
                ]
    else:
        problems += validate_any_stats(payload)
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.schema FILE...", file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        problems = validate_artifact(payload)
        if problems:
            failed = True
            print(f"{path}: {len(problems)} schema problem(s)")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
