"""The asyncio lane implementation (``lane_impl="async"``).

One event loop, running on a dedicated thread, multiplexes every
lane.  An admitted client costs a queue slot and (once dispatched) a
parked coroutine — never a thread — so a single front end holds
thousands of concurrent open-loop clients where the thread
implementation would need a thread per in-flight request.

The loop/handoff contract (see ``docs/CONCURRENCY.md``):

* **The loop never blocks.**  Lock waits park on
  :meth:`~repro.txn.locks.LockManager.acquire_async` futures; retry
  backoff is ``asyncio.sleep``; admission from coroutine clients
  polls with ``asyncio.sleep`` (same ``admission_poll_s`` contract as
  the thread implementation's timed condition waits).
* **Every logical-disk call crosses to a thread.**  The LLD is
  synchronous and internally locked, so async transaction bodies hand
  each LD operation to the *storage pool*
  (:class:`~concurrent.futures.ThreadPoolExecutor`); if a cleaner or
  scrubber pass holds the volume's lock for milliseconds, only those
  pool threads wait while the loop keeps admitting and retiring other
  clients.
* **Sync bodies get their own pool.**  A plain (non-coroutine)
  transaction body runs as one ``run_transaction`` call on the
  *sync-body pool*, sized like the thread implementation's worker
  complement.  The pools are separate on purpose: a sync body blocked
  in a lock wait occupies a sync-body thread, and must never starve
  the storage handoff that the async transaction holding that lock
  needs in order to finish and release it.

Scheduling inside the loop mirrors the thread lanes exactly: one
dispatcher coroutine per shard lane serves per-tenant FIFOs
round-robin, bounded by ``async_txns_per_lane`` concurrently
*executing* transactions per lane (admitted clients beyond that wait
queued, costing nothing).  Admission control, fairness accounting,
latency decomposition and the stats schema all live in the shared
:class:`~repro.frontend.scheduler._FrontEndBase`.
"""

from __future__ import annotations

import asyncio
import functools
import inspect
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Deque, Dict, Optional

from repro.errors import TransactionAborted
from repro.frontend.scheduler import (
    FrontendConfig,
    Request,
    _FrontEndBase,
)
from repro.obs import MetricsRegistry
from repro.txn.asynctxn import run_transaction_async
from repro.txn.transactions import run_transaction


def _is_async_body(body: Callable) -> bool:
    """Whether a request body is a coroutine function (seen through
    ``functools.partial`` wrapping)."""
    fn = body
    while isinstance(fn, functools.partial):
        fn = fn.func
    return inspect.iscoroutinefunction(fn)


class _AsyncLane:
    """One shard's queue complex, confined to the event loop.

    Same shape as the threaded ``_Lane`` — per-tenant FIFOs plus a
    round-robin ring — but with no lock: every touch happens on the
    loop thread.  ``event`` wakes the lane's dispatcher; ``sem``
    bounds concurrently executing transactions.
    """

    def __init__(self, index: int, txn_slots: int) -> None:
        self.index = index
        self.queues: Dict[str, Deque[Request]] = {}
        self.ring: Deque[str] = deque()
        self.stopped = False
        self.event = asyncio.Event()
        self.sem = asyncio.Semaphore(txn_slots)

    def push(self, request: Request) -> None:
        queue = self.queues.get(request.tenant)
        if queue is None:
            queue = self.queues[request.tenant] = deque()
        if not queue:
            self.ring.append(request.tenant)
        queue.append(request)
        self.event.set()

    def pop_nowait(self) -> Optional[Request]:
        if not self.ring:
            return None
        tenant = self.ring.popleft()
        queue = self.queues[tenant]
        request = queue.popleft()
        if queue:
            self.ring.append(tenant)
        return request


class AsyncFrontEnd(_FrontEndBase):
    """The event-loop scheduler (``lane_impl="async"``).

    Same API, admission policy and stats schema as the threaded
    :class:`~repro.frontend.scheduler.FrontEnd`; build either via
    :func:`~repro.frontend.scheduler.make_frontend`.  Two extras for
    clients living on the loop: :meth:`submit_async` (admission
    without blocking the loop) and :meth:`run_on_loop` (run a client
    coroutine — e.g. an open-loop swarm — on the front end's loop
    from the outside).

    ``submit``/``drain``/``close``/``stats`` stay thread-safe and
    must be called from *outside* the loop thread (``close`` joins
    it).
    """

    def __init__(
        self,
        ld,
        config: Optional[FrontendConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if config is None:
            config = FrontendConfig(lane_impl="async")
        super().__init__(ld, config, registry)
        if self.config.lane_impl != "async":
            raise ValueError(
                "AsyncFrontEnd is the async lane implementation; build "
                f"lane_impl={self.config.lane_impl!r} via make_frontend()"
            )
        #: (lane, tenant) -> queued-not-yet-started count, guarded by
        #: ``self._admit`` (admission must see it atomically).
        self._queued: Dict[tuple, int] = {}
        baseline = self.n_lanes * self.config.workers_per_lane
        self._storage_pool = ThreadPoolExecutor(
            max_workers=self.config.storage_threads or baseline,
            thread_name_prefix="frontend-ldio",
        )
        self._syncbody_pool = ThreadPoolExecutor(
            max_workers=baseline,
            thread_name_prefix="frontend-syncbody",
        )
        self._loop = asyncio.new_event_loop()
        self._lanes = [
            _AsyncLane(i, self.config.async_txns_per_lane)
            for i in range(self.n_lanes)
        ]
        self._thread = threading.Thread(
            target=self._loop_main,
            name="frontend-async-loop",
            daemon=True,
        )
        self._thread.start()
        self._dispatchers = [
            asyncio.run_coroutine_threadsafe(
                self._dispatch(lane), self._loop
            )
            for lane in self._lanes
        ]

    def _loop_main(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # ------------------------------------------------------------------
    # Admission plumbing (base class hooks)
    # ------------------------------------------------------------------

    def _queued_for(self, tenant: str, lane_index: int) -> int:
        return self._queued.get((lane_index, tenant), 0)

    def _admit_locked(self, tenant, body, lane_index) -> Request:
        # The queued count rises at admission (not at enqueue) so
        # concurrent submitters cannot overshoot max_tenant_queue in
        # the gap before the loop picks the push up.
        request = super()._admit_locked(tenant, body, lane_index)
        key = (lane_index, tenant)
        self._queued[key] = self._queued.get(key, 0) + 1
        return request

    def _begin_request(self, request: Request) -> None:
        with self._admit:
            key = (request.shard, request.tenant)
            left = self._queued.get(key, 0) - 1
            if left > 0:
                self._queued[key] = left
            else:
                self._queued.pop(key, None)
        super()._begin_request(request)

    def _enqueue(self, request: Request) -> None:
        self._loop.call_soon_threadsafe(self._lane_push, request)

    def _lane_push(self, request: Request) -> None:
        """Loop-side enqueue: attach the coroutine-waiter event and
        hand the request to its lane."""
        request._aevent = asyncio.Event()
        self._lanes[request.shard].push(request)

    async def submit_async(
        self,
        body: Callable,
        tenant: str = "default",
        shard: Optional[int] = None,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> Request:
        """Coroutine twin of :meth:`submit`, for clients on the loop.

        Identical admission policy; a saturated front end makes the
        caller ``await asyncio.sleep(admission_poll_s)`` between
        re-samples instead of blocking a thread.  Await the returned
        handle's :meth:`~repro.frontend.scheduler.Request.wait_async`
        for the outcome.
        """
        lane_index = self._route(tenant, shard)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._admit:
                if self._admissible(tenant, lane_index):
                    request = self._admit_locked(tenant, body, lane_index)
                    break
                if not wait:
                    raise self._shed(
                        f"front end saturated ({self._inflight} in flight)"
                    )
            if deadline is not None and time.monotonic() >= deadline:
                raise self._shed("admission timed out")
            await asyncio.sleep(self.config.admission_poll_s)
        self._c_admitted.inc()
        self._lane_push(request)
        return request

    def run_on_loop(self, coro):
        """Run a client coroutine on the front end's loop; returns a
        :class:`concurrent.futures.Future` for its result.  This is
        how an external driver (the open-loop swarm, a test) gets its
        clients onto the loop that owns the lanes."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    async def _dispatch(self, lane: _AsyncLane) -> None:
        """One lane's dispatcher: pop round-robin, spawn a transaction
        task per request, never more than the lane's slot budget."""
        while True:
            request = lane.pop_nowait()
            if request is None:
                if lane.stopped:
                    return
                lane.event.clear()
                await lane.event.wait()
                continue
            await lane.sem.acquire()
            self._loop.create_task(self._run(request, lane))

    async def _run(self, request: Request, lane: _AsyncLane) -> None:
        try:
            self._begin_request(request)
            try:
                if _is_async_body(request.body):
                    request.result = await run_transaction_async(
                        self.manager,
                        request.body,
                        max_attempts=self.config.max_attempts,
                        durable=self.config.durable,
                        retry_backoff_s=self.config.retry_backoff_s,
                        executor=self._storage_pool,
                        breakdown=request.breakdown,
                    )
                else:
                    # A sync body is one opaque run_transaction call;
                    # it runs (and lock-waits) on the sync-body pool.
                    request.result = await self._loop.run_in_executor(
                        self._syncbody_pool,
                        functools.partial(
                            run_transaction,
                            self.manager,
                            request.body,
                            max_attempts=self.config.max_attempts,
                            durable=self.config.durable,
                            retry_backoff_s=self.config.retry_backoff_s,
                            breakdown=request.breakdown,
                        ),
                    )
                request.state = "done"
            except TransactionAborted as exc:
                request.error = exc
                request.state = "gave_up"
            except BaseException as exc:  # noqa: BLE001 — reported
                request.error = exc
                request.state = "failed"
            finally:
                self._finish_request(request)
        finally:
            lane.sem.release()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _worker_count(self) -> int:
        """Execution slots (the async analogue of worker threads)."""
        return self.n_lanes * self.config.async_txns_per_lane

    def close(self, flush: bool = True) -> None:
        """Drain, stop the dispatchers, tear the loop and pools down,
        and (by default) flush the volume.  Call from outside the
        loop thread."""
        if self._closed:
            return
        self.drain()
        self._closed = True

        def _stop_lanes() -> None:
            for lane in self._lanes:
                lane.stopped = True
                lane.event.set()

        self._loop.call_soon_threadsafe(_stop_lanes)
        for dispatcher in self._dispatchers:
            dispatcher.result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()
        self._storage_pool.shutdown(wait=True)
        self._syncbody_pool.shutdown(wait=True)
        if flush:
            self.ld.flush()
