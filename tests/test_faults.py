"""Unit tests for fault injection."""

import pytest

from repro.disk.faults import CrashPlan, FaultInjector, MediaFault, _flip_bits
from repro.errors import DiskCrashedError, MediaError


class TestCrashPlan:
    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            CrashPlan(after_writes=-1)

    def test_zero_budget_crashes_first_write(self):
        injector = FaultInjector(CrashPlan(after_writes=0))
        assert injector.on_write(0, 1000) == 0
        assert injector.crashed


class TestMediaFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MediaFault(0, kind="melted")


class TestFaultInjector:
    def test_no_faults_passthrough(self):
        injector = FaultInjector()
        assert injector.on_write(0, 100) is None
        assert injector.on_read(0, b"abc") == b"abc"

    def test_crash_after_n_writes(self):
        injector = FaultInjector(CrashPlan(after_writes=2))
        assert injector.on_write(0, 100) is None
        assert injector.on_write(1, 100) is None
        assert injector.on_write(2, 100) == 0  # dropped whole
        assert injector.crashed

    def test_torn_write_keeps_prefix(self):
        injector = FaultInjector(CrashPlan(after_writes=0, torn=True, seed=3))
        surviving = injector.on_write(0, 1000)
        assert 1 <= surviving < 1000

    def test_torn_write_deterministic(self):
        a = FaultInjector(CrashPlan(after_writes=0, torn=True, seed=9))
        b = FaultInjector(CrashPlan(after_writes=0, torn=True, seed=9))
        assert a.on_write(0, 4096) == b.on_write(0, 4096)

    def test_io_after_crash_raises(self):
        injector = FaultInjector(CrashPlan(after_writes=0))
        injector.on_write(0, 10)
        with pytest.raises(DiskCrashedError):
            injector.on_write(1, 10)
        with pytest.raises(DiskCrashedError):
            injector.on_read(0, b"x")

    def test_power_cycle_restores_io(self):
        injector = FaultInjector(CrashPlan(after_writes=0))
        injector.on_write(0, 10)
        injector.power_cycle()
        assert injector.on_read(0, b"x") == b"x"
        assert injector.on_write(1, 10) is None  # plan cleared

    def test_unreadable_media_fault(self):
        injector = FaultInjector(media_faults={3: MediaFault(3, "unreadable")})
        with pytest.raises(MediaError):
            injector.on_read(3, b"data")
        assert injector.on_read(4, b"data") == b"data"

    def test_corrupt_media_fault_flips_bits(self):
        injector = FaultInjector()
        injector.add_media_fault(MediaFault(1, "corrupt"))
        assert injector.on_read(1, b"\x00\xff") == b"\xff\x00"

    def test_clear_media_fault(self):
        injector = FaultInjector()
        injector.add_media_fault(MediaFault(1, "unreadable"))
        injector.clear_media_fault(1)
        assert injector.on_read(1, b"ok") == b"ok"

    def test_flip_bits_involution(self):
        data = bytes(range(256))
        assert _flip_bits(_flip_bits(data)) == data
