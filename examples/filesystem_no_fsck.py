#!/usr/bin/env python3
"""MinixLLD: a file system that needs no fsck (Section 5.1).

Every file/directory creation and every deletion runs inside its own
atomic recovery unit, so the i-node and the directory data can never
disagree after a crash.  This example crashes the machine in the
middle of a metadata-heavy workload, recovers, and runs a (redundant)
consistency checker to prove the point — then shows that the same
workload *without* ARUs can be left inconsistent.

Run:  python examples/filesystem_no_fsck.py
"""

from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskCrashedError
from repro.fs import MinixFS, fsck
from repro.lld.lld import LLD
from repro.lld.recovery import recover


def build(crash_after_writes, use_arus):
    geometry = DiskGeometry.small(num_segments=128)
    injector = FaultInjector(CrashPlan(after_writes=crash_after_writes))
    disk = SimulatedDisk(geometry, injector=injector)
    mode = "concurrent" if use_arus else "sequential"
    ld = LLD(disk, aru_mode=mode, checkpoint_slot_segments=2)
    return disk, MinixFS.mkfs(ld, n_inodes=512, use_arus=use_arus)


def metadata_storm(fs) -> None:
    """Creations, writes, deletions and renames with *no* explicit
    syncs: data reaches the disk only as segments fill, so meta-data
    update pairs regularly straddle segment boundaries — the exposure
    ARUs exist to close."""
    block = fs.block_size
    for index in range(10_000):
        path = f"/file{index}"
        fs.create(path)
        fs.write_file(path, b"d" * ((index % 7 + 1) * block))
        if index % 3 == 2 and fs.exists(f"/file{index - 2}"):
            fs.unlink(f"/file{index - 2}")
        if index % 11 == 10:
            fs.mkdir(f"/dir{index}")
            fs.rename(path, f"/dir{index}/moved")


def crash_and_check(use_arus, crash_after) -> bool:
    """Returns True when the recovered file system is consistent."""
    disk, fs = build(crash_after, use_arus)
    try:
        metadata_storm(fs)
    except DiskCrashedError:
        pass
    mode = "concurrent" if use_arus else "sequential"
    ld, _report = recover(
        disk.power_cycle(), aru_mode=mode, checkpoint_slot_segments=2
    )
    mounted = MinixFS.mount(ld, use_arus=use_arus)
    report = fsck(mounted)
    label = "with ARUs" if use_arus else "without ARUs"
    verdict = "CONSISTENT" if report.clean else "INCONSISTENT"
    print(f"  crash after {crash_after:3d} writes, {label:12s}: {verdict}")
    for problem in report.problems[:3]:
        print(f"      {problem}")
    return report.clean


def main() -> None:
    print("With ARUs, every crash point leaves a consistent file system:")
    aru_results = [
        crash_and_check(use_arus=True, crash_after=n)
        for n in range(2, 62, 6)
    ]
    assert all(aru_results)

    print("\nWithout ARUs, meta-data updates can straddle a segment")
    print("boundary, and some crash points corrupt the file system:")
    plain_results = [
        crash_and_check(use_arus=False, crash_after=n)
        for n in range(2, 62, 2)
    ]
    broken = plain_results.count(False)
    print(f"\n=> {broken} of {len(plain_results)} crash points left the "
          "no-ARU file system needing repair;")
    print("   the ARU file system survived every one — no fsck required.")


if __name__ == "__main__":
    main()
