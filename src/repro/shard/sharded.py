"""``ShardedLLD``: one logical disk striped over N LLD volumes.

Identifier striping
-------------------

Global and per-shard ("local") identifiers are related by a fixed
bijection for both blocks and lists::

    shard_of(g)  = (g - 1) %  N
    to_local(g)  = (g - 1) // N + 1
    to_global(l, s) = (l - 1) * N + s + 1

Each shard's LLD allocates its local identifiers densely from 1, so
global identifiers are unique by construction (a global id is
congruent to its shard modulo N).  New lists are placed round-robin
starting at shard 0 — which keeps the well-known bootstrap list ids
(1 and 2, used by :class:`~repro.fs.filesystem.MinixFS`) stable for
any shard count — and a block always lives on its list's shard, so
every list (and therefore every predecessor search, link record and
cleaner decision) is wholly local to one volume.

Replication
-----------

With :class:`~repro.shard.config.ArrayConfig` ``replication_factor``
k > 1, every entity homed on shard *s* is mirrored on the next k-1
ring peers ``(s + 1) % N .. (s + k - 1) % N``.  The mirror of global
entity *g* is a perfectly deterministic local entity on each peer:
its forced local identifier is ``SYSTEM_ID_BASE + g``, so no replica
map or manifest is ever stored — placement is pure arithmetic, and
the system id range (:data:`~repro.ld.types.SYSTEM_ID_BASE`) never
collides with, or perturbs the striping of, client-visible ids.

Mirror operations ride the *same* ARU as the home operation: a
mutating ARU on a replicated array always touches at least two
shards, so it always commits through the two-phase protocol below,
and the PREPARE flush that makes the home effects durable makes the
mirror effects durable in the same step.  That is the whole
correctness argument for "no committed ARU is lost while at most
k-1 shards fail": every committed effect is durable on k volumes
before the commit is acknowledged.  Non-ARU (simple) operations are
mirrored too, but with ordinary single-volume durability (the next
flush) — replication is synchronous in order, asynchronous in
durability, exactly like the home copy itself.

Whole-shard loss (:class:`~repro.errors.ShardLostError`, injected
with :class:`~repro.disk.faults.ShardLoss` or forced with
:meth:`ShardedLLD.lose_shard`) fails the shard over to its replicas:
reads are served from mirrors (counted as ``degraded_reads``),
writes update the surviving mirrors only, and allocations homed on
the dead shard draw local ids from a snapshot of its counters so
global ids stay dense and unique.  :meth:`ShardedLLD.start_repair` /
:meth:`ShardedLLD.repair_step` rebuild the lost member onto fresh
media from the newest *committed* peer copies — repair never copies
uncommitted data — paced by ``ArrayConfig.repair_batch_ops`` so it
runs in the background; lists mutated while their copy is in flight
are re-copied during the final quiescent step, so repair converges.

Cross-shard atomicity
---------------------

An ARU that touched a single shard commits through the ordinary
:meth:`~repro.lld.lld.LLD.end_aru` — nothing new, and nothing extra
durable.  An ARU that touched several shards commits with a
two-phase, presumed-abort protocol whose phases are:

1. **Prepare.** Every participant merges the ARU's shadow state and
   emits a PREPARE record carrying a fresh coordinator transaction id
   (xid); every participant is then flushed, so all effects and
   PREPAREs are durable.
2. **Decide.** Each decision shard (shard 0 for an unreplicated
   array; shards ``0 .. min(k, N) - 1`` with replication factor k)
   logs a DECIDE record for the xid and is flushed, in ascending
   shard order.  The first durable DECIDE is the commit point:
   recovery unions the decided sets of every surviving decision
   shard, so the decision survives the loss of any k-1 shards.
3. **Release.** Each participant's parked state is released
   (:meth:`~repro.lld.lld.LLD.finish_prepared`) and folds to
   persistent.

A crash strictly before any DECIDE record is durable leaves every
shard's PREPARE undecided — recovery discards them all; a crash at or
after it rolls every shard forward — all-or-nothing at every torn
write point (``tests/test_shard.py`` sweeps them exhaustively).

Time and failures
-----------------

Each shard owns a private :class:`~repro.disk.clock.SimClock` (an
array of disks, each charging its own latencies); the volume manager
advances a shard's clock to the global maximum before routing an
operation to it, modelling one host serializing requests across the
array.  :func:`build_sharded` shares a single
:class:`~repro.disk.faults.FaultInjector` across all shard disks, so
a fault plan's ``after_writes`` counts one global write index over
the whole array and a power failure halts every shard at once.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.disk.clock import CostModel
from repro.disk.faults import FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.disk.timing import DiskModel, HP_C3010
from repro.errors import (
    BadARUError,
    BadBlockError,
    BadListError,
    ConcurrencyError,
    ShardLostError,
    UnrecoverableBlockError,
)
from repro.ld.interface import LogicalDisk
from repro.ld.types import (
    ARUId,
    BlockId,
    FIRST,
    ListId,
    Predecessor,
    SYSTEM_ID_BASE,
)
from repro.lld.config import LLDConfig
from repro.lld.lld import LLD
from repro.shard.config import ArrayConfig


def shard_of(global_id: int, n: int) -> int:
    """The shard a global block/list identifier lives on."""
    return (int(global_id) - 1) % n


def to_local(global_id: int, n: int) -> int:
    """A global identifier's local identifier on its shard."""
    return (int(global_id) - 1) // n + 1


def to_global(local_id: int, shard: int, n: int) -> int:
    """The global identifier of shard-local ``local_id``."""
    return (int(local_id) - 1) * n + shard + 1


def mirror_id(global_id: int) -> int:
    """The forced local identifier of ``global_id``'s mirror on any
    peer shard: deterministic, so replica placement needs no map."""
    return SYSTEM_ID_BASE + int(global_id)


class _MaxClock:
    """Read-only clock view over the shard array: 'now' is the
    furthest live shard, matching how a host would observe the
    array."""

    def __init__(self, shards: Sequence[Optional[LLD]]) -> None:
        self._shards = shards

    @property
    def now_us(self) -> float:
        return max(
            shard.clock.now_us for shard in self._shards if shard is not None
        )

    @property
    def now_s(self) -> float:
        return self.now_us / 1e6


class _RepairJob:
    """Incremental rebuild of one lost shard onto fresh media.

    The job copies, list by list, (a) the lost shard's *home* lists
    from their surviving mirrors and (b) the mirror lists the shard
    held for its ring predecessors, from the live home copies.  Every
    read uses the committed view (``aru=None``): repair never copies
    uncommitted data.  Lists mutated while the job is in flight are
    recorded in ``dirty`` and re-copied during the final step, which
    runs at a quiescent moment (no active ARUs) so the committed view
    it sees is final.  A crash mid-repair simply discards the
    half-built volume; repair restarts from scratch and is idempotent.
    """

    def __init__(self, array: "ShardedLLD", shard: int) -> None:
        self.array = array
        self.shard = shard
        self.dirty: Set[int] = set()
        self.lists_copied = 0
        self.blocks_copied = 0
        template = array.shards[array._first_alive()]
        injector = template.disk.injector
        injector.replace_shard(shard)
        disk = SimulatedDisk(
            template.geometry,
            model=template.disk.timer.model,
            injector=injector,
            shard_index=shard,
        )
        self.lld = LLD(
            disk, cost_model=template.meter.model, config=template.config
        )
        self.queue: List[int] = self._plan()

    def _plan(self) -> List[int]:
        """Every list whose replica set includes the lost shard, home
        lists first (so degraded data regains redundancy earliest)."""
        arr = self.array
        s = self.shard
        home_lists: Set[int] = set()
        for p in arr._alive_peers(s):
            home_lists |= arr._mirror_lists_on(p, s)
        mirror_lists: Set[int] = set()
        for h in range(arr.n):
            if h == s or not arr._alive(h):
                continue
            if s in arr._peers(h):
                mirror_lists |= arr._user_lists_on(h)
        return sorted(home_lists) + sorted(mirror_lists)

    def _sync(self) -> None:
        """Advance the under-repair volume's clock to array 'now'."""
        target = self.array.clock.now_us
        if target > self.lld.clock.now_us:
            self.lld.clock.advance_us(target - self.lld.clock.now_us)

    def _force_block(
        self, list_id: ListId, predecessor: Predecessor, block_id: int
    ) -> None:
        """Admit a block under a forced id, clearing any stale
        same-id leftover first (re-copies and diverged mirrors)."""
        existing = self.lld._view_block(BlockId(block_id), None)
        if existing is not None and existing.allocated:
            self.lld.delete_block(BlockId(block_id))
        self.lld.new_block(
            list_id, predecessor=predecessor, block_id=BlockId(block_id)
        )

    def copy_list(self, list_gid: int) -> int:
        """Copy one list (home or mirror kind); returns ops spent."""
        arr = self.array
        home = shard_of(list_gid, arr.n)
        self._sync()
        if home == self.shard:
            return self._copy_home(list_gid)
        if self.shard in arr._peers(home):
            return self._copy_mirror(list_gid, home)
        return 1

    def _drop_target_list(self, local: ListId) -> None:
        view = self.lld._view_list(local, None)
        if view is not None and view.allocated:
            self.lld.delete_list(local)

    def _copy_home(self, list_gid: int) -> int:
        """Rebuild one of the lost shard's own lists from a mirror."""
        arr = self.array
        local = ListId(to_local(list_gid, arr.n))
        self._drop_target_list(local)
        source = None
        for p in arr._alive_peers(self.shard):
            peer = arr.shards[p]
            peer._restore_list(ListId(mirror_id(list_gid)))
            view = peer._view_list(ListId(mirror_id(list_gid)), None)
            if view is not None and view.allocated:
                source = p
                break
        if source is None:
            return 1  # deleted (or no surviving copy): nothing to admit
        peer = arr.shards[source]
        arr._sync_clock(source)
        members = peer.list_blocks(ListId(mirror_id(list_gid)))
        self.lld.new_list(list_id=local)
        ops = 1
        prev: Predecessor = FIRST
        for member in members:
            gid = int(member) - SYSTEM_ID_BASE
            local_bid = to_local(gid, arr.n)
            self._force_block(local, prev, local_bid)
            self.lld.write(BlockId(local_bid), peer.read(BlockId(int(member))))
            prev = BlockId(local_bid)
            ops += 2
        self.lists_copied += 1
        self.blocks_copied += len(members)
        arr._lists_healed += 1
        arr._blocks_healed += len(members)
        return ops

    def _copy_mirror(self, list_gid: int, home: int) -> int:
        """Rebuild a mirror the lost shard held for a live home."""
        arr = self.array
        target_list = ListId(mirror_id(list_gid))
        self._drop_target_list(target_list)
        if not arr._alive(home):
            return 1  # both copies gone: beyond the failure budget
        home_lld = arr.shards[home]
        home_local = ListId(to_local(list_gid, arr.n))
        home_lld._restore_list(home_local)
        view = home_lld._view_list(home_local, None)
        if view is None or not view.allocated:
            return 1  # deleted while queued
        arr._sync_clock(home)
        members = home_lld.list_blocks(home_local)
        self.lld.new_list(list_id=target_list)
        ops = 1
        prev: Predecessor = FIRST
        for member in members:
            gid = to_global(int(member), home, arr.n)
            self._force_block(target_list, prev, mirror_id(gid))
            self.lld.write(BlockId(mirror_id(gid)), home_lld.read(member))
            prev = BlockId(mirror_id(gid))
            ops += 2
        self.lists_copied += 1
        self.blocks_copied += len(members)
        arr._lists_healed += 1
        arr._blocks_healed += len(members)
        return ops


class ShardedLLD(LogicalDisk):
    """N independent LLD volumes behind one LogicalDisk interface.

    Args:
        shards: The member volumes, in shard order (``None`` entries
            are lost members of a degraded array).  Shard 0 is the
            primary coordinator: its log (and checkpoints) carry the
            DECIDE records that make cross-shard commits atomic;
            with replication, shards ``1 .. k-1`` carry copies.
        array_config: :class:`~repro.shard.config.ArrayConfig`
            (replication factor, placement, repair pacing); ``None``
            means the unreplicated default.
        dead: shard index -> reason for members lost before assembly
            (recovery passes this for shards whose media is gone).
        dead_counters: shard index -> ``[next_block_id,
            next_list_id]`` allocation counters of a dead member, if
            known; derived from the surviving mirrors otherwise.

    Build fresh arrays with :func:`build_sharded`; reassemble crashed
    ones with :func:`repro.recover.recover` (or the legacy
    :func:`repro.shard.recovery.recover_sharded`).
    """

    def __init__(
        self,
        shards: Sequence[Optional[LLD]],
        array_config: Optional[ArrayConfig] = None,
        dead: Optional[Dict[int, str]] = None,
        dead_counters: Optional[Dict[int, Sequence[int]]] = None,
    ) -> None:
        if not shards:
            raise ValueError("a sharded volume needs at least one shard")
        self.shards: List[Optional[LLD]] = list(shards)
        self.n = len(self.shards)
        self.config = ArrayConfig.from_kwargs(array_config)
        self.rf = self.config.replication_factor
        if self.rf > self.n:
            raise ValueError(
                f"replication_factor {self.rf} needs at least {self.rf} "
                f"shards, got {self.n}"
            )
        self._dead: Dict[int, str] = {
            int(k): str(v) for k, v in (dead or {}).items()
        }
        for index, shard in enumerate(self.shards):
            if shard is None and index not in self._dead:
                self._dead[index] = "missing"
            elif shard is not None and index in self._dead:
                self.shards[index] = None
        if len(self._dead) >= self.n:
            raise ValueError("every shard of the array is lost")
        self.geometry = self.shards[self._first_alive()].geometry
        self.clock = _MaxClock(self.shards)
        self._lock = threading.RLock()
        #: global ARU id -> {shard index: local ARU id} for every
        #: shard the ARU has touched so far (participants).
        self._arus: Dict[int, Dict[int, ARUId]] = {}
        self._next_aru = 1
        #: Coordinator transaction ids are durable state (they appear
        #: in PREPARE/DECIDE records); recovery restores the counter.
        self._next_xid = 1
        #: Allocation counters of dead shards, so ids handed out
        #: while a member is down stay dense and are never reused.
        self._dead_counters: Dict[int, List[int]] = {
            int(k): [int(v[0]), int(v[1])]
            for k, v in (dead_counters or {}).items()
        }
        for index in self._dead:
            if index not in self._dead_counters:
                self._dead_counters[index] = self._derive_dead_counters(index)
        # Round-robin pointer for new lists; derived from the shards'
        # allocation counters so a reassembled array keeps striping
        # where the crashed one stopped.
        self._next_shard = (
            sum(
                (
                    shard._next_list_id
                    if shard is not None
                    else self._dead_counters[index][1]
                )
                - 1
                for index, shard in enumerate(self.shards)
            )
            % self.n
        )
        self._commits_single = 0
        self._commits_cross = 0
        self._degraded_reads = 0
        self._repairs_completed = 0
        self._blocks_healed = 0
        self._lists_healed = 0
        self._replica_skips = 0
        self._repair: Optional[_RepairJob] = None
        self._resync_pending = False
        self._update_plain()

    # ------------------------------------------------------------------
    # Clock and routing helpers
    # ------------------------------------------------------------------

    def _update_plain(self) -> None:
        # The unreplicated, fully-live array takes the historical
        # single-copy fast paths untouched.
        self._plain = self.rf == 1 and not self._dead

    def _first_alive(self) -> int:
        for index, shard in enumerate(self.shards):
            if shard is not None:
                return index
        raise ShardLostError(0, "every shard of the array is lost")

    def _alive(self, shard_index: int) -> bool:
        return self.shards[shard_index] is not None

    def _peers(self, shard_index: int) -> List[int]:
        """Ring peers holding mirrors of ``shard_index``'s entities."""
        return [(shard_index + i) % self.n for i in range(1, self.rf)]

    def _alive_peers(self, shard_index: int) -> List[int]:
        return [p for p in self._peers(shard_index) if self._alive(p)]

    def _decision_shards(self) -> List[int]:
        """Shards carrying DECIDE records: 0 plus, with replication,
        enough ring successors to survive k-1 losses."""
        return list(range(min(max(self.rf, 1), self.n)))

    def _sync_clock(self, shard_index: int) -> None:
        """Advance one shard's clock to the array-wide 'now' before
        routing an operation to it (the host serializes requests)."""
        shard = self.shards[shard_index]
        if shard is None:
            return
        target = self.clock.now_us
        clock = shard.clock
        if target > clock.now_us:
            clock.advance_us(target - clock.now_us)

    def _shard_for_list(self, list_id: ListId) -> int:
        return shard_of(list_id, self.n)

    def _local_aru(
        self, aru: Optional[ARUId], shard_index: int, create: bool
    ) -> Optional[ARUId]:
        """Map a global ARU to its local ARU on one shard.

        ``create=True`` (mutating operations) begins a local ARU on
        first touch, enrolling the shard as a participant;
        ``create=False`` (reads) returns the local ARU only if the
        shard is already a participant — the ARU has no shadow state
        there otherwise.
        """
        if aru is None:
            return None
        participants = self._arus.get(int(aru))
        if participants is None:
            raise BadARUError(int(aru))
        local = participants.get(shard_index)
        if local is None and create:
            local = self.shards[shard_index].begin_aru()
            participants[shard_index] = local
        return local

    def _mark_shard_lost(self, shard_index: int, reason: str = "lost") -> None:
        """Fail a member over to its replicas: snapshot its
        allocation counters (ids handed out must never be reused),
        drop the object and record the death."""
        if shard_index in self._dead:
            return
        shard = self.shards[shard_index]
        if shard is not None:
            self._dead_counters[shard_index] = [
                int(shard._next_block_id),
                int(shard._next_list_id),
            ]
            try:
                shard._mark_dead("shard lost")
            except Exception:
                pass
        self.shards[shard_index] = None
        self._dead[shard_index] = reason
        self._update_plain()

    def _take_dead_id(self, shard_index: int, kind: str) -> int:
        """Next local id for an allocation homed on a dead shard."""
        counters = self._dead_counters[shard_index]
        slot = 0 if kind == "block" else 1
        value = counters[slot]
        counters[slot] = value + 1
        return value

    def _derive_dead_counters(self, shard_index: int) -> List[int]:
        """Best-effort allocation counters for a member that was
        already lost at assembly: one past the largest id any
        surviving mirror names.  (Exact when the largest-id entity
        still exists; a real array would persist member metadata.)
        """
        max_block = 0
        max_list = 0
        for p in self._peers(shard_index):
            shard = self.shards[p]
            if shard is None:
                continue
            block_ids = {k for k, _ in shard.bmap.items()}
            list_ids = {k for k, _ in shard.ltable.items()}
            if shard._restore is not None:
                block_ids.update(shard._restore.block_index)
                list_ids.update(shard._restore.list_index)
            for k in block_ids:
                if k < SYSTEM_ID_BASE:
                    continue
                gid = k - SYSTEM_ID_BASE
                if shard_of(gid, self.n) == shard_index:
                    max_block = max(max_block, to_local(gid, self.n))
            for k in list_ids:
                if k < SYSTEM_ID_BASE:
                    continue
                gid = k - SYSTEM_ID_BASE
                if shard_of(gid, self.n) == shard_index:
                    max_list = max(max_list, to_local(gid, self.n))
        return [max_block + 1, max_list + 1]

    # ------------------------------------------------------------------
    # Table enumeration helpers (restore-aware: a shard mid instant
    # restore names pending ids in its controller's indexes)
    # ------------------------------------------------------------------

    def _list_ids_on(self, shard_index: int) -> Set[int]:
        shard = self.shards[shard_index]
        ids = {int(k) for k, _ in shard.ltable.items()}
        if shard._restore is not None:
            ids.update(int(k) for k in shard._restore.list_index)
        return ids

    def _user_lists_on(self, shard_index: int) -> Set[int]:
        """Global ids of the client-visible lists homed on a shard."""
        out: Set[int] = set()
        shard = self.shards[shard_index]
        for local in self._list_ids_on(shard_index):
            if local >= SYSTEM_ID_BASE:
                continue
            shard._restore_list(ListId(local))
            view = shard._view_list(ListId(local), None)
            if view is not None and view.allocated:
                out.add(to_global(local, shard_index, self.n))
        return out

    def _mirror_lists_on(self, peer: int, home: int) -> Set[int]:
        """Global ids of ``home``'s lists that ``peer`` mirrors."""
        out: Set[int] = set()
        shard = self.shards[peer]
        for local in self._list_ids_on(peer):
            if local < SYSTEM_ID_BASE:
                continue
            gid = local - SYSTEM_ID_BASE
            if shard_of(gid, self.n) != home:
                continue
            shard._restore_list(ListId(local))
            view = shard._view_list(ListId(local), None)
            if view is not None and view.allocated:
                out.add(gid)
        return out

    def _list_of_block(self, gid: int) -> Optional[int]:
        """The global list id a block belongs to (committed view),
        resolved from the home copy or, degraded, from a mirror."""
        home = shard_of(gid, self.n)
        if self._alive(home):
            shard = self.shards[home]
            local = BlockId(to_local(gid, self.n))
            shard._restore_block(local)
            view = shard._view_block(local, None)
            if view is not None and view.allocated and view.list_id:
                return to_global(int(view.list_id), home, self.n)
            return None
        for p in self._alive_peers(home):
            shard = self.shards[p]
            local = BlockId(mirror_id(gid))
            shard._restore_block(local)
            view = shard._view_block(local, None)
            if view is not None and view.allocated and view.list_id:
                return int(view.list_id) - SYSTEM_ID_BASE
        return None

    def _note_dirty_list(self, list_gid: int) -> None:
        """Record that a list's replica set changed while its copy is
        (or may be) in flight on the repair target."""
        job = self._repair
        if job is None:
            return
        home = shard_of(list_gid, self.n)
        if job.shard == home or job.shard in self._peers(home):
            job.dirty.add(list_gid)

    def _note_dirty_block(self, gid: int) -> None:
        job = self._repair
        if job is None:
            return
        home = shard_of(gid, self.n)
        if job.shard != home and job.shard not in self._peers(home):
            return
        list_gid = self._list_of_block(gid)
        if list_gid is not None:
            job.dirty.add(list_gid)

    # ------------------------------------------------------------------
    # ARUs
    # ------------------------------------------------------------------

    def begin_aru(self) -> ARUId:
        with self._lock:
            aru = ARUId(self._next_aru)
            self._next_aru += 1
            self._arus[int(aru)] = {}
            return aru

    def end_aru(self, aru: ARUId) -> None:
        """Commit an ARU across every shard it touched.

        Single-participant ARUs take the local fast path (ordinary
        ``end_aru`` — durable at the next flush, like any single
        volume; on a *replicated* array the lone participant is
        flushed immediately, so an acknowledged commit is always
        durable).  Multi-participant ARUs run the two-phase protocol
        and return *durable*: prepare+flush every participant, log
        and flush the decision on every decision shard, release the
        parked state.  Participants or decision shards lost along the
        way are failed over; the commit succeeds as long as one
        replica of everything (including the decision) survives.
        """
        with self._lock:
            participants = self._arus.get(int(aru))
            if participants is None:
                raise BadARUError(int(aru))
            alive_parts = [
                (s, local)
                for s, local in sorted(participants.items())
                if self._alive(s)
            ]
            if len(alive_parts) <= 1:
                committed = not alive_parts
                for shard_index, local in alive_parts:
                    try:
                        self._sync_clock(shard_index)
                        self.shards[shard_index].end_aru(local)
                        # On a replicated array a lone participant has
                        # no second copy to survive on, so "acked"
                        # must mean durable — flush immediately.  The
                        # unreplicated array keeps the historical
                        # durable-at-next-flush contract.
                        if self.rf > 1:
                            self.shards[shard_index].flush()
                        committed = True
                    except ShardLostError:
                        self._mark_shard_lost(shard_index)
                del self._arus[int(aru)]
                if not committed:
                    raise ShardLostError(
                        min(self._dead),
                        f"ARU {int(aru)}: every participant lost "
                        "before commit",
                    )
                self._commits_single += 1
                return
            xid = self._next_xid
            self._next_xid += 1
            # Phase 1: prepare and flush every participant.  After
            # this loop all the ARU's effects and every PREPARE are
            # durable; none of them is committed.  A participant lost
            # here is dropped — its effects survive on its mirrors.
            prepared: List[Tuple[int, ARUId]] = []
            for shard_index, local in alive_parts:
                if not self._alive(shard_index):
                    continue
                try:
                    self._sync_clock(shard_index)
                    self.shards[shard_index].prepare_commit(local, xid)
                    prepared.append((shard_index, local))
                except ShardLostError:
                    self._mark_shard_lost(shard_index)
            flushed: List[Tuple[int, ARUId]] = []
            for shard_index, local in prepared:
                if not self._alive(shard_index):
                    continue
                try:
                    self._sync_clock(shard_index)
                    self.shards[shard_index].flush()
                    flushed.append((shard_index, local))
                except ShardLostError:
                    self._mark_shard_lost(shard_index)
            if not flushed:
                del self._arus[int(aru)]
                raise ShardLostError(
                    min(self._dead),
                    f"ARU {int(aru)}: every participant lost before commit",
                )
            # Phase 2: the commit point — a durable DECIDE record on
            # each surviving decision shard, ascending order.
            decided = False
            for shard_index in self._decision_shards():
                if not self._alive(shard_index):
                    continue
                try:
                    self._sync_clock(shard_index)
                    self.shards[shard_index].log_decision(xid)
                    self.shards[shard_index].flush()
                    decided = True
                except ShardLostError:
                    self._mark_shard_lost(shard_index)
            if not decided:
                del self._arus[int(aru)]
                raise ShardLostError(
                    min(self._dead),
                    f"xid {xid}: every decision shard lost (presumed abort)",
                )
            # Phase 3: release.  Pure in-memory bookkeeping; a crash
            # from here on changes nothing (recovery rolls forward).
            for shard_index, local in flushed:
                if self._alive(shard_index):
                    self.shards[shard_index].finish_prepared(int(local))
            self._commits_cross += 1
            del self._arus[int(aru)]

    def abort_aru(self, aru: ARUId) -> None:
        with self._lock:
            participants = self._arus.get(int(aru))
            if participants is None:
                raise BadARUError(int(aru))
            for shard_index, local in sorted(participants.items()):
                if not self._alive(shard_index):
                    continue
                try:
                    self._sync_clock(shard_index)
                    self.shards[shard_index].abort_aru(local)
                except ShardLostError:
                    self._mark_shard_lost(shard_index)
            del self._arus[int(aru)]

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------

    def new_block(
        self,
        list_id: ListId,
        predecessor: Predecessor = FIRST,
        aru: Optional[ARUId] = None,
    ) -> BlockId:
        with self._lock:
            list_gid = int(list_id)
            home = self._shard_for_list(list_id)
            local_pred: Predecessor = (
                FIRST
                if predecessor is FIRST
                else BlockId(to_local(predecessor, self.n))
            )
            if self._plain:
                self._sync_clock(home)
                local = self.shards[home].new_block(
                    ListId(to_local(list_gid, self.n)),
                    local_pred,
                    aru=self._local_aru(aru, home, create=True),
                )
                return BlockId(to_global(local, home, self.n))
            gid: Optional[int] = None
            if self._alive(home):
                try:
                    self._sync_clock(home)
                    local = self.shards[home].new_block(
                        ListId(to_local(list_gid, self.n)),
                        local_pred,
                        aru=self._local_aru(aru, home, create=True),
                    )
                    gid = to_global(local, home, self.n)
                except ShardLostError:
                    self._mark_shard_lost(home)
            if gid is None:
                # Home is dead: draw the local id from its counter
                # snapshot so the global id stream stays dense, and
                # let the mirrors validate and record the allocation.
                if not self._alive_peers(home):
                    raise ShardLostError(
                        home, f"list {list_gid}: no surviving replica"
                    )
                gid = to_global(
                    self._take_dead_id(home, "block"), home, self.n
                )
            mirror_pred: Predecessor = (
                FIRST
                if predecessor is FIRST
                else BlockId(mirror_id(int(predecessor)))
            )
            admitted = self._alive(home)
            bad: Optional[Exception] = None
            for p in self._alive_peers(home):
                try:
                    self._sync_clock(p)
                    self.shards[p].new_block(
                        ListId(mirror_id(list_gid)),
                        mirror_pred,
                        aru=self._local_aru(aru, p, create=True),
                        block_id=BlockId(mirror_id(gid)),
                    )
                    admitted = True
                except ShardLostError:
                    self._mark_shard_lost(p)
                except (BadBlockError, BadListError) as exc:
                    bad = exc
                    self._replica_skips += 1
            if not admitted:
                if bad is not None:
                    raise bad
                raise ShardLostError(
                    home, f"list {list_gid}: no surviving replica"
                )
            self._note_dirty_list(list_gid)
            return BlockId(gid)

    def delete_block(
        self, block_id: BlockId, aru: Optional[ARUId] = None
    ) -> None:
        with self._lock:
            gid = int(block_id)
            home = shard_of(gid, self.n)
            if self._plain:
                self._sync_clock(home)
                self.shards[home].delete_block(
                    BlockId(to_local(gid, self.n)),
                    aru=self._local_aru(aru, home, create=True),
                )
                return
            list_gid = self._list_of_block(gid)
            deleted = False
            bad: Optional[Exception] = None
            if self._alive(home):
                try:
                    self._sync_clock(home)
                    self.shards[home].delete_block(
                        BlockId(to_local(gid, self.n)),
                        aru=self._local_aru(aru, home, create=True),
                    )
                    deleted = True
                except ShardLostError:
                    self._mark_shard_lost(home)
            for p in self._alive_peers(home):
                try:
                    self._sync_clock(p)
                    self.shards[p].delete_block(
                        BlockId(mirror_id(gid)),
                        aru=self._local_aru(aru, p, create=True),
                    )
                    deleted = True
                except ShardLostError:
                    self._mark_shard_lost(p)
                except (BadBlockError, BadListError) as exc:
                    bad = exc
                    self._replica_skips += 1
            if not deleted:
                if bad is not None:
                    raise bad
                raise ShardLostError(
                    home, f"block {gid}: no surviving replica"
                )
            if list_gid is not None:
                self._note_dirty_list(list_gid)

    def write(
        self, block_id: BlockId, data: bytes, aru: Optional[ARUId] = None
    ) -> None:
        with self._lock:
            gid = int(block_id)
            home = shard_of(gid, self.n)
            if self._plain:
                self._sync_clock(home)
                self.shards[home].write(
                    BlockId(to_local(gid, self.n)),
                    data,
                    aru=self._local_aru(aru, home, create=True),
                )
                return
            wrote = False
            bad: Optional[Exception] = None
            if self._alive(home):
                # Home validates first, so a bad id or oversized
                # payload raises before any mirror is touched.
                self._sync_clock(home)
                try:
                    self.shards[home].write(
                        BlockId(to_local(gid, self.n)),
                        data,
                        aru=self._local_aru(aru, home, create=True),
                    )
                    wrote = True
                except ShardLostError:
                    self._mark_shard_lost(home)
            for p in self._alive_peers(home):
                try:
                    self._sync_clock(p)
                    self.shards[p].write(
                        BlockId(mirror_id(gid)),
                        data,
                        aru=self._local_aru(aru, p, create=True),
                    )
                    wrote = True
                except ShardLostError:
                    self._mark_shard_lost(p)
                except (BadBlockError, BadListError) as exc:
                    bad = exc
                    self._replica_skips += 1
            if not wrote:
                if bad is not None:
                    raise bad
                raise ShardLostError(
                    home, f"block {gid}: no surviving replica"
                )
            self._note_dirty_block(gid)

    def read(self, block_id: BlockId, aru: Optional[ARUId] = None) -> bytes:
        with self._lock:
            gid = int(block_id)
            home = shard_of(gid, self.n)
            if self._plain:
                self._sync_clock(home)
                return self.shards[home].read(
                    BlockId(to_local(gid, self.n)),
                    aru=self._local_aru(aru, home, create=False),
                )
            if self._alive(home):
                try:
                    self._sync_clock(home)
                    return self.shards[home].read(
                        BlockId(to_local(gid, self.n)),
                        aru=self._local_aru(aru, home, create=False),
                    )
                except ShardLostError:
                    self._mark_shard_lost(home)
                except UnrecoverableBlockError:
                    # The home copy is gone (quarantined segment);
                    # fall through to a replica if one exists.
                    if not self._alive_peers(home):
                        raise
            last: Optional[Exception] = None
            for p in self._alive_peers(home):
                try:
                    self._sync_clock(p)
                    data = self.shards[p].read(
                        BlockId(mirror_id(gid)),
                        aru=self._local_aru(aru, p, create=False),
                    )
                    self._degraded_reads += 1
                    return data
                except ShardLostError:
                    self._mark_shard_lost(p)
                except (BadBlockError, UnrecoverableBlockError) as exc:
                    last = exc
            if last is not None:
                raise last
            raise ShardLostError(home, f"block {gid}: no surviving replica")

    def read_many(
        self, block_ids: Sequence[BlockId], aru: Optional[ARUId] = None
    ) -> List[bytes]:
        with self._lock:
            if not self._plain:
                # Degraded/replicated arrays route block-by-block so
                # each read can fail over independently.
                return [self.read(gid, aru=aru) for gid in block_ids]
            by_shard: Dict[int, List[Tuple[int, BlockId]]] = {}
            for index, gid in enumerate(block_ids):
                by_shard.setdefault(shard_of(gid, self.n), []).append(
                    (index, gid)
                )
            results: List[Optional[bytes]] = [None] * len(block_ids)
            for s in sorted(by_shard):
                self._sync_clock(s)
                items = by_shard[s]
                data = self.shards[s].read_many(
                    [BlockId(to_local(gid, self.n)) for _i, gid in items],
                    aru=self._local_aru(aru, s, create=False),
                )
                for (index, _gid), payload in zip(items, data):
                    results[index] = payload
            return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Lists
    # ------------------------------------------------------------------

    def new_list(self, aru: Optional[ARUId] = None) -> ListId:
        with self._lock:
            s = self._next_shard
            self._next_shard = (s + 1) % self.n
            if self._plain:
                self._sync_clock(s)
                local = self.shards[s].new_list(
                    aru=self._local_aru(aru, s, create=True)
                )
                return ListId(to_global(local, s, self.n))
            gid: Optional[int] = None
            if self._alive(s):
                try:
                    self._sync_clock(s)
                    local = self.shards[s].new_list(
                        aru=self._local_aru(aru, s, create=True)
                    )
                    gid = to_global(local, s, self.n)
                except ShardLostError:
                    self._mark_shard_lost(s)
            if gid is None:
                if not self._alive_peers(s):
                    raise ShardLostError(s, "new list: no surviving replica")
                gid = to_global(self._take_dead_id(s, "list"), s, self.n)
            created = self._alive(s)
            for p in self._alive_peers(s):
                try:
                    self._sync_clock(p)
                    self.shards[p].new_list(
                        aru=self._local_aru(aru, p, create=True),
                        list_id=ListId(mirror_id(gid)),
                    )
                    created = True
                except ShardLostError:
                    self._mark_shard_lost(p)
                except (BadBlockError, BadListError):
                    self._replica_skips += 1
            if not created:
                raise ShardLostError(s, "new list: no surviving replica")
            self._note_dirty_list(gid)
            return ListId(gid)

    def delete_list(
        self, list_id: ListId, aru: Optional[ARUId] = None
    ) -> None:
        with self._lock:
            list_gid = int(list_id)
            home = self._shard_for_list(list_id)
            if self._plain:
                self._sync_clock(home)
                self.shards[home].delete_list(
                    ListId(to_local(list_gid, self.n)),
                    aru=self._local_aru(aru, home, create=True),
                )
                return
            deleted = False
            bad: Optional[Exception] = None
            if self._alive(home):
                try:
                    self._sync_clock(home)
                    self.shards[home].delete_list(
                        ListId(to_local(list_gid, self.n)),
                        aru=self._local_aru(aru, home, create=True),
                    )
                    deleted = True
                except ShardLostError:
                    self._mark_shard_lost(home)
            for p in self._alive_peers(home):
                try:
                    self._sync_clock(p)
                    self.shards[p].delete_list(
                        ListId(mirror_id(list_gid)),
                        aru=self._local_aru(aru, p, create=True),
                    )
                    deleted = True
                except ShardLostError:
                    self._mark_shard_lost(p)
                except (BadBlockError, BadListError) as exc:
                    bad = exc
                    self._replica_skips += 1
            if not deleted:
                if bad is not None:
                    raise bad
                raise ShardLostError(
                    home, f"list {list_gid}: no surviving replica"
                )
            self._note_dirty_list(list_gid)

    def list_blocks(
        self, list_id: ListId, aru: Optional[ARUId] = None
    ) -> List[BlockId]:
        with self._lock:
            list_gid = int(list_id)
            home = self._shard_for_list(list_id)
            if self._plain:
                self._sync_clock(home)
                locals_ = self.shards[home].list_blocks(
                    ListId(to_local(list_gid, self.n)),
                    aru=self._local_aru(aru, home, create=False),
                )
                return [BlockId(to_global(b, home, self.n)) for b in locals_]
            if self._alive(home):
                try:
                    self._sync_clock(home)
                    locals_ = self.shards[home].list_blocks(
                        ListId(to_local(list_gid, self.n)),
                        aru=self._local_aru(aru, home, create=False),
                    )
                    return [
                        BlockId(to_global(b, home, self.n)) for b in locals_
                    ]
                except ShardLostError:
                    self._mark_shard_lost(home)
            last: Optional[Exception] = None
            for p in self._alive_peers(home):
                try:
                    self._sync_clock(p)
                    members = self.shards[p].list_blocks(
                        ListId(mirror_id(list_gid)),
                        aru=self._local_aru(aru, p, create=False),
                    )
                    self._degraded_reads += 1
                    return [
                        BlockId(int(b) - SYSTEM_ID_BASE) for b in members
                    ]
                except ShardLostError:
                    self._mark_shard_lost(p)
                except BadListError as exc:
                    last = exc
            if last is not None:
                raise last
            raise ShardLostError(
                home, f"list {list_gid}: no surviving replica"
            )

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            for s in range(self.n):
                if not self._alive(s):
                    continue
                try:
                    self._sync_clock(s)
                    self.shards[s].flush()
                except ShardLostError:
                    self._mark_shard_lost(s)

    @property
    def restore_active(self) -> bool:
        """True while any shard's instant restore is still pending."""
        return any(
            shard.restore_active
            for shard in self.shards
            if shard is not None
        )

    def restore_drain(self, max_segments=None) -> int:
        """Drain pending restore segments on every shard (sum)."""
        with self._lock:
            drained = 0
            for s in range(self.n):
                if not self._alive(s):
                    continue
                try:
                    self._sync_clock(s)
                    drained += self.shards[s].restore_drain(max_segments)
                except ShardLostError:
                    self._mark_shard_lost(s)
            return drained

    def complete_restore(self) -> None:
        """Finish every shard's in-progress instant restore; run a
        deferred replica resync once final table state exists."""
        with self._lock:
            for s in range(self.n):
                if not self._alive(s):
                    continue
                try:
                    self._sync_clock(s)
                    self.shards[s].complete_restore()
                except ShardLostError:
                    self._mark_shard_lost(s)
            if self._resync_pending and not self._arus:
                self._resync_pending = False
                if self.rf > 1:
                    self.resync()

    def write_checkpoint(self) -> None:
        """Checkpoint every shard (a global recovery bound).

        Ordering matters for the coordinator's decision memory: the
        non-decision shards checkpoint first, after which every
        PREPARE they ever logged is covered by a durable checkpoint
        and no decision can be needed again; only then are the
        decision shards' decided-xid sets cleared and checkpointed,
        highest shard first so shard 0 — the first recovery reads —
        holds a superset until the very end.  A crash anywhere in
        between leaves a superset of the needed decisions
        recoverable, which is always safe.
        """
        with self._lock:
            self.flush()
            decision = set(self._decision_shards())
            for s in range(self.n):
                if s in decision or not self._alive(s):
                    continue
                try:
                    self._sync_clock(s)
                    self.shards[s].write_checkpoint()
                except ShardLostError:
                    self._mark_shard_lost(s)
            for s in sorted(decision, reverse=True):
                if not self._alive(s):
                    continue
                try:
                    self.shards[s].clear_decisions()
                    self._sync_clock(s)
                    self.shards[s].write_checkpoint()
                except ShardLostError:
                    self._mark_shard_lost(s)

    # ------------------------------------------------------------------
    # Failure, repair and replica maintenance
    # ------------------------------------------------------------------

    @property
    def dead_shards(self) -> List[int]:
        """Indices of lost members, ascending."""
        return sorted(self._dead)

    @property
    def repair_active(self) -> bool:
        return self._repair is not None

    def lose_shard(self, shard_index: int) -> None:
        """Destroy one member's media (a first-class injectable
        fault): the shared injector rejects all further I/O to it and
        the array fails it over to its replicas immediately."""
        with self._lock:
            if not 0 <= shard_index < self.n:
                raise ValueError(f"no shard {shard_index} in a {self.n}-shard array")
            shard = self.shards[shard_index]
            injector = (
                shard.disk.injector
                if shard is not None
                else self.shards[self._first_alive()].disk.injector
            )
            injector.lose_shard(shard_index)
            self._mark_shard_lost(shard_index, "lost by operator")

    def start_repair(self, shard_index: Optional[int] = None) -> int:
        """Begin rebuilding a lost member onto fresh replacement
        media.  Returns the number of lists queued for copy; drive
        the copy with :meth:`repair_step` (paced) or :meth:`repair`
        (synchronous)."""
        with self._lock:
            if self._repair is not None:
                raise ConcurrencyError("a repair is already in progress")
            if shard_index is None:
                if not self._dead:
                    raise ValueError("no shard is lost")
                shard_index = min(self._dead)
            if shard_index not in self._dead:
                raise ValueError(f"shard {shard_index} is not lost")
            if self.rf < 2:
                raise ValueError(
                    "an unreplicated array has no surviving copies to "
                    "repair from"
                )
            self._repair = _RepairJob(self, shard_index)
            return len(self._repair.queue)

    def repair_step(self, max_ops: Optional[int] = None) -> bool:
        """Run one paced slice of the active repair.

        Copies up to ``max_ops`` (default: the config's
        ``repair_batch_ops``) admit/copy operations, then returns
        whether the repair has *completed*.  Completion — re-copying
        lists dirtied while the job ran, then installing the rebuilt
        volume — requires a quiescent moment (no active ARUs); until
        one occurs the step keeps the job open and returns False.
        """
        with self._lock:
            job = self._repair
            if job is None:
                return True
            budget = (
                max_ops if max_ops is not None else self.config.repair_batch_ops
            )
            while job.queue and budget > 0:
                budget -= job.copy_list(job.queue.pop(0))
            if job.queue:
                return False
            if self._arus:
                return False  # dirty re-copy needs final committed state
            while job.dirty:
                job.copy_list(job.dirty.pop())
            self._install_repair(job)
            return True

    def repair(self, shard_index: Optional[int] = None) -> dict:
        """Rebuild a lost member synchronously (start + run to
        completion).  Requires no active ARUs.  Returns copy counts.
        """
        with self._lock:
            if self._repair is None:
                self.start_repair(shard_index)
            if self._arus:
                raise ConcurrencyError(
                    "cannot run synchronous repair with active ARUs; "
                    "use repair_step"
                )
            job = self._repair
            while not self.repair_step():
                pass
            return {
                "lists_copied": job.lists_copied,
                "blocks_copied": job.blocks_copied,
            }

    def _install_repair(self, job: _RepairJob) -> None:
        counters = self._dead_counters.get(job.shard)
        if counters is not None:
            # Ids handed out while the member was down must never be
            # reallocated by the healed volume.
            job.lld._next_block_id = max(
                job.lld._next_block_id, counters[0]
            )
            job.lld._next_list_id = max(job.lld._next_list_id, counters[1])
        job._sync()
        job.lld.flush()
        self.shards[job.shard] = job.lld
        del self._dead[job.shard]
        self._dead_counters.pop(job.shard, None)
        self._repair = None
        self._repairs_completed += 1
        self._update_plain()

    def scrub(self, segments: Optional[Sequence[int]] = None) -> dict:
        """Scrub every live shard; blocks the per-volume scrubber
        declares lost are healed from their surviving replicas."""
        with self._lock:
            reports: Dict[str, object] = {}
            for s in range(self.n):
                if not self._alive(s):
                    continue
                try:
                    self._sync_clock(s)
                    report = self.shards[s].scrub(segments)
                except ShardLostError:
                    self._mark_shard_lost(s)
                    continue
                reports[str(s)] = report
                if self.rf > 1:
                    for local in list(report.lost_blocks):
                        self._heal_lost_block(s, int(local))
            return reports

    def clean(self) -> None:
        """Run one segment-cleaner pass on every live shard (the
        array-wide twin of :meth:`~repro.lld.lld.LLD.clean`, for
        maintenance drivers running during live traffic)."""
        with self._lock:
            for s in range(self.n):
                if not self._alive(s):
                    continue
                try:
                    self._sync_clock(s)
                    self.shards[s].clean()
                except ShardLostError:
                    self._mark_shard_lost(s)

    def _heal_lost_block(self, shard_index: int, local: int) -> bool:
        """Rewrite one quarantined-beyond-salvage block from its
        replica (committed data only — a replica never holds
        uncommitted bytes for a committed-elsewhere block)."""
        if local < SYSTEM_ID_BASE:
            gid = to_global(local, shard_index, self.n)
            sources = [
                (p, BlockId(mirror_id(gid))) for p in self._alive_peers(shard_index)
            ]
        else:
            gid = local - SYSTEM_ID_BASE
            home = shard_of(gid, self.n)
            if not self._alive(home):
                return False
            sources = [(home, BlockId(to_local(gid, self.n)))]
        for source, source_id in sources:
            try:
                self._sync_clock(source)
                data = self.shards[source].read(source_id)
            except ShardLostError:
                self._mark_shard_lost(source)
                continue
            except (BadBlockError, UnrecoverableBlockError):
                continue
            try:
                self._sync_clock(shard_index)
                self.shards[shard_index].write(BlockId(local), data)
            except ShardLostError:
                self._mark_shard_lost(shard_index)
                return False
            self._blocks_healed += 1
            return True
        return False

    def resync(self) -> Dict[str, int]:
        """Reconcile every mirror with its live home copy.

        The home copy is authoritative: structurally diverged mirror
        lists are rebuilt, byte-diverged mirror blocks rewritten, and
        stray mirrors (their home entity is gone, or never existed)
        deleted.  Recovering an unreplicated image under a
        ``replication_factor`` > 1 config builds the mirrors here —
        this is also how replication is enabled on an existing array.
        Requires no active ARUs; mirrors of *dead* homes are never
        touched (they are the surviving copy).
        """
        with self._lock:
            fixed = {
                "mirror_lists_rebuilt": 0,
                "mirror_blocks_rewritten": 0,
                "stray_mirrors_deleted": 0,
            }
            if self.rf < 2:
                return fixed
            if self._arus:
                raise ConcurrencyError("cannot resync with active ARUs")
            for home in range(self.n):
                if not self._alive(home):
                    continue
                for list_gid in sorted(self._user_lists_on(home)):
                    self._sync_clock(home)
                    members = self.shards[home].list_blocks(
                        ListId(to_local(list_gid, self.n))
                    )
                    gmembers = [
                        to_global(int(b), home, self.n) for b in members
                    ]
                    for p in self._alive_peers(home):
                        self._resync_mirror(home, p, list_gid, gmembers, fixed)
            for p in range(self.n):
                if not self._alive(p):
                    continue
                self._drop_stray_mirrors(p, fixed)
            return fixed

    def _resync_mirror(
        self,
        home: int,
        peer: int,
        list_gid: int,
        gmembers: List[int],
        fixed: Dict[str, int],
    ) -> None:
        shard = self.shards[peer]
        target = ListId(mirror_id(list_gid))
        shard._restore_list(target)
        view = shard._view_list(target, None)
        matches = view is not None and view.allocated
        if matches:
            self._sync_clock(peer)
            mirrored = [
                int(b) - SYSTEM_ID_BASE for b in shard.list_blocks(target)
            ]
            matches = mirrored == gmembers
        if not matches:
            self._rebuild_mirror_list(home, peer, list_gid, gmembers)
            fixed["mirror_lists_rebuilt"] += 1
            return
        for gid in gmembers:
            self._sync_clock(home)
            data = self.shards[home].read(BlockId(to_local(gid, self.n)))
            try:
                self._sync_clock(peer)
                copy = shard.read(BlockId(mirror_id(gid)))
            except UnrecoverableBlockError:
                copy = None
            if copy != data:
                shard.write(BlockId(mirror_id(gid)), data)
                fixed["mirror_blocks_rewritten"] += 1

    def _rebuild_mirror_list(
        self,
        home: int,
        peer: int,
        list_gid: int,
        gmembers: Optional[List[int]] = None,
    ) -> None:
        """Rebuild one mirror list from the committed home copy."""
        shard = self.shards[peer]
        target = ListId(mirror_id(list_gid))
        view = shard._view_list(target, None)
        if view is not None and view.allocated:
            self._sync_clock(peer)
            shard.delete_list(target)
        if gmembers is None:
            self._sync_clock(home)
            gmembers = [
                to_global(int(b), home, self.n)
                for b in self.shards[home].list_blocks(
                    ListId(to_local(list_gid, self.n))
                )
            ]
        self._sync_clock(peer)
        shard.new_list(list_id=target)
        prev: Predecessor = FIRST
        for gid in gmembers:
            stale = shard._view_block(BlockId(mirror_id(gid)), None)
            if stale is not None and stale.allocated:
                shard.delete_block(BlockId(mirror_id(gid)))
            shard.new_block(
                target, predecessor=prev, block_id=BlockId(mirror_id(gid))
            )
            self._sync_clock(home)
            data = self.shards[home].read(BlockId(to_local(gid, self.n)))
            self._sync_clock(peer)
            shard.write(BlockId(mirror_id(gid)), data)
            prev = BlockId(mirror_id(gid))
        self._lists_healed += 1
        self._blocks_healed += len(gmembers)

    def _drop_stray_mirrors(self, peer: int, fixed: Dict[str, int]) -> None:
        shard = self.shards[peer]
        for local in sorted(self._list_ids_on(peer)):
            if local < SYSTEM_ID_BASE:
                continue
            shard._restore_list(ListId(local))
            view = shard._view_list(ListId(local), None)
            if view is None or not view.allocated:
                continue
            list_gid = local - SYSTEM_ID_BASE
            home = shard_of(list_gid, self.n)
            if not self._alive(home):
                continue  # surviving copy of a dead home: keep
            stray = peer not in self._peers(home)
            if not stray:
                home_lld = self.shards[home]
                home_local = ListId(to_local(list_gid, self.n))
                home_lld._restore_list(home_local)
                home_view = home_lld._view_list(home_local, None)
                stray = home_view is None or not home_view.allocated
            if stray:
                self._sync_clock(peer)
                shard.delete_list(ListId(local))
                fixed["stray_mirrors_deleted"] += 1
        # Mirror blocks orphaned by an ARU that never committed:
        # allocation commits immediately, so sweep them like the
        # paper's disk consistency check sweeps user orphans.
        for block_id, _root in list(shard.bmap.items()):
            if block_id < SYSTEM_ID_BASE:
                continue
            view = shard._view_block(BlockId(block_id), None)
            if view is None or not view.allocated or view.list_id:
                continue
            gid = block_id - SYSTEM_ID_BASE
            if self._alive(shard_of(gid, self.n)):
                self._sync_clock(peer)
                shard.delete_block(BlockId(block_id))
                fixed["stray_mirrors_deleted"] += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def sharding_info(self) -> dict:
        """Striping, commit-protocol and replication counters (see
        the stats schema's ``sharding`` section)."""
        decided = 0
        for s in self._decision_shards():
            if self._alive(s):
                decided = max(decided, len(self.shards[s]._decided_xids))
        return {
            "shards": self.n,
            "replication_factor": self.rf,
            "xids_issued": self._next_xid - 1,
            "commits_single_shard": self._commits_single,
            "commits_cross_shard": self._commits_cross,
            "decided_pending": decided,
            "dead_shards": len(self._dead),
            "degraded_reads": self._degraded_reads,
            "repairs_completed": self._repairs_completed,
            "blocks_healed": self._blocks_healed,
            "lists_healed": self._lists_healed,
            "replica_skips": self._replica_skips,
            "redundancy_full": not self._dead and self._repair is None,
        }

    def stats(self) -> dict:
        """Per-shard stats under the frozen schema, plus a summed
        aggregate view (itself frozen-schema-conformant) and the
        sharding counters.  Lost members have no stats to report."""
        from repro.obs.aggregate import aggregate_stats

        per_shard = {
            str(index): shard.stats()
            for index, shard in enumerate(self.shards)
            if shard is not None
        }
        return {
            "shards": per_shard,
            "aggregate": aggregate_stats(list(per_shard.values())),
            "sharding": self.sharding_info(),
        }

    def metrics_snapshot(self) -> dict:
        """Every live shard's registry + recorder snapshot."""
        return {
            str(index): shard.obs.snapshot()
            for index, shard in enumerate(self.shards)
            if shard is not None
        }


def build_sharded(
    num_shards: int,
    geometry: Optional[DiskGeometry] = None,
    cost_model: Optional[CostModel] = None,
    disk_model: DiskModel = HP_C3010,
    config: Optional[LLDConfig] = None,
    injector: Optional[FaultInjector] = None,
    array_config: Optional[ArrayConfig] = None,
    **kwargs,
) -> ShardedLLD:
    """Build a fresh N-shard volume.

    ``geometry`` is per shard (every member volume gets its own
    partition of that size).  All shard disks share one fault
    injector — ``injector`` or a fresh fault-free one — so a fault
    plan counts a single global write index and power failure is
    simultaneous across the array; each disk knows its shard index,
    so shard-scoped faults and whole-shard loss hit the right member.
    Each shard gets a private clock.  Remaining keyword arguments are
    split by name: :class:`~repro.shard.config.ArrayConfig` knobs
    (``replication_factor=``, …) configure the array, everything else
    configures every member LLD alike via ``LLDConfig.from_kwargs``.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    geo = geometry if geometry is not None else DiskGeometry.small(
        num_segments=64
    )
    shared = injector if injector is not None else FaultInjector()
    array_knobs = {field.name for field in dataclasses.fields(ArrayConfig)}
    overrides = {k: kwargs.pop(k) for k in list(kwargs) if k in array_knobs}
    acfg = ArrayConfig.from_kwargs(array_config, **overrides)
    cfg = LLDConfig.from_kwargs(config, **kwargs)
    shards = [
        LLD(
            SimulatedDisk(
                geo, model=disk_model, injector=shared, shard_index=index
            ),
            cost_model=cost_model,
            config=cfg,
        )
        for index in range(num_shards)
    ]
    return ShardedLLD(shards, array_config=acfg)
