"""Tests for the top-level public API (`repro` package root)."""

import pytest

import repro
from repro import JLD, LLD, Visibility, make_system, recover


class TestMakeSystem:
    def test_defaults(self):
        system = make_system()
        assert isinstance(system.ld, LLD)
        assert system.clock is system.disk.clock
        lst = system.ld.new_list()
        block = system.ld.new_block(lst)
        system.ld.write(block, b"hello")
        assert system.ld.read(block).startswith(b"hello")

    def test_paper_partition_parameters(self):
        system = make_system(
            num_segments=800, segment_size=512 * 1024,
            checkpoint_slot_segments=4,
        )
        geo = system.disk.geometry
        assert geo.partition_size == 400 * 1024 * 1024
        assert geo.block_size == 4096

    def test_sequential_mode(self):
        system = make_system(aru_mode="sequential")
        assert not system.ld.concurrent

    def test_jld_substrate(self):
        system = make_system(substrate="jld", num_segments=64)
        assert isinstance(system.ld, JLD)
        lst = system.ld.new_list()
        block = system.ld.new_block(lst)
        system.ld.write(block, b"journaled")
        assert system.ld.read(block).startswith(b"journaled")

    def test_jld_rejects_sequential(self):
        with pytest.raises(ValueError):
            make_system(substrate="jld", aru_mode="sequential")

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError):
            make_system(substrate="raid")

    def test_visibility_option(self):
        system = make_system(visibility=Visibility.COMMITTED_ONLY)
        assert system.ld.visibility is Visibility.COMMITTED_ONLY

    def test_recover_roundtrip(self):
        system = make_system(num_segments=64, checkpoint_slot_segments=2)
        lst = system.ld.new_list()
        block = system.ld.new_block(lst)
        system.ld.write(block, b"public api")
        system.ld.flush()
        recovered, report = recover(
            system.disk.power_cycle(), checkpoint_slot_segments=2
        )
        assert recovered.read(block).startswith(b"public api")
        assert report.entries_replayed > 0


class TestExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_both_substrates_exported(self):
        assert repro.LLD is LLD
        assert repro.JLD is JLD
