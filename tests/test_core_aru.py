"""Unit tests for the ARU table and the list-operation log."""

import pytest

from repro.core.aru import ARUTable
from repro.core.oplog import ListOp, ListOpKind, ListOpLog
from repro.disk.clock import CostMeter, CostModel, SimClock
from repro.errors import BadARUError, ConcurrencyError
from repro.ld.types import ARUId, BlockId, ListId


class TestARUTable:
    def test_ids_are_unique_and_increasing(self):
        table = ARUTable()
        ids = [table.begin(timestamp=index).aru_id for index in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_ids_start_at_one(self):
        assert ARUTable().begin(0).aru_id == ARUId(1)

    def test_get_active(self):
        table = ARUTable()
        record = table.begin(0)
        assert table.get(record.aru_id) is record

    def test_get_unknown_raises(self):
        with pytest.raises(BadARUError):
            ARUTable().get(ARUId(99))

    def test_finish_removes(self):
        table = ARUTable()
        record = table.begin(0)
        table.finish(record.aru_id, committed=True)
        with pytest.raises(BadARUError):
            table.get(record.aru_id)
        assert table.total_committed == 1

    def test_finish_twice_raises(self):
        table = ARUTable()
        record = table.begin(0)
        table.finish(record.aru_id, committed=False)
        with pytest.raises(BadARUError):
            table.finish(record.aru_id, committed=False)

    def test_sequential_mode_allows_one(self):
        table = ARUTable(concurrent=False)
        record = table.begin(0)
        with pytest.raises(ConcurrencyError):
            table.begin(1)
        table.finish(record.aru_id, committed=True)
        table.begin(2)  # allowed again

    def test_concurrent_mode_allows_many(self):
        table = ARUTable(concurrent=True)
        records = [table.begin(index) for index in range(20)]
        assert table.active_count == 20
        assert sorted(table.active_ids()) == sorted(r.aru_id for r in records)

    def test_set_next_id_never_goes_backwards(self):
        table = ARUTable()
        table.set_next_id(50)
        assert table.begin(0).aru_id == ARUId(50)
        table.set_next_id(10)  # ignored: already past
        assert table.begin(0).aru_id == ARUId(51)

    def test_contains(self):
        table = ARUTable()
        record = table.begin(0)
        assert record.aru_id in table
        assert ARUId(999) not in table


class TestListOpLog:
    def test_append_and_replay_order(self):
        log = ListOpLog()
        ops = [
            ListOp(ListOpKind.INSERT, ListId(1), BlockId(2), None),
            ListOp(ListOpKind.DELETE_BLOCK, ListId(1), BlockId(2)),
            ListOp(ListOpKind.DELETE_LIST, ListId(1)),
        ]
        for op in ops:
            log.append(op)
        assert list(log.replay()) == ops
        assert len(log) == 3

    def test_append_charges_meter(self):
        meter = CostMeter(SimClock(), CostModel(listop_log_us=2.0))
        log = ListOpLog()
        log.append(ListOp(ListOpKind.DELETE_LIST, ListId(1)), meter)
        assert meter.counters["listop_log_us"] == 1

    def test_clear(self):
        log = ListOpLog()
        log.append(ListOp(ListOpKind.DELETE_LIST, ListId(1)))
        log.clear()
        assert len(log) == 0

    def test_insert_requires_block(self):
        with pytest.raises(ValueError):
            ListOp(ListOpKind.INSERT, ListId(1))

    def test_delete_list_needs_no_block(self):
        op = ListOp(ListOpKind.DELETE_LIST, ListId(4))
        assert op.block_id is None
