"""Tests for the parameter-sweep utility."""

import pytest

from repro.harness.sweep import Sweep, SweepPoint


class TestGrid:
    def test_cartesian_points(self):
        sweep = Sweep({"a": [1, 2], "b": ["x", "y", "z"]})
        points = list(sweep.points())
        assert len(points) == len(sweep) == 6
        assert {"a": 2, "b": "y"} in points

    def test_single_parameter(self):
        sweep = Sweep({"n": [10, 20]})
        assert list(sweep.points()) == [{"n": 10}, {"n": 20}]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            Sweep({})
        with pytest.raises(ValueError):
            Sweep({"a": []})


class TestRun:
    def test_measures_every_point(self):
        sweep = Sweep({"x": [1, 2, 3]})
        results = sweep.run(lambda x: {"double": 2.0 * x})
        assert [p.metrics["double"] for p in results] == [2.0, 4.0, 6.0]

    def test_progress_callback(self):
        seen = []
        sweep = Sweep({"x": [1, 2]})
        sweep.run(lambda x: {"m": float(x)}, progress=seen.append)
        assert seen == [{"x": 1}, {"x": 2}]

    def test_real_workload_sweep(self):
        """End-to-end: sweep the cache size and check the monotone
        effect on read time for a re-read-heavy workload."""
        from repro.disk.geometry import DiskGeometry
        from repro.disk.simdisk import SimulatedDisk
        from repro.ld.types import FIRST
        from repro.lld.lld import LLD

        def measure(cache_blocks):
            geo = DiskGeometry.small(num_segments=64)
            ld = LLD(
                SimulatedDisk(geo), cache_blocks=cache_blocks,
                checkpoint_slot_segments=2, readahead=False,
            )
            lst = ld.new_list()
            blocks = []
            previous = FIRST
            for index in range(64):
                block = ld.new_block(lst, predecessor=previous)
                ld.write(block, bytes([index]))
                blocks.append(block)
                previous = block
            ld.flush()
            ld.cache.invalidate_all()
            start = ld.clock.now_us
            for _round in range(3):
                for block in blocks:
                    ld.read(block)
            return {"read_us": ld.clock.now_us - start}

        # Note: a cyclic scan defeats LRU below the working-set size,
        # so only the size that fits all 64 blocks shows a win.
        results = Sweep({"cache_blocks": [0, 8, 128]}).run(measure)
        times = [p.metrics["read_us"] for p in results]
        assert times[0] >= times[1] > times[2]

    def test_best(self):
        results = [
            SweepPoint({"x": 1}, {"tps": 10.0}),
            SweepPoint({"x": 2}, {"tps": 30.0}),
            SweepPoint({"x": 3}, {"tps": 20.0}),
        ]
        assert Sweep.best(results, "tps").params == {"x": 2}
        assert Sweep.best(results, "tps", maximize=False).params == {"x": 1}


class TestTable:
    def test_two_parameter_matrix(self):
        sweep = Sweep({"rows": [1, 2], "cols": [10, 20]})
        results = sweep.run(lambda rows, cols: {"m": float(rows * cols)})
        table = Sweep.table(results, "m")
        assert "rows=1" in table
        assert "cols=20" in table
        assert "40.00" in table

    def test_one_parameter_listing(self):
        sweep = Sweep({"only": [5, 6]})
        results = sweep.run(lambda only: {"m": float(only)})
        table = Sweep.table(results, "m", title="demo")
        assert "only=5" in table
        assert "demo" in table

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            Sweep.table([], "m")
