"""Tests for the experiment harness (variants, runners)."""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.harness.runner import (
    run_aru_latency_experiment,
    run_figure5,
    run_figure6,
    run_scrub_experiment,
    run_writepath_experiment,
)
from repro.harness.variants import VARIANTS, build_variant, paper_geometry


class TestVariants:
    def test_table1_variants_exist(self):
        assert set(VARIANTS) == {"old", "new", "new_delete"}

    def test_old_matches_paper_description(self):
        old = VARIANTS["old"]
        assert old.aru_mode == "sequential"
        assert not old.fs_uses_arus

    def test_new_variants_use_concurrent_arus(self):
        for name in ("new", "new_delete"):
            assert VARIANTS[name].aru_mode == "concurrent"
            assert VARIANTS[name].fs_uses_arus

    def test_delete_policies(self):
        assert VARIANTS["new"].delete_policy == "per_block"
        assert VARIANTS["new_delete"].delete_policy == "whole_list"

    def test_paper_geometry_full_scale(self):
        geo = paper_geometry(1.0)
        assert geo.num_segments == 800
        assert geo.segment_size == 512 * 1024
        assert geo.partition_size == 400 * 1024 * 1024

    def test_paper_geometry_scaling(self):
        assert paper_geometry(0.1).num_segments == 80
        assert paper_geometry(0.001).num_segments == 16  # floor

    def test_build_variant_wires_everything(self):
        disk, ld, fs = build_variant(
            VARIANTS["new"], geometry=DiskGeometry.small(96), n_inodes=64
        )
        assert ld.disk is disk
        assert fs.ld is ld
        assert ld.concurrent
        assert fs.use_arus
        fs.create("/works")
        assert fs.exists("/works")

    def test_build_old_variant(self):
        _disk, ld, fs = build_variant(
            VARIANTS["old"], geometry=DiskGeometry.small(96), n_inodes=64
        )
        assert not ld.concurrent
        assert not fs.use_arus


class TestRunners:
    def test_run_figure5_structure(self):
        result = run_figure5(
            size_classes=[{"n_files": 30, "file_size": 1024}],
            variants=("old", "new"),
            geometry=DiskGeometry.small(192),
        )
        assert set(result.results) == {"old", "new"}
        assert 1024 in result.results["old"]
        assert "Figure 5" in result.table
        assert "% slower" in result.table

    def test_run_figure6_structure(self):
        result = run_figure6(
            file_size=1024 * 1024, geometry=DiskGeometry.small(192)
        )
        assert set(result.results) == {"old", "new"}
        for phase in ("write1", "read1", "write2", "read2", "read3"):
            assert result.results["new"].phase(phase) > 0
        assert "Figure 6" in result.table

    def test_run_aru_latency_experiment(self):
        result = run_aru_latency_experiment(
            iterations=1000, geometry=DiskGeometry.small(96)
        )
        assert result.iterations == 1000
        assert result.latency_us > 0

    def test_run_scrub_experiment(self):
        result = run_scrub_experiment(n_blocks=60, n_faults=2)
        assert result.segments_quarantined == 2
        assert result.verify_problems == 0
        # Nothing the scrubber salvaged may be missing afterwards.
        assert result.blocks_intact + result.blocks_lost <= 60
        assert "quarantined" in result.summary

    def test_run_writepath_experiment(self):
        result = run_writepath_experiment(n_arus=60)
        # All 60 commits are grouped, so the pipeline writes far
        # fewer (fuller) segments and must be faster, not just equal.
        assert result.commits_grouped == 60
        assert result.pipelined_segments < result.serial_segments
        assert result.speedup > 1.0
        assert "60 durable ARUs" in result.summary
