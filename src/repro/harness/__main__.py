"""``python -m repro.harness`` — run the paper's evaluation.

A thin command-line front end over the experiment runners::

    python -m repro.harness                 # all experiments, scaled
    python -m repro.harness --full          # the paper's sizes
    python -m repro.harness figure5         # one experiment
    python -m repro.harness figure6 aru
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.runner import (
    run_aru_latency_experiment,
    run_figure5,
    run_figure6,
    run_scrub_experiment,
    run_writepath_experiment,
)
from repro.harness.variants import paper_geometry

EXPERIMENTS = ("figure5", "figure6", "aru", "scrub", "writepath")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the paper's evaluation (simulated time).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, []],
        help="subset to run (default: all)",
    )
    parser.add_argument(
        "--full", action="store_true", help="use the paper's full sizes"
    )
    args = parser.parse_args(argv)
    chosen = args.experiments or list(EXPERIMENTS)

    if args.full:
        size_classes = [
            {"n_files": 10_000, "file_size": 1024},
            {"n_files": 1_000, "file_size": 10 * 1024},
        ]
        geometry = paper_geometry(1.0)
        file_size = 20_000 * 4096
        iterations = 500_000
    else:
        size_classes = [
            {"n_files": 1_500, "file_size": 1024},
            {"n_files": 600, "file_size": 10 * 1024},
        ]
        geometry = paper_geometry(0.4)
        file_size = 16 * 1024 * 1024
        iterations = 60_000

    if "figure5" in chosen:
        print(run_figure5(size_classes=size_classes, geometry=geometry).table)
        print()
    if "figure6" in chosen:
        print(run_figure6(file_size=file_size).table)
        print()
    if "aru" in chosen:
        result = run_aru_latency_experiment(iterations=iterations)
        print(
            f"ARU begin/end: {result.latency_us:.2f} us per pair "
            f"({result.scaled_segments(500_000):.1f} segments per 500k; "
            "paper: 78.47 us, 24 segments)"
        )
    if "scrub" in chosen:
        print(run_scrub_experiment().summary)
    if "writepath" in chosen:
        n_arus = 1000 if args.full else 200
        print(run_writepath_experiment(n_arus=n_arus).summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
