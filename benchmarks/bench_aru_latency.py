"""Section 5.3 — the ARU begin/end microbenchmark.

The paper begins and ends an empty ARU 500,000 times on the new
prototype: 78.47 microseconds per ARU pair, with 24 segments written
(nothing but commit records in the summaries).
"""

import pytest

from repro.harness.reporting import format_table
from repro.harness.runner import run_aru_latency_experiment
from repro.harness.variants import VARIANTS, build_variant, paper_geometry
from repro.workloads.arulat import run_aru_latency

from benchmarks.conftest import full_scale, report_table

ITERATIONS = 500_000 if full_scale() else 60_000


@pytest.mark.benchmark(group="aru-latency")
def test_aru_begin_end_latency(benchmark):
    """Empty BeginARU/EndARU pairs on the concurrent prototype."""
    result = benchmark.pedantic(
        lambda: run_aru_latency_experiment(iterations=ITERATIONS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["latency_us_per_aru"] = round(result.latency_us, 2)
    benchmark.extra_info["segments_written"] = result.segments_written
    scaled = result.scaled_segments(500_000)
    benchmark.extra_info["segments_scaled_to_500k"] = round(scaled, 1)
    table = format_table(
        "Section 5.3 — empty ARU begin/end microbenchmark",
        ["latency (us/ARU)", "segments @500k"],
        {
            "new (concurrent)": [result.latency_us, scaled],
            "paper reports": [78.47, 24.0],
        },
        precision=2,
    )
    report_table("aru_latency", table)
    # Paper shape: tens of microseconds; segments fill very slowly.
    assert 40.0 <= result.latency_us <= 120.0
    assert 15.0 <= scaled <= 40.0


@pytest.mark.benchmark(group="aru-latency")
def test_aru_begin_end_latency_old_baseline(benchmark):
    """Sequential (old) ARUs for comparison: no merge machinery."""

    def run():
        _d, ld, _f = build_variant(
            VARIANTS["old"], geometry=paper_geometry(0.25), n_inodes=64
        )
        return run_aru_latency(ld, iterations=ITERATIONS // 2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["latency_us_per_aru"] = round(result.latency_us, 2)
    assert result.latency_us <= 120.0
