"""The segment cleaner: reclaiming disk space in the log.

When LLD runs out of free segments it copies the still-live blocks of
lightly-used segments into the current buffer and frees the victims
(Section 2: "If LLD runs out of disk space it uses a segment cleaner
to reclaim unused disk space").  Two victim-selection policies are
provided, following the LFS literature the paper builds on:

* ``greedy`` — always clean the segment with the fewest live blocks;
* ``cost_benefit`` — weigh free-space benefit against copying cost
  and favor older (colder) segments:
  ``(1 - u) * age / (1 + u)`` for utilization ``u``.

Correctness protocol: a block slot is copied only if the persistent
record still points at it *and* no committed record supersedes it (a
newer copy is already in the log stream ahead of us).  Victims are
freed only after (a) the copies have been flushed and (b) a
checkpoint has been written, so the summary history the victims
carried is no longer needed by recovery, and a crash at any point
leaves either the old or the new copy reachable.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.versions import VersionState
from repro.ld.types import ARU_NONE, BlockId
from repro.lld.segment import decode_segment
from repro.lld.summary import KIND_WRITE


@dataclasses.dataclass
class CleanReport:
    """What one cleaning pass accomplished."""

    victims: List[int]
    blocks_copied: int
    segments_freed: int
    #: Victims that turned out to be unreadable/corrupt; they were
    #: handed to the scrubber instead of freed.
    damaged: List[int] = dataclasses.field(default_factory=list)


class SegmentCleaner:
    """Copies live data out of victim segments and frees them."""

    def __init__(self, lld, policy: str = "cost_benefit") -> None:
        if policy not in ("greedy", "cost_benefit"):
            raise ValueError(f"unknown cleaner policy {policy!r}")
        self.lld = lld
        self.policy = policy

    def _score(self, live: int, seq: int) -> float:
        """Lower score = better victim."""
        slots = self.lld.geometry.max_data_blocks
        utilization = live / slots if slots else 1.0
        if self.policy == "greedy":
            return utilization
        # Cost-benefit: maximize (1-u)*age/(1+u); minimize the negation.
        age = max(1, self.lld._next_seq - seq)
        return -((1.0 - utilization) * age / (1.0 + utilization))

    def select_victims(self, count: int, exclude: frozenset = frozenset()) -> List[int]:
        """Pick up to ``count`` victim segments by policy score."""
        candidates = []
        current = self.lld._buffer
        queued = self.lld._writeback.pending_segments()
        for seg, live, seq in self.lld.usage.dirty_segments():
            if current is not None and seg == current.segment_no:
                continue
            # Queued segments are invisible to dirty_segments() via
            # their QUEUED state, but guard anyway: evacuating a
            # not-yet-written segment would read stale platter bytes.
            if seg in queued:
                continue
            if seg in exclude:
                continue
            # A fully live segment frees no space; copying it would
            # just thrash the log.
            if live >= self.lld.geometry.max_data_blocks:
                continue
            candidates.append((self._score(live, seq), live, seg))
        candidates.sort()
        return [seg for _score, _live, seg in candidates[:count]]

    def clean(self, target_free: int) -> CleanReport:
        """Clean until at least ``target_free`` segments are free.

        Runs as many bounded passes as keep making progress: each
        pass evacuates only as much live data as the current free
        workspace can absorb, frees its victims, and thereby enlarges
        the next pass's budget.  Returns an empty report when nothing
        can be cleaned (no victims, an unsafe moment, or a disk
        genuinely full of live data).
        """
        lld = self.lld
        if lld._restore is not None:
            # Live counts are provisional and victim bodies may hold
            # unapplied summaries while an instant restore is pending;
            # finish it before reasoning about free space.
            lld.complete_restore()
        all_victims: list = []
        total_copied = 0
        total_freed = 0
        damaged_all: set = set()
        while lld.usage.free_count < target_free:
            # Flushing first lands any pending commit records, which
            # is what makes checkpointing possible again.
            lld.flush()
            if not lld.checkpoint_safe():
                # Mid-commit (or an open sequential ARU): victims
                # could not be freed afterwards anyway, and the
                # evacuation copies would *consume* scarce space.
                break
            needed = target_free - lld.usage.free_count
            candidates = self.select_victims(needed, exclude=frozenset(damaged_all))
            if not candidates:
                break
            # Bound the evacuation volume by the workspace we have:
            # copies consume free segments before the victims are
            # released, so an over-ambitious pass could wedge the
            # disk.
            budget_slots = max(
                1, (lld.usage.free_count - 1) * lld.geometry.max_data_blocks
            )
            victims = []
            copy_load = 0
            for seg in candidates:
                live = lld.usage.live_slots(seg)
                if victims and copy_load + live > budget_slots:
                    break
                victims.append(seg)
                copy_load += live
            # A pass must be net-positive: segments released must
            # exceed segments consumed by the copies, or cleaning
            # would eat the last workspace for nothing.
            slots = lld.geometry.max_data_blocks
            consumed = -(-copy_load // slots) if copy_load else 0
            if len(victims) - consumed < 1:
                break
            free_before = lld.usage.free_count
            was_cleaning = lld._cleaning
            lld._cleaning = True
            try:
                # One scatter-gather read fetches every victim body;
                # victims clustered on disk coalesce into sequential
                # runs instead of paying one seek per segment.
                bodies = lld.disk.read_many(
                    [(seg, 0, lld.geometry.segment_size) for seg in victims],
                    errors="none",
                )
                copied = 0
                damaged_now = []
                for seg, raw in zip(victims, bodies):
                    evacuated = (
                        None if raw is None else self._evacuate(seg, raw)
                    )
                    if evacuated is None:
                        # Unreadable or failing its CRC: not ours to
                        # free — the scrubber must salvage what it can
                        # and quarantine the segment.
                        damaged_now.append(seg)
                        continue
                    copied += evacuated
                if damaged_now:
                    damaged_all.update(damaged_now)
                    lld._scrub_pending.update(damaged_now)
                    victims = [s for s in victims if s not in damaged_now]
                    if not victims:
                        # Every victim was damaged; retry with the
                        # damaged set excluded from selection.
                        continue
                # Make the copies durable, then supersede the victims'
                # summary history with a checkpoint; only then is
                # freeing them safe.
                lld.flush()
                if not lld.checkpoint_safe():
                    # An ARU committed mid-pass; keep the victims (the
                    # copies make the next pass free) and stop here.
                    all_victims += victims
                    total_copied += copied
                    break
                lld._ckpt_seq += 1
                for seg in victims:
                    lld.cache.invalidate_segment(seg)
                    lld.usage.free_segment(seg)
                lld.checkpoints.write(lld._snapshot_checkpoint())
            finally:
                lld._cleaning = was_cleaning
            all_victims += victims
            total_copied += copied
            total_freed += len(victims)
            if lld.usage.free_count <= free_before:
                break  # no net progress: the survivors are too full
        if damaged_all:
            # Salvage and quarantine the damaged victims now, while
            # we still hold whatever free space the pass recovered.
            # On a disk too full even for salvage copies, leave them
            # pending for a later scrub.
            from repro.errors import DiskFullError
            from repro.lld.scrub import Scrubber

            was_cleaning = lld._cleaning
            lld._cleaning = True
            try:
                Scrubber(lld).scrub(sorted(damaged_all))
            except DiskFullError:
                pass
            finally:
                lld._cleaning = was_cleaning
        return CleanReport(
            all_victims, total_copied, total_freed, sorted(damaged_all)
        )

    def _evacuate(self, seg: int, raw: Optional[bytes] = None) -> Optional[int]:
        """Copy every live block of ``seg`` into the current buffer.

        ``raw`` is the segment body when the caller already fetched it
        (the batched victim read); otherwise it is read here.  Returns
        the number of blocks copied, or None when the body fails
        validation — a DIRTY segment only reaches the disk through a
        successful write, so that means failed media, and the caller
        must route the segment to the scrubber rather than free it.
        """
        lld = self.lld
        if raw is None:
            raw = lld.disk.read_segment(seg)
        lld.meter.charge("crc_kb_us", lld.geometry.segment_size / 1024.0)
        decoded = decode_segment(raw, lld.geometry, seg)
        if decoded is None:
            return None
        lld.meter.charge("decode_entry_us", decoded.entry_count)
        copied = 0
        seen = set()
        # Hot loop: raw entry tuples (no SummaryEntry objects) and
        # zero-copy slot views — add_block consumes the view into the
        # new segment image immediately, so the only byte copy per
        # evacuated block is the one into the destination buffer.
        for fields in decoded.entry_tuples:
            if fields[0] != KIND_WRITE:
                continue
            block_id = BlockId(fields[3])
            slot = fields[4]
            if (block_id, slot) in seen:
                continue
            seen.add((block_id, slot))
            root = lld.bmap.root(block_id)
            if root is None or root.persistent is None:
                continue
            persistent = root.persistent
            if persistent.address is None or persistent.address.segment != seg:
                continue
            if persistent.address.slot != slot:
                continue
            # A committed record means a newer copy is already in the
            # stream ahead of us; the flush below makes it durable,
            # so the old slot need not move.
            if root.find(VersionState.COMMITTED, ARU_NONE) is not None:
                continue
            data = decoded.slot_view(slot)
            ts = lld.clock.tick()
            addr = lld._append_block_data(block_id, data, 0, ts)
            persistent.address = addr
            copied += 1
        return copied
