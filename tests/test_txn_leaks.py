"""Regression tests for the transaction-layer lock-leak and
wait-die-livelock fixes.

Each test here pins one of the historical bugs:

* a failing ``end_aru``/``flush`` during :meth:`Transaction.commit`
  leaked every lock (and the wait-die timestamp registration) the
  transaction held, wedging all later conflicting transactions until
  their timeouts;
* :func:`run_transaction` retried wait-die victims with a *fresh*
  timestamp, so a victim restarted as the youngest transaction every
  round and could starve forever (livelock);
* :meth:`LockManager.acquire` passed the full timeout to every
  ``Condition.wait``, so each ``notify_all`` reset the clock and a
  waiter under traffic could wait far past its budget;
* an unregistered holder in the lock table silently won every
  wait-die comparison (its timestamp defaulted to ``-1``) instead of
  being reported as corruption;
* a young shared-lock stream could be granted over an older exclusive
  waiter indefinitely (wait-die only kills waits-for-older, and those
  young readers never waited);
* an async waiter whose task was cancelled at its deadline (or by
  loop shutdown) left a stale entry in ``state.waiters`` — a ghost
  indistinguishable from a live older waiter, killing every younger
  requester forever.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.errors import (
    DeadlockError,
    LDError,
    LockError,
    TransactionAborted,
)
from repro.txn.locks import LockManager, LockMode
from repro.txn.transactions import TransactionManager, run_transaction
from tests.conftest import make_lld


class FlakyLD:
    """Delegating wrapper that fails selected LD operations on cue."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.fail_begin = False
        self.fail_end = False
        self.fail_flush = False

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def begin_aru(self):
        if self.fail_begin:
            raise LDError("injected begin_aru failure")
        return self._inner.begin_aru()

    def end_aru(self, aru):
        if self.fail_end:
            raise LDError("injected end_aru failure")
        return self._inner.end_aru(aru)

    def flush(self):
        if self.fail_flush:
            raise LDError("injected flush failure")
        return self._inner.flush()


def assert_quiesced(locks: LockManager) -> None:
    """The leak assertion: every lock table is empty."""
    snap = locks.snapshot()
    assert snap["owners_registered"] == 0, snap
    assert snap["resources_locked"] == 0, snap
    assert snap["locks_held"] == 0, snap
    assert snap["waiters"] == 0, snap
    assert snap["async_waiters"] == 0, snap


def provisioned_manager():
    ld = FlakyLD(make_lld())
    manager = TransactionManager(ld, lock_timeout_s=0.5)
    lst = ld.new_list()
    block = ld.new_block(lst)
    ld.write(block, b"\0" * 16)
    ld.flush()
    return ld, manager, block


class TestCommitFailureReleasesLocks:
    def test_failing_end_aru_releases_everything(self):
        ld, manager, block = provisioned_manager()
        txn = manager.begin(durable=False)
        txn.write(block, b"doomed")
        ld.fail_end = True
        with pytest.raises(LDError, match="end_aru"):
            txn.commit()
        assert txn.state == "failed"
        assert_quiesced(manager.locks)
        # The shadow state was discarded: the write never landed.
        ld.fail_end = False
        assert ld.read(block)[:6] != b"doomed"

    def test_failing_flush_releases_everything(self):
        ld, manager, block = provisioned_manager()
        txn = manager.begin(durable=True)
        txn.write(block, b"landed")
        ld.fail_flush = True
        with pytest.raises(LDError, match="flush"):
            txn.commit()
        assert txn.state == "failed"
        assert_quiesced(manager.locks)
        # The ARU itself committed before the flush failed; only
        # durability (and the bookkeeping) was at stake.
        ld.fail_flush = False
        assert ld.read(block)[:6] == b"landed"

    def test_conflicting_txn_proceeds_after_failed_commit(self):
        """The original symptom: a failed commit must not wedge the
        next transaction on the same block until its timeout."""
        ld, manager, block = provisioned_manager()
        txn = manager.begin(durable=False)
        txn.write(block, b"doomed")
        ld.fail_end = True
        with pytest.raises(LDError):
            txn.commit()
        ld.fail_end = False
        start = time.monotonic()
        with manager.begin(durable=False) as nxt:
            nxt.write(block, b"winner")
        assert time.monotonic() - start < manager.locks.timeout_s / 2
        assert ld.read(block)[:6] == b"winner"
        assert_quiesced(manager.locks)

    def test_failing_begin_aru_leaves_no_registration(self):
        ld, manager, _block = provisioned_manager()
        ld.fail_begin = True
        with pytest.raises(LDError, match="begin_aru"):
            manager.begin()
        assert manager.locks.owner_count() == 0


class TestRunTransactionRetryContract:
    def test_retries_carry_the_original_timestamp(self):
        _ld, manager, block = provisioned_manager()
        attempts = []

        def body(txn):
            attempts.append((txn.txn_id, txn.timestamp))
            if len(attempts) < 3:
                raise DeadlockError("synthetic wait-die death")
            txn.write(block, b"aged")
            return "won"

        result = run_transaction(manager, body, durable=False,
                                 retry_backoff_s=0.0)
        assert result == "won"
        ids = [txn_id for txn_id, _ in attempts]
        stamps = [ts for _, ts in attempts]
        # Fresh transaction id every attempt, one timestamp for all —
        # the victim ages instead of rejoining as the youngest.
        assert len(set(ids)) == 3
        assert set(stamps) == {attempts[0][0]}
        assert_quiesced(manager.locks)

    def test_lock_timeout_retries_like_a_death(self):
        _ld, manager, block = provisioned_manager()
        attempts = []

        def body(txn):
            attempts.append(txn.txn_id)
            if len(attempts) == 1:
                raise LockError("timed out waiting for exclusive lock")
            txn.write(block, b"retried")
            return len(attempts)

        assert run_transaction(manager, body, durable=False,
                               retry_backoff_s=0.0) == 2
        assert_quiesced(manager.locks)

    def test_budget_exhaustion_raises_transaction_aborted(self):
        _ld, manager, _block = provisioned_manager()

        def body(_txn):
            raise DeadlockError("always dies")

        with pytest.raises(TransactionAborted, match="3 wait-die"):
            run_transaction(manager, body, max_attempts=3,
                            retry_backoff_s=0.0)
        assert_quiesced(manager.locks)

    def test_non_lock_error_aborts_and_propagates(self):
        _ld, manager, block = provisioned_manager()

        def body(txn):
            txn.write(block, b"never-lands")
            raise ValueError("application bug")

        with pytest.raises(ValueError, match="application bug"):
            run_transaction(manager, body, durable=False)
        assert_quiesced(manager.locks)
        assert manager.ld.read(block)[:11] != b"never-lands"


class TestLockManagerTimeouts:
    def test_deadline_survives_a_notify_storm(self):
        """Each notify_all used to reset the waiter's timeout; under
        a storm the effective timeout became unbounded."""
        lm = LockManager(timeout_s=0.3)
        lm.register(1, 5)
        lm.acquire(1, "popular", LockMode.EXCLUSIVE)
        # The requester is OLDER than the holder, so wait-die lets it
        # wait (a younger one would die instantly, not time out).
        lm.register(2, 1)

        storming = threading.Event()
        storming.set()

        def storm():
            owner = 100
            while storming.is_set():
                lm.register(owner, 1000 + owner)
                lm.acquire(owner, ("noise", owner), LockMode.SHARED)
                lm.release_all(owner)  # notify_all every iteration
                owner += 1
                time.sleep(0.005)

        noise = threading.Thread(target=storm, daemon=True)
        noise.start()
        try:
            start = time.monotonic()
            with pytest.raises(LockError, match="timed out"):
                lm.acquire(2, "popular", LockMode.EXCLUSIVE)
            elapsed = time.monotonic() - start
        finally:
            storming.clear()
            noise.join()
        assert 0.2 <= elapsed < 2.0, elapsed
        assert lm.timeouts == 1
        lm.release_all(1)
        lm.release_all(2)
        assert_quiesced(lm)

    def test_unregistered_owner_is_rejected(self):
        lm = LockManager()
        with pytest.raises(LockError, match="not registered"):
            lm.acquire(42, "r", LockMode.SHARED)

    def test_corrupted_holder_raises_not_wins(self):
        """An unregistered holder used to default to timestamp -1 and
        silently win every wait-die comparison."""
        lm = LockManager(timeout_s=0.2)
        lm.register(1, 1)
        lm.acquire(1, "r", LockMode.EXCLUSIVE)
        del lm._owner_ts[1]  # simulate the corruption
        lm.register(2, 2)
        with pytest.raises(LockError, match="corrupted") as excinfo:
            lm.acquire(2, "r", LockMode.EXCLUSIVE)
        assert not isinstance(excinfo.value, DeadlockError)


class TestWaiterAwareWaitDie:
    def wait_for_waiter(self, lm: LockManager) -> None:
        deadline = time.monotonic() + 2.0
        while lm.snapshot()["waiters"] == 0:
            assert time.monotonic() < deadline, "waiter never queued"
            time.sleep(0.001)

    def test_young_reader_dies_against_older_exclusive_waiter(self):
        lm = LockManager(timeout_s=2.0)
        lm.register(10, 10)  # young holder
        lm.register(1, 1)    # old writer, will wait
        lm.register(20, 20)  # younger reader, must not overtake
        lm.acquire(10, "r", LockMode.SHARED)

        acquired = threading.Event()

        def old_writer():
            lm.acquire(1, "r", LockMode.EXCLUSIVE)
            acquired.set()

        writer = threading.Thread(target=old_writer, daemon=True)
        writer.start()
        self.wait_for_waiter(lm)
        # Compatible with the shared holder, but the older exclusive
        # waiter must not be overtaken: the young reader dies.
        with pytest.raises(DeadlockError, match="older waiter"):
            lm.acquire(20, "r", LockMode.SHARED)
        lm.release_all(10)
        writer.join(timeout=2.0)
        assert acquired.is_set(), "old writer starved behind releases"
        lm.release_all(1)
        lm.release_all(20)
        assert_quiesced(lm)

    def test_upgrader_is_exempt_from_the_waiter_check(self):
        """A shared holder upgrading to exclusive must not die
        against a waiter queued behind it — the waiter cannot make
        progress until the holder finishes anyway."""
        lm = LockManager(timeout_s=2.0)
        lm.register(10, 10)  # young holder, will upgrade
        lm.register(1, 1)    # old writer, waits behind the holder
        lm.acquire(10, "r", LockMode.SHARED)

        acquired = threading.Event()

        def old_writer():
            lm.acquire(1, "r", LockMode.EXCLUSIVE)
            acquired.set()

        writer = threading.Thread(target=old_writer, daemon=True)
        writer.start()
        self.wait_for_waiter(lm)
        lm.acquire(10, "r", LockMode.EXCLUSIVE)  # upgrade succeeds
        assert not acquired.is_set()
        lm.release_all(10)
        writer.join(timeout=2.0)
        assert acquired.is_set()
        lm.release_all(1)
        assert_quiesced(lm)


class TestAsyncWaiterCancellation:
    """The event-loop reentrancy fix: an async waiter that leaves
    abnormally (cancelled task, timed-out ``wait_for``) must
    unregister from the lock table before the exception propagates."""

    async def park_waiter(self, lm: LockManager, owner: int, resource):
        """Spawn ``acquire_async`` and wait until it is parked."""
        task = asyncio.get_running_loop().create_task(
            lm.acquire_async(owner, resource, LockMode.EXCLUSIVE)
        )
        deadline = time.monotonic() + 2.0
        while lm.snapshot()["waiters"] == 0:
            assert time.monotonic() < deadline, "waiter never parked"
            await asyncio.sleep(0.001)
        return task

    def test_cancelled_waiter_leaves_no_stale_entry(self):
        """THE regression: cancel a parked async waiter mid-wait; the
        tables must be ghost-free, and a younger requester must not
        die against the departed waiter's stale entry."""
        lm = LockManager(timeout_s=30.0)
        lm.register(1, 5)   # young holder
        lm.register(2, 1)   # older waiter (allowed to wait), cancelled
        lm.acquire(1, "r", LockMode.EXCLUSIVE)

        async def scenario():
            task = await self.park_waiter(lm, 2, "r")
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(scenario())
        snap = lm.snapshot()
        assert snap["waiters"] == 0, snap
        assert snap["async_waiters"] == 0, snap
        # A ghost entry for owner 2 (ts 1) would make this younger
        # requester die against a waiter that no longer exists.
        lm.release_all(1)
        lm.register(3, 10)
        lm.acquire(3, "r", LockMode.EXCLUSIVE)
        lm.release_all(3)
        lm.release_all(2)
        assert_quiesced(lm)

    def test_async_timeout_leaves_tables_clean(self):
        """The deadline path: ``wait_for`` fires inside the loop; the
        LockError must surface with the waiter already unregistered."""
        lm = LockManager(timeout_s=0.05)
        lm.register(1, 5)
        lm.register(2, 1)
        lm.acquire(1, "r", LockMode.EXCLUSIVE)

        async def scenario():
            with pytest.raises(LockError, match="timed out"):
                await lm.acquire_async(2, "r", LockMode.EXCLUSIVE)

        asyncio.run(scenario())
        assert lm.timeouts == 1
        snap = lm.snapshot()
        assert snap["waiters"] == 0, snap
        assert snap["async_waiters"] == 0, snap
        lm.release_all(1)
        lm.release_all(2)
        assert_quiesced(lm)

    def test_cross_thread_release_wakes_parked_waiter(self):
        """The grant path: a release on a plain thread must wake the
        parked coroutine via ``call_soon_threadsafe`` and let it win
        the lock (no lost-wakeup window between park and await)."""
        lm = LockManager(timeout_s=5.0)
        lm.register(1, 5)
        lm.register(2, 1)
        lm.acquire(1, "r", LockMode.EXCLUSIVE)

        async def scenario():
            task = await self.park_waiter(lm, 2, "r")
            releaser = threading.Thread(
                target=lm.release_all, args=(1,), daemon=True
            )
            releaser.start()
            waited_us = await asyncio.wait_for(task, timeout=5.0)
            releaser.join(timeout=5.0)
            return waited_us

        waited_us = asyncio.run(scenario())
        assert waited_us > 0.0
        assert lm.held_by(2) == {"r"}
        lm.release_all(2)
        assert_quiesced(lm)


class TestIntrospection:
    def test_snapshot_counts_live_tables(self):
        lm = LockManager()
        lm.register(1, 1)
        lm.register(2, 2)
        lm.acquire(1, "a", LockMode.EXCLUSIVE)
        lm.acquire(2, "b", LockMode.SHARED)
        snap = lm.snapshot()
        assert snap["owners_registered"] == 2
        assert snap["resources_locked"] == 2
        assert snap["locks_held"] == 2
        assert snap["grants"] == 2
        assert lm.owner_count() == 2
        assert lm.resource_count() == 2
        lm.release_all(1)
        lm.release_all(2)
        assert_quiesced(lm)

    def test_manager_stats_embed_lock_snapshot(self):
        _ld, manager, block = provisioned_manager()
        with manager.begin(durable=False) as txn:
            txn.write(block, b"x")
        stats = manager.stats()
        assert stats["begun"] == 1
        assert stats["committed"] == 1
        assert stats["aborted"] == 0
        assert stats["locks"]["owners_registered"] == 0
