#!/usr/bin/env python3
"""Randomized crash torture: hammer the invariants, thousands of ways.

Runs many rounds of a random file-system workload, each with a crash
(possibly a torn segment write) at a random point, recovers, and
checks three things every time:

1. the file system is structurally consistent (fsck finds nothing),
2. everything that was synced before the crash is present and
   byte-identical to the model,
3. a fresh workload runs cleanly on the recovered system.

Run:  python examples/crash_torture.py [rounds]
"""

import random
import sys

from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskCrashedError
from repro.fs import MinixFS, fsck
from repro.lld.lld import LLD
from repro.lld.recovery import recover
from repro.workloads.generator import random_fs_ops, verify_against_model


def torture_round(round_no: int) -> dict:
    rng = random.Random(round_no)
    crash_after = rng.randrange(1, 40)
    torn = rng.random() < 0.5
    geometry = DiskGeometry.small(num_segments=128)
    injector = FaultInjector(
        CrashPlan(after_writes=crash_after, torn=torn, seed=round_no)
    )
    disk = SimulatedDisk(geometry, injector=injector)
    ld = LLD(disk, checkpoint_slot_segments=2)
    fs = MinixFS.mkfs(ld, n_inodes=512)

    synced_model = {}
    crashed = False
    try:
        # Several bursts; the model snapshot advances at each sync.
        for burst in range(20):
            trace = random_fs_ops(
                fs, n_ops=15, seed=round_no * 100 + burst,
                sync_every=None, name_prefix=f"b{burst}_",
            )
            fs.sync()
            synced_model = dict(trace.expected)
    except DiskCrashedError:
        crashed = True

    ld2, report = recover(disk.power_cycle(), checkpoint_slot_segments=2)
    fs2 = MinixFS.mount(ld2)

    check = fsck(fs2)
    assert check.clean, (
        f"round {round_no}: fsck found {[str(p) for p in check.problems]}"
    )
    if crashed:
        # Only data synced before the crash is guaranteed; later
        # bursts may partially exist as *whole files* (never halves).
        mismatches = [
            problem
            for problem in verify_against_model(fs2, synced_model)
            if "differ" in problem
        ]
    else:
        mismatches = verify_against_model(fs2, synced_model)
    assert not mismatches, f"round {round_no}: {mismatches[:3]}"

    # The recovered system keeps working.
    post = random_fs_ops(
        fs2, n_ops=10, seed=round_no, sync_every=None, name_prefix="post_"
    )
    fs2.sync()
    assert verify_against_model(fs2, post.expected) == []
    return {
        "crashed": crashed,
        "torn": torn,
        "orphans": len(report.orphan_blocks_freed),
        "invalid_segments": report.segments_invalid,
    }


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    crashes = torn_crashes = orphans = 0
    for round_no in range(rounds):
        outcome = torture_round(round_no)
        crashes += outcome["crashed"]
        torn_crashes += outcome["crashed"] and outcome["torn"]
        orphans += outcome["orphans"]
        if (round_no + 1) % 10 == 0:
            print(f"  {round_no + 1}/{rounds} rounds, "
                  f"{crashes} crashes survived so far")
    print(f"\n{rounds} torture rounds: {crashes} crashes "
          f"({torn_crashes} with torn segments), "
          f"{orphans} orphan blocks reclaimed, zero inconsistencies.")


if __name__ == "__main__":
    main()
