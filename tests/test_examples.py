"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; this keeps them from
rotting.  Each runs in a subprocess exactly as a user would run it
(the slowest ones get reduced knobs via argv where they accept them).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", []),
    ("visibility_options.py", []),
    ("bank_transactions.py", []),
    ("trace_and_inspect.py", []),
    ("crash_torture.py", ["10"]),
    ("filesystem_no_fsck.py", []),
]


@pytest.mark.parametrize(
    "script,args", CASES, ids=[case[0] for case in CASES]
)
def test_example_runs(script, args):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_reproduce_paper_help():
    """The flagship script is exercised by the benchmark suite; here
    we only check its CLI wiring."""
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "reproduce_paper.py"), "--help"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 0
    assert "--full" in completed.stdout
