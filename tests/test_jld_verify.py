"""Tests for the JLD invariant verifier (and, via it, JLD health
after every workload shape)."""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.fs import MinixFS
from repro.jld import JLD, recover_jld
from repro.jld.verify import verify_jld
from repro.ld.types import FIRST, PhysAddr
from repro.workloads.generator import random_fs_ops


def make_jld(num_segments=96, **kwargs):
    geo = DiskGeometry.small(num_segments=num_segments)
    kwargs.setdefault("journal_segments", 6)
    kwargs.setdefault("checkpoint_slot_segments", 2)
    return JLD(SimulatedDisk(geo), **kwargs)


class TestCleanOnHealthy:
    def test_fresh(self):
        assert verify_jld(make_jld()) == []

    def test_after_mixed_workload(self):
        jld = make_jld()
        lst = jld.new_list()
        previous = FIRST
        blocks = []
        for index in range(20):
            block = jld.new_block(lst, predecessor=previous)
            jld.write(block, f"v{index}".encode())
            blocks.append(block)
            previous = block
        jld.delete_block(blocks[3])
        aru = jld.begin_aru()
        jld.write(blocks[5], b"shadow", aru=aru)
        assert verify_jld(jld) == []
        jld.end_aru(aru)
        jld.apply()
        assert verify_jld(jld) == []

    def test_after_fs_and_recovery(self):
        jld = make_jld(num_segments=160)
        fs = MinixFS.mkfs(jld, n_inodes=256)
        random_fs_ops(fs, n_ops=100, seed=2)
        fs.sync()
        assert verify_jld(jld) == []
        jld2, _report = recover_jld(
            jld.disk.power_cycle(), journal_segments=6,
            checkpoint_slot_segments=2,
        )
        assert verify_jld(jld2) == []


class TestDetectsDamage:
    def _ready(self):
        jld = make_jld()
        lst = jld.new_list()
        a = jld.new_block(lst)
        b = jld.new_block(lst, predecessor=a)
        jld.write(a, b"a")
        jld.flush()
        return jld, lst, a, b

    def test_detects_shared_home(self):
        jld, _lst, a, b = self._ready()
        jld.blocks[b].home = jld.blocks[a].home
        assert any("share home" in p for p in verify_jld(jld))

    def test_detects_free_list_overlap(self):
        jld, _lst, a, _b = self._ready()
        jld._home_free.append(jld.blocks[a].home)
        assert any("both free and allocated" in p for p in verify_jld(jld))

    def test_detects_home_in_journal_region(self):
        jld, _lst, a, _b = self._ready()
        jld.blocks[a].home = PhysAddr(0, 0)
        assert any("journal or" in p for p in verify_jld(jld))

    def test_detects_broken_count(self):
        jld, lst, _a, _b = self._ready()
        jld.lists[lst].count = 9
        assert any("claims 9" in p for p in verify_jld(jld))

    def test_detects_orphan_pending(self):
        jld, _lst, _a, _b = self._ready()
        from repro.ld.types import BlockId

        jld.pending[BlockId(999)] = (b"x", 0)
        assert any("unallocated block 999" in p for p in verify_jld(jld))

    def test_detects_stale_overlay(self):
        jld, _lst, _a, _b = self._ready()
        jld.shadow_blocks[42] = {}
        assert any("inactive ARU 42" in p for p in verify_jld(jld))
