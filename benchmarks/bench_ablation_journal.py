"""Ablation G — JLD journal-ring sizing.

A journaling LD's journal plays the role LLD's whole log plays: too
small and the apply/checkpoint machinery thrashes (every few
operations force home writes); big enough and applies amortize.
This sweep runs the small-file workload over journal ring sizes and
reports throughput and apply pressure — and, with it, the largest
ARU each configuration can commit (transactions are journal-bounded,
unlike LLD's).
"""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.fs import MinixFS
from repro.harness.reporting import format_table
from repro.jld import JLD, JournalFullError
from repro.ld.types import FIRST
from repro.workloads.smallfile import run_small_files

from benchmarks.conftest import full_scale, report_table

JOURNAL_SEGMENTS = [2, 4, 8, 16, 32]
N_FILES = 1200 if full_scale() else 300


def build(journal_segments: int) -> JLD:
    geo = DiskGeometry(
        block_size=4096, segment_size=128 * 1024, num_segments=640
    )
    return JLD(
        SimulatedDisk(geo),
        journal_segments=journal_segments,
        checkpoint_slot_segments=2,
    )


def largest_commitable_aru(journal_segments: int) -> int:
    """Blocks a single ARU can write before JournalFullError."""
    jld = build(journal_segments)
    lst = jld.new_list()
    blocks = []
    previous = FIRST
    for _ in range(journal_segments * 40):
        block = jld.new_block(lst, predecessor=previous)
        blocks.append(block)
        previous = block
    jld.apply()
    aru = jld.begin_aru()
    written = 0
    try:
        for block in blocks:
            jld.write(block, b"x" * 4096, aru=aru)
            written += 1
        jld.end_aru(aru)
    except JournalFullError:
        pass
    return written


@pytest.mark.benchmark(group="ablation-journal")
def test_journal_size_sweep(benchmark):
    def run():
        rows = {
            "C+W (files/s)": [],
            "applies": [],
            "home writes": [],
            "max ARU (blocks)": [],
        }
        for segments in JOURNAL_SEGMENTS:
            jld = build(segments)
            fs = MinixFS.mkfs(jld, n_inodes=N_FILES + 64)
            result = run_small_files(fs, N_FILES, 1024)
            rows["C+W (files/s)"].append(result.create_write_fps)
            rows["applies"].append(float(jld.applies))
            rows["home writes"].append(float(jld.home_writes))
            rows["max ARU (blocks)"].append(
                float(largest_commitable_aru(segments))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        f"Ablation G — JLD journal sizing ({N_FILES} x 1 KB files; "
        "128 KB journal segments)",
        [f"{segments} segs" for segments in JOURNAL_SEGMENTS],
        rows,
    )
    report_table("ablation_journal", table)
    benchmark.extra_info["max_aru_2segs"] = rows["max ARU (blocks)"][0]
    benchmark.extra_info["max_aru_32segs"] = rows["max ARU (blocks)"][-1]
    # Bigger journals mean fewer forced apply passes ...
    assert rows["applies"][0] >= rows["applies"][-1]
    # ... and strictly larger commitable transactions.
    max_arus = rows["max ARU (blocks)"]
    assert max_arus == sorted(max_arus)
    assert max_arus[-1] > max_arus[0]
