"""Segment-cleaner tests: space reclamation must never lose data."""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import DiskFullError
from repro.ld.types import FIRST
from repro.lld.cleaner import SegmentCleaner
from repro.lld.lld import LLD
from repro.lld.recovery import recover
from repro.workloads.generator import overwrite_pressure


def small_lld(num_segments=24, **kwargs):
    geo = DiskGeometry.small(num_segments=num_segments)
    disk = SimulatedDisk(geo)
    kwargs.setdefault("checkpoint_slot_segments", 1)
    kwargs.setdefault("clean_low_water", 3)
    kwargs.setdefault("clean_high_water", 6)
    return disk, LLD(disk, **kwargs)


def fill_pattern(lld, lst, count, tag):
    blocks = []
    previous = FIRST
    for index in range(count):
        block = lld.new_block(lst, predecessor=previous)
        lld.write(block, f"{tag}-{index}".encode())
        blocks.append(block)
        previous = block
    return blocks


class TestCleaning:
    def test_overwrite_churn_triggers_cleaner_and_keeps_data(self):
        disk, lld = small_lld()
        blocks = overwrite_pressure(lld, working_set_blocks=40, n_writes=600)
        assert lld.cleanings > 0
        for index, block in enumerate(blocks):
            assert lld.read(block).startswith(f"block-{index}-".encode())

    def test_cleaned_data_survives_crash(self):
        disk, lld = small_lld()
        blocks = overwrite_pressure(lld, working_set_blocks=40, n_writes=600)
        assert lld.cleanings > 0
        lld.flush()
        lld2, _report = recover(
            disk.power_cycle(), checkpoint_slot_segments=1, clean_low_water=3
        )
        for index, block in enumerate(blocks):
            assert lld2.read(block).startswith(f"block-{index}-".encode())

    def test_explicit_clean_frees_segments(self):
        disk, lld = small_lld(num_segments=32)
        lst = lld.new_list()
        blocks = fill_pattern(lld, lst, 60, "v1")
        lld.flush()
        # Rewrite everything: the old copies become garbage.
        for index, block in enumerate(blocks):
            lld.write(block, f"v2-{index}".encode())
        lld.flush()
        free_before = lld.usage.free_count
        cleaner = SegmentCleaner(lld, policy="greedy")
        report = cleaner.clean(target_free=free_before + 3)
        assert report.segments_freed >= 1
        assert lld.usage.free_count > free_before - 1
        for index, block in enumerate(blocks):
            assert lld.read(block).startswith(f"v2-{index}".encode())

    def test_both_policies_work(self):
        for policy in ("greedy", "cost_benefit"):
            disk, lld = small_lld(cleaner_policy=policy)
            blocks = overwrite_pressure(lld, 30, 400, seed=7)
            for index, block in enumerate(blocks):
                assert lld.read(block).startswith(f"block-{index}-".encode())

    def test_unknown_policy_rejected(self):
        _disk, lld = small_lld()
        with pytest.raises(ValueError):
            SegmentCleaner(lld, policy="psychic")

    def test_cleaner_skips_fully_live_segments(self):
        disk, lld = small_lld(num_segments=24)
        lst = lld.new_list()
        fill_pattern(lld, lst, 50, "live")
        lld.flush()
        cleaner = SegmentCleaner(lld)
        victims = cleaner.select_victims(100)
        max_blocks = lld.geometry.max_data_blocks
        for seg in victims:
            assert lld.usage.live_slots(seg) < max_blocks

    def test_disk_full_of_live_data_raises(self):
        disk, lld = small_lld(num_segments=16)
        lst = lld.new_list()
        with pytest.raises(DiskFullError):
            fill_pattern(lld, lst, 16 * lld.geometry.max_data_blocks, "cram")

    def test_greedy_prefers_emptier_segment(self):
        disk, lld = small_lld(num_segments=32)
        lst = lld.new_list()
        blocks = fill_pattern(lld, lst, 45, "x")  # 3 segments
        lld.flush()
        # Kill all of the first segment's blocks, half of the second's.
        per_seg = lld.geometry.max_data_blocks
        for block in blocks[:per_seg]:
            lld.delete_block(block)
        for block in blocks[per_seg : per_seg + per_seg // 2]:
            lld.delete_block(block)
        lld.flush()
        cleaner = SegmentCleaner(lld, policy="greedy")
        victims = cleaner.select_victims(2)
        lives = [lld.usage.live_slots(seg) for seg in victims]
        assert lives == sorted(lives)

    def test_clean_noop_when_enough_free(self):
        _disk, lld = small_lld()
        cleaner = SegmentCleaner(lld)
        report = cleaner.clean(target_free=1)
        assert report.victims == []

    def test_no_segment_leaks_across_many_cleanings(self):
        """Regression: _ensure_buffer used to open a second buffer
        after the cleaner had already opened one, leaking a CURRENT
        segment per cleaning pass until the disk filled."""
        from repro.lld.verify import verify_lld

        disk, lld = small_lld(num_segments=40)
        overwrite_pressure(lld, working_set_blocks=150, n_writes=3000)
        assert lld.cleanings >= 3
        problems = [p for p in verify_lld(lld) if "leaked" in p]
        assert problems == [], problems
        # Steady state: the system keeps absorbing writes forever.
        blocks = overwrite_pressure(lld, working_set_blocks=10, n_writes=500, seed=9)
        assert lld.read(blocks[0]).startswith(b"block-0-")
