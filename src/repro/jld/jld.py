"""The journaling overwrite-in-place logical disk.

Disk layout (on the same segment-granular simulated disk LLD uses)::

    [ checkpoint region | journal ring | home region ............ ]

* **Home region** — every allocated block owns a fixed (segment,
  slot) home; reads come from there (through a cache), writes go
  there only during :meth:`JLD.apply`, *after* their journal records
  are durable (write-ahead rule).
* **Journal ring** — sealed segments in the same on-disk format as
  LLD's (data payload slots + summary entries + trailer), reusing
  :mod:`repro.lld.segment` and :mod:`repro.lld.summary`.  A WRITE
  entry's payload is the redo data; entries tagged with an ARU only
  replay if that ARU's COMMIT record is on disk.
* **Checkpoint region** — the block/list tables (reusing
  :mod:`repro.lld.checkpoint`); a checkpoint after an apply pass lets
  the journal tail advance.

Atomicity argument: home locations only ever receive data whose redo
records (and commit record, for ARU writes) are already durable, so
recovery can always reconstruct the committed state from checkpoint +
journal regardless of where a crash interrupts an apply pass.

Transactions are bounded by the journal: an ARU whose effects exceed
the ring raises :class:`JournalFullError` (the classic journaling
limitation; LLD has no such bound).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.core.aru import ARURecord, ARUTable
from repro.core.oplog import ListOp, ListOpKind
from repro.core.visibility import Visibility
from repro.disk.clock import CostMeter, CostModel
from repro.disk.simdisk import SimulatedDisk
from repro.errors import (
    BadBlockError,
    BadListError,
    ConcurrencyError,
    DiskCrashedError,
    LDError,
    MediaError,
)
from repro.ld.interface import LogicalDisk
from repro.ld.types import ARU_NONE, ARUId, BlockId, FIRST, ListId, PhysAddr, Predecessor
from repro.lld.cache import BlockCache
from repro.lld.checkpoint import (
    BlockSnapshot,
    CheckpointData,
    CheckpointManager,
    ListSnapshot,
)
from repro.lld.segment import SegmentBuffer, decode_segment
from repro.lld.summary import EntryKind, SummaryEntry, entry_size

_WRITE_ENTRY_SIZE = entry_size(EntryKind.WRITE)


class JournalFullError(LDError):
    """The journal ring cannot hold the in-flight operations."""


def _pack_home(addr: PhysAddr) -> int:
    return (addr.segment << 32) | addr.slot


def _unpack_home(packed: int) -> PhysAddr:
    return PhysAddr(packed >> 32, packed & 0xFFFFFFFF)


class _Block:
    """Committed-state record of one block."""

    __slots__ = (
        "allocated", "home", "successor", "list_id", "timestamp", "written",
    )

    def __init__(self, home: PhysAddr, timestamp: int) -> None:
        self.allocated = True
        self.home = home
        self.successor: Optional[BlockId] = None
        self.list_id: Optional[ListId] = None
        self.timestamp = timestamp
        #: False until the first committed write: the home slot may
        #: still hold a previous tenant's bytes, so fresh blocks read
        #: as zeros without touching it.
        self.written = False


class _List:
    """Committed-state record of one list."""

    __slots__ = ("first", "last", "count", "timestamp")

    def __init__(self, timestamp: int) -> None:
        self.first: Optional[BlockId] = None
        self.last: Optional[BlockId] = None
        self.count = 0
        self.timestamp = timestamp


class _ShadowBlock:
    """Per-ARU overlay of one block (copy-on-write of _Block)."""

    __slots__ = ("allocated", "successor", "list_id", "data", "timestamp")

    def __init__(self, base: Optional[_Block], timestamp: int) -> None:
        if base is not None:
            self.allocated = base.allocated
            self.successor = base.successor
            self.list_id = base.list_id
        else:
            self.allocated = False
            self.successor = None
            self.list_id = None
        self.data: Optional[bytes] = None
        self.timestamp = timestamp


class _ShadowList:
    """Per-ARU overlay of one list."""

    __slots__ = ("allocated", "first", "last", "count", "timestamp")

    def __init__(self, base: Optional[_List], timestamp: int) -> None:
        if base is not None:
            self.allocated = True
            self.first = base.first
            self.last = base.last
            self.count = base.count
        else:
            self.allocated = False
            self.first = None
            self.last = None
            self.count = 0
        self.timestamp = timestamp


class JLD(LogicalDisk):
    """Journaling overwrite-in-place logical disk with ARUs.

    Args:
        disk: The simulated disk.
        journal_segments: Size of the journal ring.
        checkpoint_slot_segments: Segments per checkpoint slot.
        apply_low_water: Free journal segments that trigger an apply
            (+ checkpoint) pass.
        cost_model / visibility / cache_blocks / conflict_policy: As
            for :class:`repro.lld.lld.LLD`.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        journal_segments: int = 8,
        checkpoint_slot_segments: int = 2,
        apply_low_water: int = 2,
        cost_model: Optional[CostModel] = None,
        visibility: Visibility = Visibility.ARU_LOCAL,
        cache_blocks: int = 2048,
        conflict_policy: str = "raise",
    ) -> None:
        if conflict_policy not in ("raise", "skip"):
            raise ValueError(f"unknown conflict_policy {conflict_policy!r}")
        self.disk = disk
        self.geometry = disk.geometry
        self.clock = disk.clock
        self.meter = CostMeter(self.clock, cost_model or CostModel())
        self.visibility = visibility
        self.conflict_policy = conflict_policy
        self.concurrent = True  # interface parity with LLD

        self.checkpoints = CheckpointManager(disk, checkpoint_slot_segments)
        ckpt_end = self.checkpoints.reserved_segments
        if journal_segments < 2:
            raise ValueError("journal needs at least 2 segments")
        self.journal_base = ckpt_end
        self.journal_segments = journal_segments
        self.home_base = ckpt_end + journal_segments
        if self.home_base >= self.geometry.num_segments - 1:
            raise ValueError("no room left for the home region")
        self.apply_low_water = max(1, apply_low_water)

        self.blocks: Dict[BlockId, _Block] = {}
        self.lists: Dict[ListId, _List] = {}
        self.pending: Dict[BlockId, Tuple[bytes, int]] = {}  # data, origin
        self.arus = ARUTable(concurrent=True)
        self.shadow_blocks: Dict[int, Dict[BlockId, _ShadowBlock]] = {}
        self.shadow_lists: Dict[int, Dict[ListId, _ShadowList]] = {}
        self.cache = BlockCache(cache_blocks)

        self._home_free: List[PhysAddr] = []
        for seg in range(self.geometry.num_segments - 1, self.home_base - 1, -1):
            for slot in range(self.geometry.max_data_blocks - 1, -1, -1):
                self._home_free.append(PhysAddr(seg, slot))

        self._next_block_id = 1
        self._next_list_id = 1
        self._next_seq = 1
        self._journal_seq: List[int] = [0] * journal_segments
        self._ring_index = 0
        self._ckpt_seq = 0
        self._ckpt_log_seq = 0
        self._commit_on_disk: Set[int] = set()
        self._pending_commit_arus: Set[int] = set()
        self._dead = False
        self._lock = threading.RLock()
        self._last_read_key: Optional[Tuple[int, int]] = None

        self.journal_writes = 0
        self.home_writes = 0
        self.applies = 0
        self.op_counts: Dict[str, int] = {}

        self._buffer: Optional[SegmentBuffer] = None
        self._buffer = self._open_buffer()

    # ==================================================================
    # ARUs
    # ==================================================================

    def begin_aru(self) -> ARUId:
        """Start an atomic recovery unit."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            self.meter.charge("aru_begin_us")
            record = self.arus.begin(self.clock.tick())
            self.shadow_blocks[int(record.aru_id)] = {}
            self.shadow_lists[int(record.aru_id)] = {}
            return record.aru_id

    def end_aru(self, aru: ARUId) -> None:
        """Commit: journal the shadow writes, replay the list log,
        seal with a commit record."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            self.meter.charge("aru_commit_us")
            record = self.arus.get(aru)
            key = int(aru)
            self._pending_commit_arus.add(key)
            overlay = self.shadow_blocks[key]
            for block_id, shadow in overlay.items():
                self.meter.charge("record_transition_us")
                if not shadow.allocated or shadow.data is None:
                    continue
                base = self.blocks.get(block_id)
                if base is None or not base.allocated:
                    self._conflict(
                        f"block {block_id} disappeared before ARU "
                        f"{aru} committed"
                    )
                    continue
                self._journal_write(block_id, shadow.data, key)
            for op in record.oplog:
                self.meter.charge("listop_replay_us")
                try:
                    self._apply_list_op(op, None, key)
                except LDError as exc:
                    self._conflict(f"replaying {op} for ARU {aru}: {exc}")
            self._journal_entry(
                SummaryEntry(
                    EntryKind.COMMIT, key, self.clock.tick(), record.op_count
                )
            )
            self.meter.charge("summary_entry_us")
            self.arus.finish(aru, committed=True)
            del self.shadow_blocks[key]
            del self.shadow_lists[key]

    def abort_aru(self, aru: ARUId) -> None:
        """Discard an ARU's shadow overlay."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            record = self.arus.finish(aru, committed=False)
            record.oplog.clear()
            self.shadow_blocks.pop(int(aru), None)
            self.shadow_lists.pop(int(aru), None)

    def _conflict(self, message: str) -> None:
        if self.conflict_policy == "raise":
            raise ConcurrencyError(message)
        self._count("replay_conflicts_skipped")

    # ==================================================================
    # Blocks and lists
    # ==================================================================

    def new_list(self, aru: Optional[ARUId] = None) -> ListId:
        """Allocate a list (committed immediately, as the semantics
        require)."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            self._count("new_list")
            record = self.arus.get(aru) if aru is not None else None
            list_id = ListId(self._next_list_id)
            self._next_list_id += 1
            self.meter.charge("table_access_us")
            if aru is not None:
                self.meter.charge("aru_alloc_us")
            ts = self.clock.tick()
            self._journal_entry(
                SummaryEntry(EntryKind.NEW_LIST, 0, ts, int(list_id))
            )
            self.meter.charge("summary_entry_us")
            self.lists[list_id] = _List(ts)
            if record is not None:
                record.op_count += 1
            return list_id

    def new_block(
        self,
        list_id: ListId,
        predecessor: Predecessor = FIRST,
        aru: Optional[ARUId] = None,
    ) -> BlockId:
        """Allocate a block at a fresh home location; the insertion
        follows the issuing stream (shadow for ARUs)."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            self._count("new_block")
            record = self.arus.get(aru) if aru is not None else None
            list_view = self._view_list(list_id, aru)
            if list_view is None or not getattr(list_view, "allocated", True):
                raise BadListError(int(list_id))
            if predecessor is not FIRST:
                pred_view = self._view_block(predecessor, aru)
                if (
                    pred_view is None
                    or not pred_view.allocated
                    or pred_view.list_id != list_id
                ):
                    raise BadBlockError(
                        int(predecessor), f"not a member of list {list_id}"
                    )
            if not self._home_free:
                raise LDError("home region is full")
            block_id = BlockId(self._next_block_id)
            self._next_block_id += 1
            home = self._home_free.pop()
            self.meter.charge("table_access_us")
            if aru is not None:
                self.meter.charge("aru_alloc_us")
            ts = self.clock.tick()
            self._journal_entry(
                SummaryEntry(
                    EntryKind.ALLOC_BLOCK, 0, ts, int(block_id),
                    _pack_home(home),
                )
            )
            self.meter.charge("summary_entry_us")
            self.blocks[block_id] = _Block(home, ts)
            op = ListOp(
                ListOpKind.INSERT,
                list_id,
                block_id,
                None if predecessor is FIRST else predecessor,
            )
            if record is not None:
                record.op_count += 1
                self._apply_list_op(op, record, 0)
                record.oplog.append(op, self.meter)
            else:
                self._apply_list_op(op, None, 0)
            return block_id

    def delete_block(self, block_id: BlockId, aru: Optional[ARUId] = None) -> None:
        """Unlink and deallocate a block."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            self._count("delete_block")
            record = self.arus.get(aru) if aru is not None else None
            view = self._view_block(block_id, aru)
            if view is None or not view.allocated:
                raise BadBlockError(int(block_id))
            op = ListOp(
                ListOpKind.DELETE_BLOCK,
                view.list_id if view.list_id is not None else ListId(0),
                block_id,
            )
            if record is not None:
                record.op_count += 1
                self._apply_list_op(op, record, 0)
                record.oplog.append(op, self.meter)
            else:
                self._apply_list_op(op, None, 0)

    def delete_list(self, list_id: ListId, aru: Optional[ARUId] = None) -> None:
        """Deallocate a list and its members (from the head)."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            self._count("delete_list")
            record = self.arus.get(aru) if aru is not None else None
            view = self._view_list(list_id, aru)
            if view is None or not getattr(view, "allocated", True):
                raise BadListError(int(list_id))
            op = ListOp(ListOpKind.DELETE_LIST, list_id)
            if record is not None:
                record.op_count += 1
                self._apply_list_op(op, record, 0)
                record.oplog.append(op, self.meter)
            else:
                self._apply_list_op(op, None, 0)

    def write(
        self, block_id: BlockId, data: bytes, aru: Optional[ARUId] = None
    ) -> None:
        """Write a block: to the ARU's shadow overlay, or journal+
        pending for simple operations."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            self._count("write")
            if len(data) > self.geometry.block_size:
                raise ValueError("data exceeds block size")
            record = self.arus.get(aru) if aru is not None else None
            view = self._view_block(block_id, aru)
            if view is None or not view.allocated:
                raise BadBlockError(int(block_id))
            if len(data) < self.geometry.block_size:
                data = data + b"\x00" * (self.geometry.block_size - len(data))
            if record is not None:
                record.op_count += 1
                shadow = self._shadow_block(block_id, record)
                shadow.data = data
                shadow.timestamp = self.clock.tick()
                self.meter.charge("block_copy_us")
            else:
                self._journal_write(block_id, data, 0)

    def read(self, block_id: BlockId, aru: Optional[ARUId] = None) -> bytes:
        """Read under the configured visibility policy."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            self._count("read")
            if aru is not None:
                self.arus.get(aru)
            shadow = self._visible_shadow_block(block_id, aru)
            base = self.blocks.get(block_id)
            if shadow is not None:
                if not shadow.allocated:
                    raise BadBlockError(int(block_id), "deallocated")
                self.meter.charge("block_read_us")
                if shadow.data is not None:
                    return shadow.data
            elif base is None or not base.allocated:
                raise BadBlockError(int(block_id))
            else:
                self.meter.charge("block_read_us")
            pending = self.pending.get(block_id)
            if pending is not None:
                return pending[0]
            if base is None or not base.written:
                return b"\x00" * self.geometry.block_size
            return self._read_home(base.home)

    def list_blocks(
        self, list_id: ListId, aru: Optional[ARUId] = None
    ) -> List[BlockId]:
        """Enumerate a list under the visibility policy."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            self._count("list_blocks")
            if aru is not None:
                self.arus.get(aru)
            view = self._visible_list_view(list_id, aru)
            if view is None or not getattr(view, "allocated", True):
                raise BadListError(int(list_id))
            members: List[BlockId] = []
            cursor = view.first
            while cursor is not None:
                members.append(cursor)
                block_view = self._visible_block_view(cursor, aru)
                if block_view is None:
                    raise BadBlockError(
                        int(cursor), f"list {list_id} references missing block"
                    )
                cursor = block_view.successor
                if len(members) > len(self.blocks) + 1:
                    raise LDError(f"cycle detected in list {list_id}")
            return members

    def flush(self) -> None:
        """Seal and write the journal buffer: everything committed is
        now durable (homes are updated lazily by apply passes)."""
        with self._lock:
            self._check_alive()
            self.meter.charge("ld_call_us")
            self._count("flush")
            self._flush_journal()

    # ==================================================================
    # Views: shadow overlay -> committed
    # ==================================================================

    def _visible_shadow_block(self, block_id, aru) -> Optional[_ShadowBlock]:
        if self.visibility is Visibility.COMMITTED_ONLY:
            return None
        if self.visibility is Visibility.ARU_LOCAL:
            if aru is None:
                return None
            self.meter.charge("chain_hop_us")
            return self.shadow_blocks.get(int(aru), {}).get(block_id)
        newest = None
        for overlay in self.shadow_blocks.values():
            self.meter.charge("chain_hop_us")
            candidate = overlay.get(block_id)
            if candidate is not None and (
                newest is None or candidate.timestamp > newest.timestamp
            ):
                newest = candidate
        return newest

    def _visible_block_view(self, block_id, aru):
        shadow = self._visible_shadow_block(block_id, aru)
        if shadow is not None:
            return shadow
        return self.blocks.get(block_id)

    def _visible_list_view(self, list_id, aru):
        if self.visibility is Visibility.ARU_LOCAL and aru is not None:
            shadow = self.shadow_lists.get(int(aru), {}).get(list_id)
            if shadow is not None:
                return shadow
        elif self.visibility is Visibility.MOST_RECENT_SHADOW:
            newest = None
            for overlay in self.shadow_lists.values():
                candidate = overlay.get(list_id)
                if candidate is not None and (
                    newest is None or candidate.timestamp > newest.timestamp
                ):
                    newest = candidate
            if newest is not None:
                return newest
        return self.lists.get(list_id)

    def _view_block(self, block_id, aru):
        """Modification view: own shadow -> committed."""
        self.meter.charge("table_access_us")
        if aru is not None:
            shadow = self.shadow_blocks.get(int(aru), {}).get(block_id)
            if shadow is not None:
                return shadow
        return self.blocks.get(block_id)

    def _view_list(self, list_id, aru):
        self.meter.charge("table_access_us")
        if aru is not None:
            shadow = self.shadow_lists.get(int(aru), {}).get(list_id)
            if shadow is not None:
                return shadow
        return self.lists.get(list_id)

    def _shadow_block(self, block_id, record: ARURecord) -> _ShadowBlock:
        overlay = self.shadow_blocks[int(record.aru_id)]
        shadow = overlay.get(block_id)
        if shadow is None:
            shadow = _ShadowBlock(self.blocks.get(block_id), self.clock.tick())
            overlay[block_id] = shadow
            self.meter.charge("record_create_us")
        return shadow

    def _shadow_list(self, list_id, record: ARURecord) -> _ShadowList:
        overlay = self.shadow_lists[int(record.aru_id)]
        shadow = overlay.get(list_id)
        if shadow is None:
            shadow = _ShadowList(self.lists.get(list_id), self.clock.tick())
            overlay[list_id] = shadow
            self.meter.charge("record_create_us")
        return shadow

    # ==================================================================
    # List operations (shared: shadow execution and committed/replay)
    # ==================================================================

    def _apply_list_op(
        self, op: ListOp, record: Optional[ARURecord], aru_tag: int
    ) -> None:
        if op.kind is ListOpKind.INSERT:
            self._op_insert(op, record, aru_tag)
        elif op.kind is ListOpKind.DELETE_BLOCK:
            self._op_delete_block(op, record, aru_tag)
        else:
            self._op_delete_list(op, record, aru_tag)

    def _op_insert(self, op, record, aru_tag) -> None:
        aru = record.aru_id if record is not None else None
        list_view = self._view_list(op.list_id, aru)
        if list_view is None or not getattr(list_view, "allocated", True):
            raise BadListError(int(op.list_id))
        block_view = self._view_block(op.block_id, aru)
        if block_view is None or not block_view.allocated:
            raise BadBlockError(int(op.block_id))
        if block_view.list_id is not None:
            raise ConcurrencyError(
                f"block {op.block_id} is already in list {block_view.list_id}"
            )
        if op.predecessor is not None:
            pred_view = self._view_block(op.predecessor, aru)
            if (
                pred_view is None
                or not pred_view.allocated
                or pred_view.list_id != op.list_id
            ):
                raise BadBlockError(
                    int(op.predecessor), f"not a member of list {op.list_id}"
                )
        ts = self.clock.tick()
        if record is None:
            self._journal_entry(
                SummaryEntry(
                    EntryKind.LINK, aru_tag, ts, int(op.list_id),
                    int(op.block_id),
                    int(op.predecessor) if op.predecessor is not None else 0,
                )
            )
            self.meter.charge("summary_entry_us")
            lst = self.lists[op.list_id]
            blk = self.blocks[op.block_id]
            pred = self.blocks.get(op.predecessor) if op.predecessor else None
        else:
            lst = self._shadow_list(op.list_id, record)
            blk = self._shadow_block(op.block_id, record)
            pred = (
                self._shadow_block(op.predecessor, record)
                if op.predecessor is not None
                else None
            )
        if op.predecessor is None:
            blk.successor = lst.first
            if lst.first is None:
                lst.last = op.block_id
            lst.first = op.block_id
        else:
            blk.successor = pred.successor
            pred.successor = op.block_id
            pred.timestamp = ts
            if lst.last == op.predecessor:
                lst.last = op.block_id
        blk.list_id = op.list_id
        blk.timestamp = ts
        lst.count += 1
        lst.timestamp = ts

    def _op_delete_block(self, op, record, aru_tag) -> None:
        aru = record.aru_id if record is not None else None
        view = self._view_block(op.block_id, aru)
        if view is None or not view.allocated:
            raise BadBlockError(int(op.block_id))
        list_id = view.list_id
        predecessor = (
            self._find_predecessor(list_id, op.block_id, aru)
            if list_id is not None
            else None
        )
        ts = self.clock.tick()
        if record is None:
            self._journal_entry(
                SummaryEntry(EntryKind.DELETE_BLOCK, aru_tag, ts, int(op.block_id))
            )
            self.meter.charge("summary_entry_us")
            blk = self.blocks[op.block_id]
            lst = self.lists.get(list_id) if list_id is not None else None
            pred = self.blocks.get(predecessor) if predecessor else None
        else:
            blk = self._shadow_block(op.block_id, record)
            lst = (
                self._shadow_list(list_id, record)
                if list_id is not None
                else None
            )
            pred = (
                self._shadow_block(predecessor, record)
                if predecessor is not None
                else None
            )
        if lst is not None:
            if predecessor is None:
                lst.first = blk.successor
            else:
                pred.successor = blk.successor
                pred.timestamp = ts
            if lst.last == op.block_id:
                lst.last = predecessor
            lst.count -= 1
            lst.timestamp = ts
        self._dealloc_block(op.block_id, blk, record, ts)

    def _op_delete_list(self, op, record, aru_tag) -> None:
        aru = record.aru_id if record is not None else None
        view = self._view_list(op.list_id, aru)
        if view is None or not getattr(view, "allocated", True):
            raise BadListError(int(op.list_id))
        ts = self.clock.tick()
        if record is None:
            self._journal_entry(
                SummaryEntry(EntryKind.DELETE_LIST, aru_tag, ts, int(op.list_id))
            )
            self.meter.charge("summary_entry_us")
            lst = self.lists[op.list_id]
        else:
            lst = self._shadow_list(op.list_id, record)
        cursor = lst.first
        while cursor is not None:
            if record is None:
                blk = self.blocks[cursor]
            else:
                blk = self._shadow_block(cursor, record)
            nxt = blk.successor
            self._dealloc_block(cursor, blk, record, ts)
            cursor = nxt
        lst.first = None
        lst.last = None
        lst.count = 0
        lst.timestamp = ts
        if record is None:
            del self.lists[op.list_id]
        else:
            lst.allocated = False

    def _dealloc_block(self, block_id, blk, record, ts) -> None:
        if record is None:
            self.meter.charge("block_dealloc_us")
            base = self.blocks.pop(block_id, None)
            self.pending.pop(block_id, None)
            if base is not None:
                # The home slot will be handed to a future block: a
                # stale cache entry there would serve the dead
                # block's bytes.
                self.cache.invalidate(base.home)
                self._home_free.append(base.home)
        else:
            blk.allocated = False
            blk.data = None
        blk.successor = None
        blk.list_id = None
        blk.timestamp = ts

    def _find_predecessor(self, list_id, block_id, aru) -> Optional[BlockId]:
        view = self._view_list(list_id, aru)
        if view is None or not getattr(view, "allocated", True):
            raise BadListError(int(list_id))
        if view.first == block_id:
            return None
        cursor = view.first
        while cursor is not None:
            self.meter.charge("pred_search_step_us")
            node = self._view_block(cursor, aru)
            if node is None:
                break
            if node.successor == block_id:
                return cursor
            cursor = node.successor
        raise BadBlockError(int(block_id), f"not found in list {list_id}")

    # ==================================================================
    # Journal machinery
    # ==================================================================

    def _open_buffer(self) -> SegmentBuffer:
        segment = self._reserve_ring_slot()
        buffer = SegmentBuffer(self.geometry, self._next_seq, segment)
        self._next_seq += 1
        return buffer

    def _reserve_ring_slot(self) -> int:
        """Pick the next journal ring slot, applying/checkpointing if
        the slot still holds live (post-checkpoint) records."""
        for _attempt in range(2):
            index = self._ring_index
            if self._journal_seq[index] <= self._ckpt_log_seq:
                self._ring_index = (index + 1) % self.journal_segments
                return self.journal_base + index
            # The slot ahead still carries unsuperseded history: apply
            # pending data and checkpoint so the tail can advance.
            self.apply()
        raise JournalFullError(
            "journal ring is full of unapplied records (an ARU larger "
            "than the journal, or apply is blocked mid-commit)"
        )

    def _journal_write(self, block_id: BlockId, data: bytes, origin: int) -> None:
        """Write-ahead: redo payload + entry into the journal buffer."""
        new_blocks = 0 if self._buffer.contains_block(block_id) else 1
        if not self._buffer.has_room(new_blocks, _WRITE_ENTRY_SIZE):
            self._seal_journal_segment()
        addr = self._buffer.add_block(block_id, data)
        self.meter.charge("block_copy_us")
        self._buffer.add_entry(
            SummaryEntry(
                EntryKind.WRITE, origin, self.clock.tick(), int(block_id),
                addr.slot,
            )
        )
        self.meter.charge("summary_entry_us")
        self.pending[block_id] = (data, origin)
        block = self.blocks.get(block_id)
        if block is not None:
            block.timestamp = self.clock.tick()
            block.written = True

    def _journal_entry(self, entry: SummaryEntry) -> None:
        if not self._buffer.has_room(0, entry.encoded_size()):
            self._seal_journal_segment()
        self._buffer.add_entry(entry)

    def _seal_journal_segment(self) -> None:
        buffer = self._buffer
        if buffer is None or buffer.is_empty:
            return
        # Detach first: the ring-slot reservation below may invoke
        # apply(), whose journal flush must see no active buffer.
        self._buffer = None
        image = buffer.seal()
        try:
            self.disk.write_segment(buffer.segment_no, image)
        except DiskCrashedError:
            self._dead = True
            raise
        self.journal_writes += 1
        self._journal_seq[buffer.segment_no - self.journal_base] = buffer.seq
        for entry in buffer.entries:
            if entry.kind is EntryKind.COMMIT:
                self._commit_on_disk.add(entry.aru_tag)
                self._pending_commit_arus.discard(entry.aru_tag)
        self._buffer = self._open_buffer()
        # Proactive apply: keep headroom in the ring so a burst (or a
        # larger ARU) doesn't hit the hard JournalFullError path.
        free = sum(1 for seq in self._journal_seq if seq <= self._ckpt_log_seq)
        if free <= self.apply_low_water and self.checkpoint_safe():
            self.apply()

    def _flush_journal(self) -> None:
        if self._buffer is not None and not self._buffer.is_empty:
            self._seal_journal_segment()

    # ==================================================================
    # Apply + checkpoint
    # ==================================================================

    def checkpoint_safe(self) -> bool:
        """True when no tagged records await their commit record."""
        return not self._pending_commit_arus

    def apply(self) -> int:
        """Write journaled data to home locations and checkpoint.

        Write-ahead ordering: the journal is flushed first, then only
        data whose origin ARU has a durable commit record is applied.
        Returns the number of home blocks written.
        """
        with self._lock:
            self._check_alive()
            self._flush_journal()
            applied = 0
            for block_id in list(self.pending):
                data, origin = self.pending[block_id]
                if origin and origin not in self._commit_on_disk:
                    continue  # uncommitted ARU data must not hit homes
                block = self.blocks.get(block_id)
                if block is None:
                    del self.pending[block_id]
                    continue
                offset = block.home.slot * self.geometry.block_size
                try:
                    self.disk.write_at(block.home.segment, offset, data)
                except DiskCrashedError:
                    self._dead = True
                    raise
                self.home_writes += 1
                self.meter.charge("block_copy_us")
                self.cache.put(block.home, data)
                del self.pending[block_id]
                applied += 1
            self.applies += 1
            if self.checkpoint_safe() and not self.pending:
                self._ckpt_seq += 1
                self.checkpoints.write(self._snapshot())
                self._ckpt_log_seq = self._next_seq - 2  # last sealed seq
            return applied

    def _snapshot(self) -> CheckpointData:
        blocks = [
            BlockSnapshot(
                block_id=int(block_id),
                successor=int(block.successor) if block.successor else 0,
                list_id=int(block.list_id) if block.list_id else 0,
                timestamp=block.timestamp,
                segment=block.home.segment,
                slot=block.home.slot,
                has_addr=block.written,
            )
            for block_id, block in self.blocks.items()
        ]
        lists = [
            ListSnapshot(
                list_id=int(list_id),
                first=int(lst.first) if lst.first else 0,
                last=int(lst.last) if lst.last else 0,
                count=lst.count,
                timestamp=lst.timestamp,
            )
            for list_id, lst in self.lists.items()
        ]
        return CheckpointData(
            ckpt_seq=self._ckpt_seq,
            last_log_seq=self._next_seq - 2,
            next_block_id=self._next_block_id,
            next_list_id=self._next_list_id,
            next_aru_id=self.arus.next_id,
            blocks=blocks,
            lists=lists,
            segments={},
        )

    # ==================================================================
    # Reads from home locations
    # ==================================================================

    def _read_home(self, home: PhysAddr) -> bytes:
        cached = self.cache.get(home)
        if cached is not None:
            return cached
        offset = home.slot * self.geometry.block_size
        block_size = self.geometry.block_size
        sequential = self._last_read_key == (home.segment, home.slot - 1)
        if sequential:
            span = min(32, self.geometry.max_data_blocks - home.slot)
            raw = self.disk.read(home.segment, offset, span * block_size)
            for index in range(span):
                self.cache.put(
                    PhysAddr(home.segment, home.slot + index),
                    raw[index * block_size : (index + 1) * block_size],
                )
            data = raw[:block_size]
        else:
            data = self.disk.read(home.segment, offset, block_size)
            self.cache.put(home, data)
        self._last_read_key = (home.segment, home.slot)
        return data

    # ==================================================================
    # Misc
    # ==================================================================

    def sweep_orphan_blocks(self) -> List[BlockId]:
        """Free allocated blocks that belong to no list (after aborted
        or undone ARUs), as the paper's consistency check does."""
        with self._lock:
            if self.arus.active_count:
                raise ConcurrencyError(
                    "cannot sweep orphans while ARUs are active"
                )
            orphans = [
                block_id
                for block_id, block in self.blocks.items()
                if block.list_id is None
            ]
            for block_id in orphans:
                self.delete_block(block_id)
            return orphans

    def _check_alive(self) -> None:
        if self._dead or self.disk.crashed:
            self._dead = True
            raise DiskCrashedError("logical disk lost its backing store")

    def _count(self, name: str) -> None:
        self.op_counts[name] = self.op_counts.get(name, 0) + 1

    def stats(self) -> dict:
        """Operation and I/O statistics."""
        return {
            "ops": dict(self.op_counts),
            "journal_writes": self.journal_writes,
            "home_writes": self.home_writes,
            "applies": self.applies,
            "pending_blocks": len(self.pending),
            "cpu_us": dict(self.meter.charged_us),
            "disk": self.disk.stats(),
        }


def recover_jld(disk: SimulatedDisk, sweep_orphans: bool = True, **kwargs):
    """Recover a :class:`JLD` from a (crashed) disk.

    Loads the newest checkpoint, replays journal segments newer than
    it (commit-record gated), rebuilds the home free list, sweeps
    orphaned allocations, and returns ``(jld, report)`` where report
    is a small dict of what was found.
    """
    jld = JLD(disk, **kwargs)
    # Discard the fresh instance's empty state and rebuild from disk.
    ckpt = jld.checkpoints.load()
    report = {
        "checkpoint_seq": ckpt.ckpt_seq,
        "segments_replayed": 0,
        "entries_replayed": 0,
        "entries_discarded": 0,
        "arus_committed": 0,
        "orphans_freed": [],
    }
    jld._ckpt_seq = ckpt.ckpt_seq
    jld._ckpt_log_seq = ckpt.last_log_seq
    jld._next_block_id = ckpt.next_block_id
    jld._next_list_id = ckpt.next_list_id
    jld.arus.set_next_id(ckpt.next_aru_id)
    jld.blocks.clear()
    jld.lists.clear()
    for snap in ckpt.blocks:
        block = _Block(PhysAddr(snap.segment, snap.slot), snap.timestamp)
        block.successor = BlockId(snap.successor) if snap.successor else None
        block.list_id = ListId(snap.list_id) if snap.list_id else None
        block.written = snap.has_addr
        jld.blocks[BlockId(snap.block_id)] = block
    for snap in ckpt.lists:
        lst = _List(snap.timestamp)
        lst.first = BlockId(snap.first) if snap.first else None
        lst.last = BlockId(snap.last) if snap.last else None
        lst.count = snap.count
        jld.lists[ListId(snap.list_id)] = lst

    # Scan the journal ring.
    decoded_segments = []
    for index in range(jld.journal_segments):
        seg = jld.journal_base + index
        try:
            raw = disk.read_segment(seg)
        except MediaError:
            continue
        decoded = decode_segment(raw, disk.geometry, seg)
        if decoded is not None and decoded.seq > ckpt.last_log_seq:
            decoded_segments.append((decoded, index))
    decoded_segments.sort(key=lambda pair: pair[0].seq)
    committed = {
        entry.aru_tag
        for decoded, _index in decoded_segments
        for entry in decoded.entries
        if entry.kind is EntryKind.COMMIT
    }
    report["arus_committed"] = len(committed)
    max_seq = ckpt.last_log_seq
    max_aru = ckpt.next_aru_id - 1
    for decoded, index in decoded_segments:
        report["segments_replayed"] += 1
        jld._journal_seq[index] = decoded.seq
        max_seq = max(max_seq, decoded.seq)
        for entry in decoded.entries:
            max_aru = max(max_aru, entry.aru_tag)
            if entry.aru_tag and entry.aru_tag not in committed:
                if entry.kind is not EntryKind.COMMIT:
                    report["entries_discarded"] += 1
                continue
            report["entries_replayed"] += 1
            _replay_entry(jld, decoded, entry)
    jld.arus.set_next_id(max_aru + 1)
    jld._next_seq = max_seq + 1
    jld._ring_index = (
        (decoded_segments[-1][1] + 1) % jld.journal_segments
        if decoded_segments
        else 0
    )
    jld._commit_on_disk = set(committed)

    # Rebuild the home free list.
    used = {block.home for block in jld.blocks.values()}
    jld._home_free = [
        PhysAddr(seg, slot)
        for seg in range(jld.geometry.num_segments - 1, jld.home_base - 1, -1)
        for slot in range(jld.geometry.max_data_blocks - 1, -1, -1)
        if PhysAddr(seg, slot) not in used
    ]
    jld.cache.invalidate_all()
    # Re-open a fresh buffer now that ring state is known.
    jld._buffer = jld._open_buffer()
    if sweep_orphans:
        report["orphans_freed"] = [int(b) for b in jld.sweep_orphan_blocks()]
    return jld, report


def _replay_entry(jld: JLD, decoded, entry: SummaryEntry) -> None:
    kind = entry.kind
    if kind is EntryKind.ALLOC_BLOCK:
        block = _Block(_unpack_home(entry.b), entry.timestamp)
        jld.blocks[BlockId(entry.a)] = block
        jld._next_block_id = max(jld._next_block_id, entry.a + 1)
    elif kind is EntryKind.NEW_LIST:
        jld.lists[ListId(entry.a)] = _List(entry.timestamp)
        jld._next_list_id = max(jld._next_list_id, entry.a + 1)
    elif kind is EntryKind.WRITE:
        block_id = BlockId(entry.a)
        if block_id in jld.blocks:
            jld.pending[block_id] = (decoded.slot_data(entry.b), 0)
            jld.blocks[block_id].written = True
    elif kind is EntryKind.DELETE_BLOCK:
        block = jld.blocks.pop(BlockId(entry.a), None)
        jld.pending.pop(BlockId(entry.a), None)
        if block is not None and block.list_id is not None:
            lst = jld.lists.get(block.list_id)
            if lst is not None:
                _unlink_replay(jld, lst, BlockId(entry.a), block)
    elif kind is EntryKind.DELETE_LIST:
        lst = jld.lists.pop(ListId(entry.a), None)
        if lst is not None:
            cursor = lst.first
            while cursor is not None:
                member = jld.blocks.pop(cursor, None)
                jld.pending.pop(cursor, None)
                cursor = member.successor if member else None
    elif kind is EntryKind.LINK:
        lst = jld.lists.get(ListId(entry.a))
        blk = jld.blocks.get(BlockId(entry.b))
        if lst is None or blk is None:
            return
        if entry.c == 0:
            blk.successor = lst.first
            if lst.first is None:
                lst.last = BlockId(entry.b)
            lst.first = BlockId(entry.b)
        else:
            pred = jld.blocks.get(BlockId(entry.c))
            if pred is None:
                return
            blk.successor = pred.successor
            pred.successor = BlockId(entry.b)
            if lst.last == BlockId(entry.c):
                lst.last = BlockId(entry.b)
        blk.list_id = ListId(entry.a)
        lst.count += 1


def _unlink_replay(jld: JLD, lst: _List, block_id: BlockId, block: _Block) -> None:
    if lst.first == block_id:
        lst.first = block.successor
        if lst.last == block_id:
            lst.last = None
        lst.count -= 1
        return
    cursor = lst.first
    while cursor is not None:
        node = jld.blocks.get(cursor)
        if node is None:
            return
        if node.successor == block_id:
            node.successor = block.successor
            if lst.last == block_id:
                lst.last = cursor
            lst.count -= 1
            return
        cursor = node.successor
