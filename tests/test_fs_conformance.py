"""File-system conformance across logical-disk substrates.

MinixFS is written against the abstract LD interface; these tests run
its key behaviours on both LLD and JLD, proving the FS never depends
on substrate internals (the Logical Disk's exchangeability promise,
Section 2)."""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.fs import MinixFS, fsck
from repro.jld import JLD, recover_jld
from repro.lld.lld import LLD
from repro.lld.recovery import recover
from repro.workloads.generator import random_fs_ops, verify_against_model


def _make(kind):
    geo = DiskGeometry.small(num_segments=160)
    disk = SimulatedDisk(geo)
    if kind == "lld":
        ld = LLD(disk, checkpoint_slot_segments=2)
    else:
        ld = JLD(disk, journal_segments=8, checkpoint_slot_segments=2)
    return disk, MinixFS.mkfs(ld, n_inodes=256)


def _recover_fs(kind, disk):
    if kind == "lld":
        ld, _ = recover(disk.power_cycle(), checkpoint_slot_segments=2)
    else:
        ld, _ = recover_jld(
            disk.power_cycle(), journal_segments=8,
            checkpoint_slot_segments=2,
        )
    return MinixFS.mount(ld)


@pytest.fixture(params=["lld", "jld"])
def setup(request):
    disk, fs = _make(request.param)
    return request.param, disk, fs


class TestFSConformance:
    def test_namespace_operations(self, setup):
        _kind, _disk, fs = setup
        fs.mkdir("/docs")
        fs.create("/docs/file.txt")
        fs.write_file("/docs/file.txt", b"portable bytes")
        fs.link("/docs/file.txt", "/docs/alias.txt")
        fs.rename("/docs/file.txt", "/moved.txt")
        fs.truncate("/docs/alias.txt", 8)
        assert fs.read_file("/moved.txt") == b"portable"
        assert fs.stat("/moved.txt").nlinks == 2
        assert sorted(fs.listdir("/")) == ["docs", "moved.txt"]
        assert fsck(fs).clean

    def test_random_ops_match_model(self, setup):
        _kind, _disk, fs = setup
        trace = random_fs_ops(fs, n_ops=120, seed=11)
        assert verify_against_model(fs, trace.expected) == []
        assert fsck(fs).clean

    def test_sync_and_remount(self, setup):
        kind, disk, fs = setup
        trace = random_fs_ops(fs, n_ops=60, seed=3, sync_every=None)
        fs.sync()
        mounted = _recover_fs(kind, disk)
        assert verify_against_model(mounted, trace.expected) == []
        assert fsck(mounted).clean

    def test_statvfs_and_du_agree(self, setup):
        _kind, _disk, fs = setup
        fs.mkdir("/d")
        fs.create("/d/a")
        fs.write_file("/d/a", b"q" * 6000)
        fs.create("/b")
        fs.write_file("/b", b"w" * 1000)
        stats = fs.statvfs()
        assert stats["file_bytes"] == fs.du("/") == 7000
        assert stats["used_bytes"] >= stats["file_bytes"]  # + dir data
        assert stats["files"] == 2

    def test_unsynced_work_lost_whole(self, setup):
        """Crash before sync: files created since the last sync are
        absent entirely — never half-present — on both substrates."""
        kind, disk, fs = setup
        fs.create("/durable")
        fs.write_file("/durable", b"kept")
        fs.sync()
        fs.create("/volatile")
        fs.write_file("/volatile", b"maybe lost")
        mounted = _recover_fs(kind, disk)
        assert mounted.read_file("/durable") == b"kept"
        if mounted.exists("/volatile"):
            assert mounted.read_file("/volatile") == b"maybe lost"
        assert fsck(mounted).clean
