"""The three version classes of Section 3.1.

A logical block (or list) can exist in up to ``n + 2`` versions at
once, for ``n`` active ARUs: one *shadow* version per ARU that
modified it, one *committed* version (ended ARUs and finished simple
operations, not yet on disk), and one *persistent* version (on disk,
commit record flushed).  Recovery is always to the persistent
version.
"""

from __future__ import annotations

import enum


class VersionState(enum.IntEnum):
    """Which class a block/list version belongs to.

    The integer order matches the standardized search order of
    Section 3.3 read in reverse: a lookup works from SHADOW down
    through COMMITTED to PERSISTENT.
    """

    #: On disk; the owning ARU's commit record has been flushed.
    PERSISTENT = 0
    #: ARU committed (or simple operation finished) but not flushed.
    COMMITTED = 1
    #: Belongs to an ARU that has not committed yet.
    SHADOW = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()
