"""The persistent-state tables: block-number-map and list-table.

For each logical block the block-number-map records the physical
address, allocation state, position within its list (the successor),
and the time-stamp of the last write; the list-table records the
first and last block of each list (Section 4, Figure 3).  Both
double as the roots of the same-identifier chains of alternative
(shadow/committed) records.

Wall-clock layout: LLD allocates block and list identifiers densely
from 1, so both tables keep their chain roots in a flat list indexed
by identifier — one bounds check and one list index on the hot
lookup path instead of hashing — with a spill dict for any sparse
identifiers outside the dense range (imported images, adversarial
ids).  Iteration is in ascending identifier order, deterministic and
identical across every scan/replay variant, which the differential
recovery tests rely on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.records import BlockVersion, ChainRoot, ListVersion
from repro.core.versions import VersionState
from repro.ld.types import BlockId, ListId

#: How far past the current dense range an identifier may land while
#: still being stored densely (the gap is filled with None).  Beyond
#: this, the identifier goes to the sparse spill dict.
_DENSE_SLACK = 1024


class _RootTable:
    """Chain-root storage shared by the block map and the list table.

    A flat list ``_dense`` holds roots for identifiers ``0 ..
    len-1`` (identifier 0 is never used; the slot is a sacrificial
    placeholder that keeps indexing offset-free); ``_sparse`` catches
    outliers.  ``_count`` tracks live roots so ``__len__`` stays O(1).
    """

    __slots__ = ("_dense", "_sparse", "_count")

    def __init__(self) -> None:
        self._dense: List[Optional[ChainRoot]] = []
        self._sparse: Dict[int, ChainRoot] = {}
        self._count = 0

    def root(self, ident: int, create: bool = False) -> Optional[ChainRoot]:
        """Return the chain root for ``ident``.

        With ``create=True`` a fresh empty root is installed when the
        identifier has never been seen.
        """
        dense = self._dense
        if 0 <= ident < len(dense):
            found = dense[ident]
            if found is None and create:
                found = ChainRoot()
                dense[ident] = found
                self._count += 1
            return found
        found = self._sparse.get(ident)
        if found is None and create:
            found = ChainRoot()
            if 0 <= ident < len(dense) + _DENSE_SLACK:
                dense.extend([None] * (ident + 1 - len(dense)))
                dense[ident] = found
            else:
                self._sparse[ident] = found
            self._count += 1
        return found

    def drop_if_empty(self, ident: int) -> None:
        """Remove the table entry once no version remains."""
        dense = self._dense
        if 0 <= ident < len(dense):
            root = dense[ident]
            if root is not None and root.empty:
                dense[ident] = None
                self._count -= 1
            return
        root = self._sparse.get(ident)
        if root is not None and root.empty:
            del self._sparse[ident]
            self._count -= 1

    def __len__(self) -> int:
        return self._count

    def __contains__(self, ident: int) -> bool:
        dense = self._dense
        if 0 <= ident < len(dense):
            return dense[ident] is not None
        return ident in self._sparse

    def items(self) -> Iterator[Tuple[int, ChainRoot]]:
        """Iterate (identifier, root), ascending through the dense
        range, then any sparse outliers in ascending order."""
        for ident, root in enumerate(self._dense):
            if root is not None:
                yield ident, root
        if self._sparse:
            for ident in sorted(self._sparse):
                yield ident, self._sparse[ident]


class BlockNumberMap(_RootTable):
    """Logical block id -> chain root (persistent record + alternatives)."""

    __slots__ = ()

    def persistent_blocks(self) -> Iterator[Tuple[BlockId, BlockVersion]]:
        """Iterate (id, persistent record) for all persistent blocks."""
        for block_id, root in self.items():
            if root.persistent is not None:
                yield BlockId(block_id), root.persistent

    def install_persistent(self, record: BlockVersion) -> None:
        """Install a persistent record (recovery / checkpoint load)."""
        if record.state is not VersionState.PERSISTENT:
            raise ValueError("only persistent records belong in the map directly")
        self.root(record.block_id, create=True).persistent = record


class ListTable(_RootTable):
    """Logical list id -> chain root (persistent record + alternatives)."""

    __slots__ = ()

    def persistent_lists(self) -> Iterator[Tuple[ListId, ListVersion]]:
        """Iterate (id, persistent record) for all persistent lists."""
        for list_id, root in self.items():
            if root.persistent is not None:
                yield ListId(list_id), root.persistent

    def install_persistent(self, record: ListVersion) -> None:
        """Install a persistent record (recovery / checkpoint load)."""
        if record.state is not VersionState.PERSISTENT:
            raise ValueError("only persistent records belong in the table directly")
        self.root(record.list_id, create=True).persistent = record
