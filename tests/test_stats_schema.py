"""The frozen ``stats()`` schema: snapshot + conformance tests.

The snapshot below is a deliberate duplicate of
:data:`repro.obs.schema.STATS_SCHEMA` — flattened, sorted, typed.  A
failing comparison means the stats surface changed; if that change is
intentional, update *both* the schema module and this snapshot in the
same commit, so the surface never drifts silently.
"""

import pytest

from repro.obs.schema import (
    schema_paths,
    validate_artifact,
    validate_stats,
)

from tests.conftest import make_lld

#: The frozen surface.  Keep sorted; ``group.*`` marks an open group.
FROZEN_PATHS = [
    "active_arus:int",
    "arus_begun:int",
    "arus_committed:int",
    "cache_hits:int",
    "cache_misses:int",
    "cleanings:int",
    "cpu_counts.*:number",
    "cpu_us.*:number",
    "disk.batched_requests:int",
    "disk.batched_runs:int",
    "disk.busy_us:number",
    "disk.bytes_transferred:int",
    "disk.read_batches:int",
    "disk.reads:int",
    "disk.requests:int",
    "disk.sequential_requests:int",
    "disk.write_batched_requests:int",
    "disk.write_batched_runs:int",
    "disk.write_batches:int",
    "disk.writes:int",
    "free_segments:int",
    "group_commit.commits_grouped:int",
    "group_commit.enabled:bool",
    "group_commit.groups_flushed:int",
    "group_commit.parked:int",
    "obs.events_capacity:int",
    "obs.events_dropped:int",
    "obs.events_recorded:int",
    "obs.metrics_enabled:bool",
    "ops.*:int",
    "recovery.instant_restores:int",
    "recovery.on_demand_replays:int",
    "recovery.pending_segments:int",
    "recovery.restoring:bool",
    "recovery.watermark:int",
    "scrub.blocks_lost:int",
    "scrub.blocks_salvaged:int",
    "scrub.blocks_salvaged_stale:int",
    "scrub.degraded_reads:int",
    "scrub.pending_segments:int",
    "scrub.quarantined_segments:int",
    "scrub.salvaged_reads:int",
    "scrub.scrubs:int",
    "scrub.segments_quarantined:int",
    "scrub.unrecoverable_reads:int",
    "segments.avg_fill:number",
    "segments.data_bytes:int",
    "segments.flushed:int",
    "segments.min_fill:number-or-null",
    "segments.sealed:int",
    "segments.summary_bytes:int",
    "segments_flushed:int",
    "writeback.auto_drains:int",
    "writeback.depth:int",
    "writeback.drains:int",
    "writeback.max_depth_seen:int",
    "writeback.queued:int",
    "writeback.submitted:int",
]


class TestFrozenSchema:
    def test_snapshot(self):
        assert schema_paths() == FROZEN_PATHS, (
            "the stats() schema changed — if intentional, update "
            "FROZEN_PATHS and repro.obs.schema together"
        )

    def test_fresh_lld_conforms(self):
        assert validate_stats(make_lld().stats()) == []

    def test_worked_lld_conforms(self):
        ld = make_lld(
            writeback_depth=4,
            group_commit=True,
            group_commit_timeout_us=1e12,
        )
        lst = ld.new_list()
        for index in range(8):
            aru = ld.begin_aru()
            block = ld.new_block(lst, aru=aru)
            ld.write(block, bytes([index + 1]) * 64, aru=aru)
            ld.end_aru(aru)
        ld.flush()
        ld.read_many([block])
        ld.scrub()
        assert validate_stats(ld.stats()) == []

    def test_metrics_disabled_still_conforms(self):
        ld = make_lld(metrics=False)
        lst = ld.new_list()
        ld.write(ld.new_block(lst), b"x")
        ld.flush()
        stats = ld.stats()
        assert validate_stats(stats) == []
        assert stats["obs"]["metrics_enabled"] is False


class TestValidation:
    def test_detects_missing_key(self):
        stats = make_lld().stats()
        del stats["cache_hits"]
        assert any("cache_hits: missing" in p for p in validate_stats(stats))

    def test_detects_extra_key(self):
        stats = make_lld().stats()
        stats["surprise"] = 1
        stats["scrub"]["novel"] = 2
        problems = validate_stats(stats)
        assert any("surprise: not in the frozen schema" in p
                   for p in problems)
        assert any("scrub.novel: not in the frozen schema" in p
                   for p in problems)

    def test_detects_type_mismatch(self):
        stats = make_lld().stats()
        stats["cleanings"] = "three"
        stats["group_commit"]["enabled"] = 1  # int is not bool
        problems = validate_stats(stats)
        assert any("cleanings" in p for p in problems)
        assert any("group_commit.enabled" in p for p in problems)

    def test_open_groups_accept_any_keys(self):
        stats = make_lld().stats()
        stats["ops"]["some_future_op"] = 3
        assert validate_stats(stats) == []
        stats["ops"]["bad"] = "nope"
        assert any("ops.bad" in p for p in validate_stats(stats))

    def test_validate_artifact_shapes(self):
        stats = make_lld().stats()
        assert validate_artifact(stats) == []  # bare stats dict
        artifact = {
            "experiment": "x",
            "variants": {"v": {"stats": stats}},
        }
        assert validate_artifact(artifact) == []
        assert validate_artifact({"variants": {}}) != []
        assert any(
            "missing 'stats'" in p
            for p in validate_artifact({"variants": {"v": {}}})
        )

    def test_validate_artifact_reports_nested_problems(self):
        stats = make_lld().stats()
        del stats["free_segments"]
        problems = validate_artifact(
            {"variants": {"broken": {"stats": stats}}}
        )
        assert any(
            p.startswith("variants.broken.stats: free_segments")
            for p in problems
        )

    def test_cli_roundtrip(self, tmp_path, capsys):
        import json

        from repro.obs.schema import main

        good = tmp_path / "good.json"
        good.write_text(json.dumps(make_lld().stats()))
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"variants": {"v": {}}}))
        assert main([str(bad)]) == 1
        assert main([]) == 2
        capsys.readouterr()


class TestStatsAreRegistryBacked:
    """stats() is a thin view over the registry: the numbers must be
    the same object of record, not parallel hand-maintained state."""

    def test_counters_agree(self):
        ld = make_lld()
        lst = ld.new_list()
        for _index in range(5):
            ld.write(ld.new_block(lst), b"payload")
        ld.flush()
        stats = ld.stats()
        metrics = ld.obs.metrics
        assert stats["segments_flushed"] == metrics.value(
            "lld.segments.flushed"
        )
        assert stats["ops"] == metrics.group_values("lld.ops.")
        assert stats["segments"]["sealed"] == metrics.value(
            "lld.segments.sealed"
        )
        assert stats["scrub"]["scrubs"] == metrics.value("lld.scrub.scrubs")
        assert stats["writeback"]["submitted"] == metrics.value(
            "lld.writeback.submitted"
        )

    def test_pending_scrub_counts_stay_live(self):
        # pending/quarantined are gauges over the usage table, not
        # registry counters — they must still track reality.
        ld = make_lld()
        stats = ld.stats()
        assert stats["scrub"]["pending_segments"] == 0
        assert stats["scrub"]["quarantined_segments"] == 0


class TestShardedStatsShape:
    """Sharded volumes report per-shard frozen-schema stats plus an
    aggregate view that is *itself* frozen-schema-conformant, so
    existing consumers read an array's totals unchanged."""

    def make_array(self, n=3):
        from repro.disk.geometry import DiskGeometry
        from repro.shard import build_sharded

        vol = build_sharded(
            n,
            geometry=DiskGeometry.small(num_segments=32),
            checkpoint_slot_segments=2,
        )
        lists = [vol.new_list() for _ in range(n)]
        blocks = [vol.new_block(lst) for lst in lists]
        aru = vol.begin_aru()
        for block in blocks:
            vol.write(block, b"stats-payload", aru=aru)
        vol.end_aru(aru)
        return vol

    def test_per_shard_and_aggregate_conform(self):
        from repro.obs.schema import (
            is_sharded_stats,
            validate_any_stats,
            validate_sharded_stats,
        )

        stats = self.make_array().stats()
        assert is_sharded_stats(stats)
        assert validate_sharded_stats(stats) == []
        assert validate_any_stats(stats) == []
        assert sorted(stats["shards"]) == ["0", "1", "2"]
        for entry in stats["shards"].values():
            assert validate_stats(entry) == []
        assert validate_stats(stats["aggregate"]) == []

    def test_aggregate_sums_counters(self):
        stats = self.make_array().stats()
        per_shard = list(stats["shards"].values())
        agg = stats["aggregate"]
        assert agg["segments_flushed"] == sum(
            s["segments_flushed"] for s in per_shard
        )
        assert agg["arus_committed"] == sum(
            s["arus_committed"] for s in per_shard
        )
        assert agg["disk"]["writes"] == sum(
            s["disk"]["writes"] for s in per_shard
        )
        assert agg["obs"]["metrics_enabled"] is True

    def test_sharding_section(self):
        stats = self.make_array().stats()
        sharding = stats["sharding"]
        assert sharding["shards"] == 3
        assert sharding["commits_cross_shard"] == 1
        assert sharding["xids_issued"] == 1
        assert sharding["decided_pending"] == 1

    def test_validation_detects_sharded_drift(self):
        from repro.obs.schema import validate_sharded_stats

        stats = self.make_array().stats()
        del stats["shards"]["1"]["cache_hits"]
        stats["aggregate"]["surprise"] = 1
        stats["sharding"]["shards"] = "three"
        problems = validate_sharded_stats(stats)
        assert any(p.startswith("shards.1.cache_hits") for p in problems)
        assert any("aggregate.surprise" in p for p in problems)
        assert any("sharding.shards" in p for p in problems)

    def test_artifact_dispatches_on_shape(self):
        stats = self.make_array().stats()
        artifact = {
            "experiment": "shard",
            "variants": {
                "single": {"stats": make_lld().stats()},
                "sharded": {"stats": stats},
            },
        }
        assert validate_artifact(artifact) == []
        del stats["aggregate"]["cleanings"]
        assert any(
            "variants.sharded.stats: aggregate.cleanings" in p
            for p in validate_artifact(artifact)
        )

    def test_aggregate_of_single_dict_is_identity(self):
        from repro.obs.aggregate import aggregate_stats

        stats = make_lld().stats()
        assert aggregate_stats([stats]) == stats
