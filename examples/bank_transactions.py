#!/usr/bin/env python3
"""ACID transactions built on atomic recovery units.

The paper positions ARUs as "a light-weight form of transaction":
failure atomicity at the disk level, with isolation and durability
left to clients.  This example supplies those missing pieces from
:mod:`repro.txn` — two-phase locks with wait-die deadlock avoidance,
and a flush at commit — and runs a classic banking workload from
four concurrent threads, then crashes the machine and audits the
books.

Run:  python examples/bank_transactions.py
"""

import random
import threading

from repro import make_system, recover
from repro.errors import TransactionAborted
from repro.txn import TransactionManager, run_transaction

N_ACCOUNTS = 12
INITIAL_BALANCE = 1_000
N_THREADS = 4
TRANSFERS_PER_THREAD = 40


def read_balance(reader, block) -> int:
    return int.from_bytes(reader(block)[:8], "little")


def main() -> None:
    system = make_system(num_segments=256, checkpoint_slot_segments=2)
    ld = system.ld
    manager = TransactionManager(ld, lock_timeout_s=5.0)

    # Open the accounts inside one durable transaction.
    with manager.begin() as setup:
        ledger = setup.new_list()
        accounts = []
        previous = None
        for _ in range(N_ACCOUNTS):
            if previous is None:
                account = setup.new_block(ledger)
            else:
                account = setup.new_block(ledger, predecessor=previous)
            setup.write(account, INITIAL_BALANCE.to_bytes(8, "little"))
            accounts.append(account)
            previous = account
    print(f"opened {N_ACCOUNTS} accounts with {INITIAL_BALANCE} each")

    stats = {"ok": 0, "insufficient": 0, "gave_up": 0}
    stats_lock = threading.Lock()

    def teller(seed: int) -> None:
        rng = random.Random(seed)
        for _ in range(TRANSFERS_PER_THREAD):
            src, dst = rng.sample(accounts, 2)
            amount = rng.randrange(1, 250)

            def body(txn):
                balance = read_balance(txn.read, src)
                if balance < amount:
                    return "insufficient"
                txn.write(src, (balance - amount).to_bytes(8, "little"))
                other = read_balance(txn.read, dst)
                txn.write(dst, (other + amount).to_bytes(8, "little"))
                return "ok"

            try:
                outcome = run_transaction(manager, body, max_attempts=200)
            except TransactionAborted:
                outcome = "gave_up"
            with stats_lock:
                stats[outcome] += 1

    threads = [
        threading.Thread(target=teller, args=(seed,))
        for seed in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = sum(read_balance(ld.read, account) for account in accounts)
    print(f"transfers: {stats['ok']} ok, {stats['insufficient']} declined, "
          f"{stats['gave_up']} gave up after retries")
    print(f"lock manager: {manager.locks.grants} grants, "
          f"{manager.locks.deaths} wait-die aborts")
    print(f"ledger total: {total} "
          f"(expected {N_ACCOUNTS * INITIAL_BALANCE})")
    assert total == N_ACCOUNTS * INITIAL_BALANCE

    # --- durability across a crash -----------------------------------
    print("\n-- simulated power failure --")
    recovered, _report = recover(
        system.disk.power_cycle(), checkpoint_slot_segments=2
    )
    recovered_total = sum(
        read_balance(recovered.read, account) for account in accounts
    )
    print(f"ledger total after recovery: {recovered_total}")
    assert recovered_total == N_ACCOUNTS * INITIAL_BALANCE
    print("every committed transfer survived; no money was created "
          "or destroyed.")


if __name__ == "__main__":
    main()
