"""Crash-recovery tests: the core guarantees of the paper.

Every test crashes a system at some point, power-cycles the disk, and
recovers.  The invariant throughout: recovery is always to the most
recent persistent state — committed-and-flushed ARUs survive whole,
anything else vanishes whole (except immediately-committed
allocations, which the consistency sweep reclaims).
"""

import pytest

from repro.disk.faults import CrashPlan, FaultInjector, MediaFault
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import BadBlockError, BadListError, DiskCrashedError
from repro.ld.types import FIRST
from repro.lld.lld import LLD
from repro.lld.recovery import recover


def fresh(num_segments=64, injector=None, **kwargs):
    geo = DiskGeometry.small(num_segments=num_segments)
    disk = SimulatedDisk(geo, injector=injector)
    kwargs.setdefault("checkpoint_slot_segments", 2)
    return disk, LLD(disk, **kwargs)


def reboot(disk, **kwargs):
    kwargs.setdefault("checkpoint_slot_segments", 2)
    return recover(disk.power_cycle(), **kwargs)


class TestBasicRecovery:
    def test_empty_disk(self):
        disk, _lld = fresh()
        lld2, report = reboot(disk)
        assert report.segments_replayed == 0
        assert lld2.new_list()  # fully operational

    def test_flushed_data_survives(self):
        disk, lld = fresh()
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"survivor")
        lld.flush()
        lld2, report = reboot(disk)
        assert lld2.read(block).startswith(b"survivor")
        assert lld2.list_blocks(lst) == [block]
        assert report.entries_replayed >= 4

    def test_unflushed_data_lost(self):
        disk, lld = fresh()
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"volatile")
        # no flush
        lld2, _report = reboot(disk)
        with pytest.raises(BadListError):
            lld2.list_blocks(lst)

    def test_list_structure_reconstructed(self):
        disk, lld = fresh()
        lst = lld.new_list()
        a = lld.new_block(lst)
        b = lld.new_block(lst, predecessor=a)
        c = lld.new_block(lst)  # at the front
        lld.delete_block(a)
        lld.flush()
        lld2, _report = reboot(disk)
        assert lld2.list_blocks(lst) == [c, b]

    def test_id_counters_advance_past_history(self):
        disk, lld = fresh()
        lst = lld.new_list()
        blocks = [lld.new_block(lst) for _ in range(5)]
        lld.flush()
        lld2, _report = reboot(disk)
        assert lld2.new_list() > lst
        assert lld2.new_block(lst) > max(blocks)

    def test_recovered_lld_fully_operational(self):
        disk, lld = fresh()
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"gen-1")
        lld.flush()
        lld2, _report = reboot(disk)
        # New generation of work, then another crash cycle.
        block2 = lld2.new_block(lst, predecessor=block)
        lld2.write(block2, b"gen-2")
        aru = lld2.begin_aru()
        lld2.write(block, b"gen-2-aru", aru=aru)
        lld2.end_aru(aru)
        lld2.flush()
        lld3, _report = reboot(disk)
        assert lld3.read(block).startswith(b"gen-2-aru")
        assert lld3.read(block2).startswith(b"gen-2")


class TestARUAtomicity:
    def test_committed_flushed_aru_survives(self):
        disk, lld = fresh()
        lst = lld.new_list()
        aru = lld.begin_aru()
        blocks = [lld.new_block(lst, aru=aru) for _ in range(3)]
        for index, block in enumerate(blocks):
            lld.write(block, f"part-{index}".encode(), aru=aru)
        lld.end_aru(aru)
        lld.flush()
        lld2, report = reboot(disk)
        assert report.arus_committed >= 1
        for index, block in enumerate(blocks):
            assert lld2.read(block).startswith(f"part-{index}".encode())

    def test_uncommitted_aru_fully_undone(self):
        disk, lld = fresh()
        lst = lld.new_list()
        base = lld.new_block(lst)
        lld.write(base, b"base")
        lld.flush()
        aru = lld.begin_aru()
        lld.write(base, b"overwritten-in-aru", aru=aru)
        extra = lld.new_block(lst, aru=aru)
        lld.write(extra, b"extra", aru=aru)
        lld.flush()  # flush with the ARU still open
        lld2, report = reboot(disk)
        assert lld2.read(base).startswith(b"base")
        assert lld2.list_blocks(lst) == [base]
        # The orphaned allocation was swept.
        assert int(extra) in report.orphan_blocks_freed
        with pytest.raises(BadBlockError):
            lld2.read(extra)

    def test_commit_record_not_flushed_means_undone(self):
        """Commit in memory but not on disk = not persistent."""
        disk, lld = fresh()
        lst = lld.new_list()
        base = lld.new_block(lst)
        lld.write(base, b"base")
        lld.flush()
        aru = lld.begin_aru()
        lld.write(base, b"committed-not-flushed", aru=aru)
        lld.end_aru(aru)
        # No flush: the commit record sits in the segment buffer.
        lld2, _report = reboot(disk)
        assert lld2.read(base).startswith(b"base")

    def test_sweep_can_be_skipped(self):
        disk, lld = fresh()
        lst = lld.new_list()
        aru = lld.begin_aru()
        orphan = lld.new_block(lst, aru=aru)
        lld.flush()
        lld2, report = reboot(disk, sweep_orphans=False)
        assert report.orphan_blocks_freed == []
        # The paper's intermediate state: allocated, in no list.
        assert lld2.read(orphan) == b"\x00" * lld2.geometry.block_size
        assert lld2.list_blocks(lst) == []
        # The explicit sweep reclaims it.
        assert orphan in lld2.sweep_orphan_blocks()

    def test_one_aru_committed_one_not(self):
        disk, lld = fresh()
        lst = lld.new_list()
        a = lld.begin_aru()
        b = lld.begin_aru()
        block_a = lld.new_block(lst, aru=a)
        lld.write(block_a, b"from-a", aru=a)
        block_b = lld.new_block(lst, aru=b)
        lld.write(block_b, b"from-b", aru=b)
        lld.end_aru(a)
        lld.flush()  # b is still open
        lld2, report = reboot(disk)
        assert lld2.read(block_a).startswith(b"from-a")
        assert lld2.list_blocks(lst) == [block_a]
        assert int(block_b) in report.orphan_blocks_freed

    def test_sequential_mode_atomicity(self):
        """The old prototype's sequential ARUs are also crash-atomic:
        tagged entries without a commit record are discarded."""
        disk, lld = fresh(aru_mode="sequential")
        lst = lld.new_list()
        base = lld.new_block(lst)
        lld.write(base, b"base")
        lld.flush()
        aru = lld.begin_aru()
        lld.write(base, b"in-sequential-aru", aru=aru)
        lld.flush()  # data (tagged) hits the disk, commit record doesn't
        lld2, report = reboot(disk, aru_mode="sequential")
        assert lld2.read(base).startswith(b"base")
        assert report.arus_discarded >= 1


class TestTornWrites:
    def test_torn_final_segment_discarded(self):
        injector = FaultInjector(CrashPlan(after_writes=2, torn=True, seed=11))
        disk, lld = fresh(injector=injector)
        lst = lld.new_list()
        committed = []
        with pytest.raises(DiskCrashedError):
            previous = FIRST
            for index in range(500):
                block = lld.new_block(lst, predecessor=previous)
                lld.write(block, f"data-{index}".encode())
                committed.append(block)
                previous = block
                lld.flush()
        lld2, report = reboot(disk)
        assert report.segments_invalid > 0
        survivors = lld2.list_blocks(lst)
        # Whatever survived is a prefix of what was written, and all
        # of it is readable and correct.
        assert survivors == committed[: len(survivors)]
        for index, block in enumerate(survivors):
            assert lld2.read(block).startswith(f"data-{index}".encode())

    def test_media_fault_segment_skipped(self):
        disk, lld = fresh()
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"doomed")
        lld.flush()
        segment = lld.bmap.root(block).persistent.address.segment
        disk.injector.add_media_fault(MediaFault(segment, "unreadable"))
        lld2, report = reboot(disk)
        assert report.segments_unreadable == 1
        # The damaged history is gone; recovery proceeds regardless.
        with pytest.raises(BadListError):
            lld2.list_blocks(lst)

    def test_corrupt_segment_fails_checksum(self):
        disk, lld = fresh()
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"doomed")
        lld.flush()
        segment = lld.bmap.root(block).persistent.address.segment
        disk.injector.add_media_fault(MediaFault(segment, "corrupt"))
        lld2, report = reboot(disk)
        assert report.segments_invalid >= 1


class TestCheckpointRecovery:
    def test_recovery_uses_checkpoint(self):
        disk, lld = fresh()
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"checkpointed")
        lld.write_checkpoint()
        # Post-checkpoint work.
        block2 = lld.new_block(lst, predecessor=block)
        lld.write(block2, b"after-ckpt")
        lld.flush()
        lld2, report = reboot(disk)
        assert report.checkpoint_seq >= 1
        assert lld2.read(block).startswith(b"checkpointed")
        assert lld2.read(block2).startswith(b"after-ckpt")
        assert lld2.list_blocks(lst) == [block, block2]

    def test_checkpoint_bounds_replay(self):
        disk, lld = fresh()
        lst = lld.new_list()
        for _ in range(10):
            block = lld.new_block(lst)
            lld.write(block, b"x")
        lld.write_checkpoint()
        _lld2, report = reboot(disk)
        assert report.segments_replayed == 0  # everything under the ckpt

    def test_repeated_checkpoints_alternate_slots(self):
        disk, lld = fresh()
        lst = lld.new_list()
        for round_no in range(4):
            block = lld.new_block(lst)
            lld.write(block, f"round-{round_no}".encode())
            lld.write_checkpoint()
        lld2, report = reboot(disk)
        assert report.checkpoint_seq == 4
        assert len(lld2.list_blocks(lst)) == 4

    def test_recovery_after_recovery(self):
        disk, lld = fresh()
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"one")
        lld.flush()
        lld2, _ = reboot(disk)
        lld2.write(block, b"two")
        lld2.write_checkpoint()
        lld3, _ = reboot(disk)
        assert lld3.read(block).startswith(b"two")
