"""Fault injection for the simulated disk.

ARUs exist to protect clients against power failures and partial
media failures (Section 3 of the paper).  This module provides the
failure machinery the tests and torture examples use:

* :class:`CrashPlan` cuts power after a chosen number of segment
  writes, optionally *tearing* the final write so only a prefix of
  the segment reaches the platter — the classic interrupted-write
  failure a log-structured recovery scan must tolerate.
* :class:`MediaFault` marks individual segments as unreadable or
  silently corrupted, modelling partial media failures.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Optional

from repro.errors import DiskCrashedError, MediaError


@dataclasses.dataclass
class CrashPlan:
    """Deterministic power-failure schedule.

    Attributes:
        after_writes: Crash when this many segment writes have
            completed.  The write that crosses the budget is the
            *crashing* write.
        torn: If True, the crashing write is partially applied (a
            random prefix survives); if False it is dropped whole.
        seed: Seed for the tear-point RNG, so failures replay
            identically.
        granularity: ``"sector"`` (default) tears on sector
            boundaries, the way real disks fail — a write that fits
            in a single sector is all-or-nothing.  ``"byte"`` keeps
            the old arbitrary-byte-prefix model, which is strictly
            more adversarial (it can cut mid-field) and is what the
            exhaustive crash sweeps use.
        sector_size: Sector size for ``"sector"`` granularity.
    """

    after_writes: int
    torn: bool = False
    seed: int = 0
    granularity: str = "sector"
    sector_size: int = 512

    def __post_init__(self) -> None:
        if self.after_writes < 0:
            raise ValueError("after_writes must be >= 0")
        if self.granularity not in ("sector", "byte"):
            raise ValueError(f"unknown tear granularity {self.granularity!r}")
        if self.sector_size < 1:
            raise ValueError("sector_size must be >= 1")


@dataclasses.dataclass(frozen=True)
class MediaFault:
    """A per-segment media failure.

    ``kind`` is ``"unreadable"`` (reads raise :class:`MediaError`) or
    ``"corrupt"`` (reads return bit-flipped data, exercising checksum
    validation during recovery).
    """

    segment_no: int
    kind: str = "unreadable"

    def __post_init__(self) -> None:
        if self.kind not in ("unreadable", "corrupt"):
            raise ValueError(f"unknown media fault kind {self.kind!r}")


class FaultInjector:
    """Applies crash plans and media faults to a simulated disk.

    The injector is consulted by :class:`repro.disk.simdisk.
    SimulatedDisk` on every segment read and write.  It never touches
    disk contents itself; it tells the disk what to do.
    """

    def __init__(
        self,
        crash_plan: Optional[CrashPlan] = None,
        media_faults: Optional[Dict[int, MediaFault]] = None,
    ) -> None:
        self.crash_plan = crash_plan
        self.media_faults: Dict[int, MediaFault] = dict(media_faults or {})
        self.writes_seen = 0
        self.crashed = False
        self._rng = random.Random(crash_plan.seed if crash_plan else 0)

    def add_media_fault(self, fault: MediaFault) -> None:
        """Register a media fault for one segment."""
        self.media_faults[fault.segment_no] = fault

    def clear_media_fault(self, segment_no: int) -> None:
        """Remove a media fault, if present (repaired sector)."""
        self.media_faults.pop(segment_no, None)

    def on_write(self, segment_no: int, nbytes: int) -> Optional[int]:
        """Gate one segment write.

        Batched writes (:meth:`~repro.disk.simdisk.SimulatedDisk.
        write_many`) call this once per physical segment, in
        submission order, so ``after_writes`` counts identically
        whether the log is written one segment at a time or drained
        through the write-behind queue — crash sweeps enumerate the
        same tear points either way.

        Returns:
            None for a normal write; otherwise the number of bytes of
            the write that survive (0 for a fully dropped write, or a
            positive prefix length for a torn write).

        Raises:
            DiskCrashedError: If the disk already crashed.
        """
        if self.crashed:
            raise DiskCrashedError(f"write to segment {segment_no} after crash")
        if self.crash_plan is None:
            self.writes_seen += 1
            return None
        if self.writes_seen >= self.crash_plan.after_writes:
            self.crashed = True
            if self.crash_plan.torn:
                return self._tear_point(nbytes)
            return 0
        self.writes_seen += 1
        return None

    def _tear_point(self, nbytes: int) -> int:
        """Pick how many bytes of the crashing write survive.

        Sector granularity: some strict prefix of whole sectors makes
        it to the platter; a write within one sector is dropped whole
        (sectors are the unit of atomicity).  Byte granularity: any
        strict prefix, maximally adversarial.
        """
        plan = self.crash_plan
        if plan.granularity == "sector":
            sectors = -(-nbytes // plan.sector_size)  # ceil
            if sectors <= 1:
                return 0
            return self._rng.randrange(1, sectors) * plan.sector_size
        if nbytes > 1:
            return self._rng.randrange(1, nbytes)
        return 0

    def on_read(self, segment_no: int, data: bytes) -> bytes:
        """Gate one segment read, applying media faults.

        Raises:
            DiskCrashedError: If the disk has crashed (power is off).
            MediaError: If the segment is marked unreadable.
        """
        if self.crashed:
            raise DiskCrashedError(f"read of segment {segment_no} after crash")
        fault = self.media_faults.get(segment_no)
        if fault is None:
            return data
        if fault.kind == "unreadable":
            raise MediaError(f"segment {segment_no} is unreadable")
        return _flip_bits(data)

    def power_cycle(self) -> None:
        """Restore power after a crash (the recovery path may now read)."""
        self.crashed = False
        self.crash_plan = None


def _flip_bits(data: bytes) -> bytes:
    """Return ``data`` with every byte bit-flipped (detectably corrupt)."""
    return bytes(b ^ 0xFF for b in data)
