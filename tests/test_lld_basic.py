"""Unit tests for LLD's basic (simple-operation) interface."""

import pytest

from repro.errors import BadBlockError, BadListError, DiskCrashedError
from repro.ld.types import FIRST

from tests.conftest import make_lld


class TestListsAndBlocks:
    def test_new_list_ids_increase(self, lld):
        assert lld.new_list() < lld.new_list() < lld.new_list()

    def test_new_block_in_unknown_list(self, lld):
        with pytest.raises(BadListError):
            lld.new_block(999)

    def test_empty_list_enumerates_empty(self, lld):
        lst = lld.new_list()
        assert lld.list_blocks(lst) == []

    def test_block_placed_first(self, lld):
        lst = lld.new_list()
        a = lld.new_block(lst)
        b = lld.new_block(lst)  # also FIRST: goes before a
        assert lld.list_blocks(lst) == [b, a]

    def test_block_placed_after_predecessor(self, lld):
        lst = lld.new_list()
        a = lld.new_block(lst)
        b = lld.new_block(lst, predecessor=a)
        c = lld.new_block(lst, predecessor=a)
        assert lld.list_blocks(lst) == [a, c, b]

    def test_predecessor_must_be_in_list(self, lld):
        lst1 = lld.new_list()
        lst2 = lld.new_list()
        a = lld.new_block(lst1)
        with pytest.raises(BadBlockError):
            lld.new_block(lst2, predecessor=a)

    def test_block_ids_never_reused(self, lld):
        lst = lld.new_list()
        a = lld.new_block(lst)
        lld.delete_block(a)
        b = lld.new_block(lst)
        assert b != a


class TestReadWrite:
    def test_fresh_block_reads_zeros(self, lld):
        lst = lld.new_list()
        block = lld.new_block(lst)
        assert lld.read(block) == b"\x00" * lld.geometry.block_size

    def test_write_read_roundtrip(self, lld):
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"payload")
        data = lld.read(block)
        assert data.startswith(b"payload")
        assert len(data) == lld.geometry.block_size

    def test_write_pads_short_data(self, lld):
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"x")
        assert lld.read(block)[1] == 0

    def test_write_oversized_rejected(self, lld):
        lst = lld.new_list()
        block = lld.new_block(lst)
        with pytest.raises(ValueError):
            lld.write(block, b"y" * (lld.geometry.block_size + 1))

    def test_overwrite_returns_latest(self, lld):
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"one")
        lld.write(block, b"two")
        assert lld.read(block).startswith(b"two")

    def test_read_unknown_block(self, lld):
        with pytest.raises(BadBlockError):
            lld.read(12345)

    def test_read_deleted_block(self, lld):
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"gone")
        lld.delete_block(block)
        with pytest.raises(BadBlockError):
            lld.read(block)

    def test_write_deleted_block(self, lld):
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.delete_block(block)
        with pytest.raises(BadBlockError):
            lld.write(block, b"zombie")

    def test_read_survives_flush(self, lld):
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"durable")
        lld.flush()
        assert lld.read(block).startswith(b"durable")

    def test_data_survives_many_segments(self, lld):
        """Writes spanning several segment rolls stay readable."""
        lst = lld.new_list()
        blocks = []
        previous = FIRST
        for index in range(64):
            block = lld.new_block(lst, predecessor=previous)
            lld.write(block, f"block-{index}".encode())
            blocks.append(block)
            previous = block
        lld.flush()
        for index, block in enumerate(blocks):
            assert lld.read(block).startswith(f"block-{index}".encode())


class TestDeletes:
    def test_delete_block_removes_from_list(self, lld):
        lst = lld.new_list()
        a = lld.new_block(lst)
        b = lld.new_block(lst, predecessor=a)
        c = lld.new_block(lst, predecessor=b)
        lld.delete_block(b)
        assert lld.list_blocks(lst) == [a, c]

    def test_delete_head_block(self, lld):
        lst = lld.new_list()
        a = lld.new_block(lst)
        b = lld.new_block(lst, predecessor=a)
        lld.delete_block(a)
        assert lld.list_blocks(lst) == [b]

    def test_delete_list_deletes_members(self, lld):
        lst = lld.new_list()
        a = lld.new_block(lst)
        b = lld.new_block(lst, predecessor=a)
        lld.delete_list(lst)
        with pytest.raises(BadListError):
            lld.list_blocks(lst)
        for block in (a, b):
            with pytest.raises(BadBlockError):
                lld.read(block)

    def test_delete_unknown_list(self, lld):
        with pytest.raises(BadListError):
            lld.delete_list(404)

    def test_double_delete_block(self, lld):
        lst = lld.new_list()
        a = lld.new_block(lst)
        lld.delete_block(a)
        with pytest.raises(BadBlockError):
            lld.delete_block(a)


class TestLifecycle:
    def test_dead_after_disk_crash(self):
        from repro.disk.faults import CrashPlan, FaultInjector
        from repro.disk.geometry import DiskGeometry
        from repro.disk.simdisk import SimulatedDisk
        from repro.lld.lld import LLD

        geo = DiskGeometry.small(64)
        disk = SimulatedDisk(
            geo, injector=FaultInjector(CrashPlan(after_writes=0))
        )
        lld = LLD(disk, checkpoint_slot_segments=2)
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"x")
        with pytest.raises(DiskCrashedError):
            lld.flush()
        with pytest.raises(DiskCrashedError):
            lld.read(block)

    def test_stats_shape(self, lld):
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"s")
        lld.flush()
        stats = lld.stats()
        assert stats["ops"]["write"] == 1
        assert stats["segments_flushed"] == 1
        assert stats["disk"]["writes"] >= 1

    def test_rejects_bad_mode(self, disk):
        from repro.lld.lld import LLD

        with pytest.raises(ValueError):
            LLD(disk, aru_mode="quantum")

    def test_rejects_bad_conflict_policy(self, disk):
        from repro.lld.lld import LLD

        with pytest.raises(ValueError):
            LLD(disk, conflict_policy="pray")
