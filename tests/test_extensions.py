"""Tests for the extension features: walk/du, group commit, PostMark."""

import pytest

from repro.fs import MinixFS, fsck
from repro.txn import TransactionManager, run_batch
from repro.workloads.postmark import run_postmark

from tests.conftest import make_lld


@pytest.fixture
def fs():
    fs = MinixFS.mkfs(make_lld(num_segments=192), n_inodes=256)
    fs.mkdir("/a")
    fs.mkdir("/a/b")
    fs.mkdir("/c")
    fs.create("/top.txt")
    fs.write_file("/top.txt", b"x" * 100)
    fs.create("/a/one.txt")
    fs.write_file("/a/one.txt", b"y" * 200)
    fs.create("/a/b/two.txt")
    fs.write_file("/a/b/two.txt", b"z" * 300)
    return fs


class TestWalkAndDu:
    def test_walk_visits_everything(self, fs):
        visited = {path: (dirs, files) for path, dirs, files in fs.walk()}
        assert set(visited) == {"/", "/a", "/a/b", "/c"}
        assert visited["/"][1] == ["top.txt"]
        assert sorted(visited["/"][0]) == ["a", "c"]
        assert visited["/a/b"][1] == ["two.txt"]
        assert visited["/c"] == ([], [])

    def test_walk_subtree(self, fs):
        paths = [path for path, _d, _f in fs.walk("/a")]
        assert paths == ["/a", "/a/b"]

    def test_walk_of_file_rejected(self, fs):
        from repro.errors import NotADirectoryFSError

        with pytest.raises(NotADirectoryFSError):
            list(fs.walk("/top.txt"))

    def test_du(self, fs):
        assert fs.du("/") == 600
        assert fs.du("/a") == 500
        assert fs.du("/a/b") == 300
        assert fs.du("/c") == 0


class TestCopyFile:
    def test_copies_contents(self, fs):
        copied = fs.copy_file("/a/one.txt", "/copy.txt")
        assert copied == 200
        assert fs.read_file("/copy.txt") == b"y" * 200
        assert fs.read_file("/a/one.txt") == b"y" * 200  # source intact
        assert fs.stat("/copy.txt").ino != fs.stat("/a/one.txt").ino

    def test_copy_empty_file(self, fs):
        fs.create("/empty")
        assert fs.copy_file("/empty", "/empty2") == 0
        assert fs.read_file("/empty2") == b""

    def test_copy_directory_rejected(self, fs):
        from repro.errors import IsADirectoryFSError

        with pytest.raises(IsADirectoryFSError):
            fs.copy_file("/a", "/acopy")

    def test_copy_onto_existing_rejected(self, fs):
        from repro.errors import FileExistsFSError

        with pytest.raises(FileExistsFSError):
            fs.copy_file("/a/one.txt", "/top.txt")

    def test_copies_are_independent(self, fs):
        fs.copy_file("/top.txt", "/clone.txt")
        fs.write_file("/clone.txt", b"DIVERGED")
        assert fs.read_file("/top.txt") == b"x" * 100


class TestGroupCommit:
    def test_batch_commits_all_with_single_flush(self):
        ld = make_lld(num_segments=128)
        manager = TransactionManager(ld)
        lst = ld.new_list()
        accounts = [ld.new_block(lst) for _ in range(5)]
        for account in accounts:
            ld.write(account, (100).to_bytes(8, "little"))
        ld.flush()
        flushes_before = ld.op_counts.get("flush", 0)

        def deposit(account, amount):
            def body(txn):
                value = int.from_bytes(txn.read(account)[:8], "little")
                txn.write(account, (value + amount).to_bytes(8, "little"))
                return value + amount

            return body

        results = run_batch(
            manager, [deposit(account, 10) for account in accounts]
        )
        assert results == [110] * 5
        # One flush for the whole batch, not one per transaction.
        assert ld.op_counts.get("flush", 0) == flushes_before + 1
        # Durable: every deposit survives a crash.
        from repro.lld.recovery import recover

        recovered, _ = recover(
            ld.disk.power_cycle(), checkpoint_slot_segments=2
        )
        for account in accounts:
            assert int.from_bytes(
                recovered.read(account)[:8], "little"
            ) == 110

    def test_batch_failure_still_flushes_successes(self):
        ld = make_lld(num_segments=128)
        manager = TransactionManager(ld)
        lst = ld.new_list()
        block = ld.new_block(lst)
        ld.write(block, b"before")
        ld.flush()

        def good(txn):
            txn.write(block, b"good-result")

        def bad(_txn):
            raise RuntimeError("body exploded")

        with pytest.raises(RuntimeError):
            run_batch(manager, [good, bad, good])
        # The first body committed and was flushed by the batch.
        from repro.lld.recovery import recover

        recovered, _ = recover(
            ld.disk.power_cycle(), checkpoint_slot_segments=2
        )
        assert recovered.read(block).startswith(b"good-result")


class TestPostmarkWorkload:
    def test_runs_and_stays_consistent(self):
        fs = MinixFS.mkfs(make_lld(num_segments=256), n_inodes=512)
        result = run_postmark(fs, n_files=40, n_transactions=200)
        assert result.tps > 0
        assert sum(result.ops.values()) == 200
        assert result.files_at_end == len(fs.listdir("/postmark"))
        assert fsck(fs).clean

    def test_deterministic(self):
        a = run_postmark(
            MinixFS.mkfs(make_lld(num_segments=256), n_inodes=512),
            n_files=30, n_transactions=100, seed=7,
        )
        b = run_postmark(
            MinixFS.mkfs(make_lld(num_segments=256), n_inodes=512),
            n_files=30, n_transactions=100, seed=7,
        )
        assert a.tps == b.tps
        assert a.ops == b.ops

    def test_mix_respects_bias(self):
        fs = MinixFS.mkfs(make_lld(num_segments=256), n_inodes=512)
        result = run_postmark(
            fs, n_files=30, n_transactions=300, read_bias=0.9
        )
        reads = result.ops["read"] + result.ops["append"]
        churn = result.ops["create"] + result.ops["delete"]
        assert reads > 2 * churn
