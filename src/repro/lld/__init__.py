"""The log-structured logical disk (LLD) with concurrent ARUs.

LLD divides the disk into large fixed-size segments that are filled
in main memory and written in single disk operations.  Each segment
carries data blocks plus a *segment summary* — an operation log of
LLD's own meta-data from which the block-number-map and list-table
can be reconstructed after a crash.  This package contains:

* the on-disk formats (:mod:`repro.lld.summary`,
  :mod:`repro.lld.segment`, :mod:`repro.lld.checkpoint`),
* the in-memory persistent tables (:mod:`repro.lld.maps`) and
  segment usage accounting (:mod:`repro.lld.usage`),
* the logical disk itself (:mod:`repro.lld.lld`), supporting both the
  paper's "new" prototype (concurrent ARUs) and the "old" baseline
  (sequential ARUs) via ``aru_mode``,
* crash recovery (:mod:`repro.lld.recovery`) and the segment cleaner
  (:mod:`repro.lld.cleaner`).
"""

from repro.lld.lld import LLD
from repro.lld.recovery import RecoveryReport, recover

__all__ = ["LLD", "RecoveryReport", "recover"]
