"""Crash recovery for sharded volumes.

:func:`recover_sharded` rebuilds a :class:`~repro.shard.sharded.ShardedLLD`
from the member disks of a crashed array.  The coordinator (shard 0)
is recovered first — its checkpoint and log carry the DECIDE records
for every cross-shard commit — and its decided-xid set is then handed
to the participants, which recover concurrently, each rolling a
PREPARE-tagged ARU forward iff its transaction id was decided and
discarding it otherwise (presumed abort).

Because a durable DECIDE implies every participant's PREPARE (and all
of the transaction's effects) were durable first, this resolves every
crash point to all-or-nothing across the whole array; because an
undecided PREPARE is discarded *everywhere*, no shard can expose half
a transaction.

Timing: each shard owns a private simulated clock, so running the
per-shard recoveries on host threads in any order still yields the
parallel-array simulated time — every shard's clock advances by its
own recovery cost only, and the array's "now" is the furthest shard.
The report additionally breaks out the modelled critical path
(participants may scan and decode concurrently with the coordinator
but must wait for the coordinator's scan+decode to learn the decided
set before replaying) against the serial sum, which is what the
recovery benchmark and the ``shard`` harness experiment record.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Set, Tuple

from repro.disk.simdisk import SimulatedDisk
from repro.lld.recovery import RecoveryReport, recover
from repro.shard.sharded import ShardedLLD


@dataclasses.dataclass
class ShardRecoveryReport:
    """What recovering a sharded volume found and did."""

    shards: int
    #: Per-shard reports, in shard order (shard 0 is the coordinator).
    reports: List[RecoveryReport]
    #: Coordinator transaction ids known decided (checkpoint + log).
    decided_xids: List[int]
    #: Union across shards of how prepared ARUs were resolved.
    xids_rolled_forward: List[int]
    xids_discarded: List[int]
    arus_prepared: int
    #: Modelled simulated time for the parallel array (critical path)
    #: and for recovering the same shards one after another.
    parallel_us: float
    serial_us: float
    speedup: float
    #: Simulated time until *every* shard can serve requests, on the
    #: same critical-path model (participants wait for the
    #: coordinator's decided set).  Equals ``parallel_us`` for eager
    #: recovery; far smaller under ``mode="instant"``.
    ttfr_us: float
    #: Host wall-clock seconds for the whole sharded recovery.
    wall_seconds: float


def _scan_decode_us(report: RecoveryReport) -> float:
    return report.phase_us.get("scan", 0.0) + report.phase_us.get(
        "decode", 0.0
    )


def recover_sharded(
    disks: Sequence[SimulatedDisk],
    workers: Optional[int] = None,
    **recover_kwargs,
) -> Tuple[ShardedLLD, ShardRecoveryReport]:
    """Recover every shard and reassemble the array.

    Args:
        disks: The member disks in shard order (as produced by
            ``[shard.disk for shard in sharded.shards]``, possibly
            power-cycled).  Shard 0 must be the coordinator.
        workers: Host threads for the participant recoveries
            (default: one per participant).  Purely a host-side
            knob — simulated results and simulated times are
            identical for any value.
        **recover_kwargs: Forwarded to every per-shard
            :func:`repro.lld.recovery.recover` call (config, cost
            model, scan knobs, ...).

    Returns:
        The reassembled volume and a :class:`ShardRecoveryReport`.
    """
    if not disks:
        raise ValueError("recover_sharded needs at least one disk")
    wall_start = time.perf_counter()

    # Coordinator first: its tables need no foreign decisions (its
    # own log/checkpoint holds them all), and everyone else's replay
    # depends on the decided set it surfaces.
    lld0, report0 = recover(disks[0], **recover_kwargs)
    decided: Set[int] = set(lld0._decided_xids)

    shards = [lld0]
    reports = [report0]
    if len(disks) > 1:
        participants = list(disks[1:])
        pool = workers if workers is not None else len(participants)

        def _one(disk: SimulatedDisk) -> Tuple:
            return recover(disk, decided_xids=decided, **recover_kwargs)

        with ThreadPoolExecutor(max_workers=max(1, pool)) as executor:
            for lld, report in executor.map(_one, participants):
                shards.append(lld)
                reports.append(report)

    volume = ShardedLLD(shards)
    volume._next_xid = max(r.max_xid for r in reports) + 1

    # Critical path of the parallel array: every shard scans and
    # decodes its own log concurrently, but a participant's replay
    # cannot start before the coordinator's scan+decode has surfaced
    # the decided set.
    sd0 = _scan_decode_us(report0)
    parallel_us = report0.recovery_time_us
    ttfr_us = report0.ttfr_us
    for report in reports[1:]:
        sd = _scan_decode_us(report)
        rest = report.recovery_time_us - sd
        parallel_us = max(parallel_us, max(sd, sd0) + rest)
        ttfr_us = max(ttfr_us, max(sd, sd0) + (report.ttfr_us - sd))
    serial_us = sum(r.recovery_time_us for r in reports)

    rolled: Set[int] = set()
    discarded: Set[int] = set()
    for report in reports:
        rolled.update(report.xids_rolled_forward)
        discarded.update(report.xids_discarded)

    summary = ShardRecoveryReport(
        shards=len(shards),
        reports=reports,
        decided_xids=sorted(decided),
        xids_rolled_forward=sorted(rolled),
        xids_discarded=sorted(discarded),
        arus_prepared=sum(r.arus_prepared for r in reports),
        parallel_us=parallel_us,
        serial_us=serial_us,
        speedup=(serial_us / parallel_us) if parallel_us > 0 else 1.0,
        ttfr_us=ttfr_us,
        wall_seconds=time.perf_counter() - wall_start,
    )
    lld0.obs.record(
        "shard.recovered",
        shards=summary.shards,
        decided=len(summary.decided_xids),
        rolled_forward=len(summary.xids_rolled_forward),
        discarded=len(summary.xids_discarded),
        parallel_us=round(parallel_us, 3),
        serial_us=round(serial_us, 3),
    )
    return volume, summary
