"""Media-fault matrix: damage every kind of on-disk region and
verify graceful degradation.

Crash tests cover interrupted writes; this matrix covers *latent*
damage discovered at recovery time — unreadable or silently corrupted
segments in each structural role (checkpoint slots, log segments,
journal segments) on both substrates.
"""

import pytest

from repro.disk.faults import MediaFault
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.jld import JLD, recover_jld
from repro.ld.types import FIRST
from repro.lld.lld import LLD
from repro.lld.recovery import recover


def populated_lld():
    geo = DiskGeometry.small(num_segments=64)
    disk = SimulatedDisk(geo)
    lld = LLD(disk, checkpoint_slot_segments=1)
    lst = lld.new_list()
    blocks = []
    previous = FIRST
    for index in range(10):
        block = lld.new_block(lst, predecessor=previous)
        lld.write(block, f"ckpt-era-{index}".encode())
        blocks.append(block)
        previous = block
    lld.write_checkpoint()
    post = lld.new_block(lst, predecessor=previous)
    lld.write(post, f"log-era".encode())
    lld.flush()
    return disk, lld, lst, blocks, post


class TestLLDFaultMatrix:
    @pytest.mark.parametrize("kind", ["unreadable", "corrupt"])
    def test_damaged_stale_checkpoint_slot_is_harmless(self, kind):
        disk, lld, lst, blocks, post = populated_lld()
        # Slot for the *next* checkpoint (the stale one) is slot 0 for
        # ckpt_seq 1 -> it wrote slot 1; damage slot 0.
        victim = lld.checkpoints._slot_base(lld._ckpt_seq + 1)
        disk.injector.add_media_fault(MediaFault(victim, kind))
        lld2, report = recover(
            disk.power_cycle(), checkpoint_slot_segments=1
        )
        assert report.checkpoint_seq == 1
        assert lld2.list_blocks(lst) == blocks + [post]

    @pytest.mark.parametrize("kind", ["unreadable", "corrupt"])
    def test_damaged_live_checkpoint_falls_back_to_log(self, kind):
        """Losing the only checkpoint loses the checkpointed tables
        (their log segments may be cleaned), but recovery must still
        come up and serve the post-checkpoint log."""
        disk, lld, lst, blocks, post = populated_lld()
        live_slot = lld.checkpoints._slot_base(lld._ckpt_seq)
        disk.injector.add_media_fault(MediaFault(live_slot, kind))
        lld2, report = recover(
            disk.power_cycle(), checkpoint_slot_segments=1
        )
        assert report.checkpoint_seq == 0  # fell back to empty
        # Pre-checkpoint history is still in the (uncleaned) log in
        # this scenario, so everything actually survives — the point
        # is that recovery proceeds rather than failing.
        assert report.segments_replayed > 0
        members = lld2.list_blocks(lst)
        assert post in members

    @pytest.mark.parametrize("kind", ["unreadable", "corrupt"])
    def test_damaged_log_segment_drops_only_its_history(self, kind):
        disk, lld, lst, blocks, post = populated_lld()
        # Find the post-checkpoint log segment that holds `post`.
        victim = lld.bmap.root(post).persistent.address.segment
        disk.injector.add_media_fault(MediaFault(victim, kind))
        lld2, report = recover(
            disk.power_cycle(), checkpoint_slot_segments=1
        )
        assert (
            report.segments_unreadable + report.segments_invalid >= 1
        )
        # The checkpointed files are intact; the damaged segment's
        # additions are gone.
        assert lld2.list_blocks(lst) == blocks
        from repro.errors import LDError

        with pytest.raises(LDError):
            lld2.read(post)


class TestJLDFaultMatrix:
    def _populated(self):
        geo = DiskGeometry.small(num_segments=64)
        disk = SimulatedDisk(geo)
        jld = JLD(disk, journal_segments=4, checkpoint_slot_segments=1)
        lst = jld.new_list()
        blocks = []
        previous = FIRST
        for index in range(6):
            block = jld.new_block(lst, predecessor=previous)
            jld.write(block, f"applied-{index}".encode())
            blocks.append(block)
            previous = block
        jld.apply()  # homes written + checkpoint
        post = jld.new_block(lst, predecessor=previous)
        jld.write(post, b"journal-only")
        jld.flush()
        return disk, jld, lst, blocks, post

    @pytest.mark.parametrize("kind", ["unreadable", "corrupt"])
    def test_damaged_journal_segment(self, kind):
        disk, jld, lst, blocks, post = self._populated()
        # Damage the journal segment carrying the post-apply records.
        victim = None
        for index in range(jld.journal_segments):
            if jld._journal_seq[index] > jld._ckpt_log_seq:
                victim = jld.journal_base + index
        assert victim is not None
        disk.injector.add_media_fault(MediaFault(victim, kind))
        jld2, report = recover_jld(
            disk.power_cycle(), journal_segments=4,
            checkpoint_slot_segments=1,
        )
        # Checkpoint-era data intact; the damaged journal's additions
        # are gone.
        assert jld2.list_blocks(lst) == blocks
        for index, block in enumerate(blocks):
            assert jld2.read(block).startswith(f"applied-{index}".encode())

    def test_damaged_home_segment_loses_only_those_blocks(self):
        disk, jld, lst, blocks, post = self._populated()
        victim = jld.blocks[blocks[0]].home.segment
        disk.injector.add_media_fault(MediaFault(victim, "unreadable"))
        jld2, _report = recover_jld(
            disk.power_cycle(), journal_segments=4,
            checkpoint_slot_segments=1,
        )
        # Structure (from the checkpoint) is fine; reading a block on
        # the bad platter surfaces the media error, others still work.
        from repro.errors import MediaError

        affected = [
            b for b in blocks if jld2.blocks[b].home.segment == victim
        ]
        unaffected = [b for b in blocks if b not in affected]
        assert affected
        with pytest.raises(MediaError):
            jld2.read(affected[0])
        for block in unaffected:
            assert jld2.read(block).startswith(b"applied")
