"""Property-based differential test: replication is invisible.

With no faults injected, a replicated array (rf=2) must be
observationally identical to an unreplicated one (rf=1) running the
same operation sequence — same read-back, same list membership,
before and after a power-cycle + unified recovery.  Replication may
only change *where* bytes land, never *what* the client sees.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.disk.geometry import DiskGeometry
from repro.recovery import recover
from repro.shard import build_sharded

N_SHARDS = 3

ops = st.lists(
    st.one_of(
        st.tuples(st.just("new_list")),
        st.tuples(st.just("new_block"), st.integers(0, 15)),
        st.tuples(
            st.just("write"), st.integers(0, 40), st.binary(min_size=1, max_size=48)
        ),
        st.tuples(st.just("delete_block"), st.integers(0, 40)),
        st.tuples(st.just("delete_list"), st.integers(0, 15)),
        st.tuples(
            st.just("txn"),
            st.lists(
                st.tuples(st.integers(0, 40), st.binary(min_size=1, max_size=32)),
                min_size=1,
                max_size=5,
            ),
            st.booleans(),  # commit or abort
        ),
    ),
    max_size=30,
)


def build_array(rf):
    return build_sharded(
        N_SHARDS,
        geometry=DiskGeometry.small(num_segments=64),
        checkpoint_slot_segments=2,
        replication_factor=rf,
    )


def apply_ops(vol, op_list):
    """Drive one array, addressing entities by logical index so the
    same script fits arrays whose identifier streams differ."""
    lists = []  # logical index -> list id (or None once deleted)
    blocks = []  # logical index -> (block id or None, owning list index)
    for op in op_list:
        if op[0] == "new_list":
            lists.append(vol.new_list())
        elif op[0] == "new_block":
            live = [i for i, l in enumerate(lists) if l is not None]
            if not live:
                continue
            owner = live[op[1] % len(live)]
            blocks.append((vol.new_block(lists[owner]), owner))
        elif op[0] == "write":
            live = [b for b, _ in blocks if b is not None]
            if not live:
                continue
            vol.write(live[op[1] % len(live)], op[2])
        elif op[0] == "delete_block":
            live_idx = [i for i, (b, _) in enumerate(blocks) if b is not None]
            if not live_idx:
                continue
            index = live_idx[op[1] % len(live_idx)]
            vol.delete_block(blocks[index][0])
            blocks[index] = (None, blocks[index][1])
        elif op[0] == "delete_list":
            live_idx = [i for i, l in enumerate(lists) if l is not None]
            if not live_idx:
                continue
            index = live_idx[op[1] % len(live_idx)]
            vol.delete_list(lists[index])
            lists[index] = None
            blocks = [
                (None, owner) if owner == index else (b, owner)
                for b, owner in blocks
            ]
        elif op[0] == "txn":
            live = [b for b, _ in blocks if b is not None]
            if not live:
                continue
            aru = vol.begin_aru()
            for which, data in op[1]:
                vol.write(live[which % len(live)], data, aru=aru)
            if op[2]:
                vol.end_aru(aru)
            else:
                vol.abort_aru(aru)
    vol.flush()
    return lists, blocks


def observe(vol, lists, blocks):
    """Everything a client can see: block contents + list membership
    sizes (ids differ across rf, so compare counts, not values)."""
    contents = [None if b is None else vol.read(b) for b, _ in blocks]
    memberships = [
        None if l is None else len(vol.list_blocks(l)) for l in lists
    ]
    return contents, memberships


class TestReplicationInvisible:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(op_list=ops)
    def test_rf2_matches_rf1(self, op_list):
        plain = build_array(rf=1)
        mirrored = build_array(rf=2)
        plain_ids = apply_ops(plain, op_list)
        mirrored_ids = apply_ops(mirrored, op_list)

        # Identifier streams are identical too: replication allocates
        # mirrors in a disjoint system range, never perturbing user ids.
        assert plain_ids[0] == mirrored_ids[0]
        assert [b for b, _ in plain_ids[1]] == [b for b, _ in mirrored_ids[1]]

        expected = observe(plain, *plain_ids)
        assert observe(mirrored, *mirrored_ids) == expected

        # ... and still identical after crash + unified recovery.
        plain2, _ = recover(
            [shard.disk.power_cycle() for shard in plain.shards]
        )
        mirrored2, _ = recover(
            [shard.disk.power_cycle() for shard in mirrored.shards],
            array_config=mirrored.config,
        )
        assert observe(plain2, *plain_ids) == expected
        assert observe(mirrored2, *mirrored_ids) == expected
