"""Figure 6 — large-file throughput (write1/read1/write2/read2/read3).

The paper writes a 78.125 MB file sequentially, reads it
sequentially, rewrites it in random order, reads it in random order,
and reads it sequentially again, comparing old vs new MinixLLD in
MB/second.  Shapes: both versions near-identical (write1 differs
2.9 %, everything else 0.2–0.7 %); both write phases run near disk
bandwidth (the log absorbs random writes); read2 and read3 are
seek-bound after the random rewrite.
"""

import pytest

from repro.harness.reporting import percent_difference
from repro.harness.runner import run_figure6

from benchmarks.conftest import full_scale, report_json, report_table

FILE_SIZE = 20_000 * 4096 if full_scale() else 16 * 1024 * 1024


@pytest.mark.benchmark(group="figure6")
def test_figure6_large_file(benchmark):
    """Run the five-phase large-file experiment on old and new."""
    result = benchmark.pedantic(
        lambda: run_figure6(file_size=FILE_SIZE), rounds=1, iterations=1
    )
    report_table("figure6_large_file", result.table)
    for name, phases in result.results.items():
        for phase, mbps in phases.throughput_mbps.items():
            benchmark.extra_info[f"{name}_{phase}_mbps"] = round(mbps, 3)
    report_json(
        "figure6",
        {
            "file_size_bytes": FILE_SIZE,
            "throughput_mbps": {
                name: {
                    phase: round(mbps, 3)
                    for phase, mbps in phases.throughput_mbps.items()
                }
                for name, phases in result.results.items()
            },
        },
    )
    old = result.results["old"]
    new = result.results["new"]
    # Paper shapes: tiny write overhead, negligible read overhead.
    assert 0.0 <= percent_difference(
        old.phase("write1"), new.phase("write1")
    ) <= 5.0
    for phase in ("read1", "read2", "read3"):
        assert abs(
            percent_difference(old.phase(phase), new.phase(phase))
        ) <= 2.0
    # The log absorbs random writes; random reads seek.
    assert new.phase("write2") > 0.7 * new.phase("write1")
    assert new.phase("read2") < 0.3 * new.phase("read1")
