"""Library functions behind the ``lddump`` inspection tool.

Everything here is read-only over a :class:`~repro.disk.simdisk.
SimulatedDisk` (usually loaded from an image file): no simulated time
matters, no state is modified.  The functions return printable
strings so both the CLI and tests can use them directly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.disk.simdisk import SimulatedDisk
from repro.errors import LDError, MediaError
from repro.fs.filesystem import MinixFS
from repro.lld.checkpoint import CheckpointManager, default_slot_segments
from repro.lld.recovery import peek_trailer_seq, recover
from repro.lld.segment import decode_segment
from repro.lld.summary import EntryKind
from repro.lld.usage import QUARANTINE_SEQ


def describe_disk(disk: SimulatedDisk) -> str:
    """One-paragraph geometry and occupancy summary."""
    geo = disk.geometry
    written = len(disk._segments)
    lines = [
        "LD disk image",
        f"  geometry : {geo.num_segments} segments x "
        f"{geo.segment_size // 1024} KB ({geo.partition_size // (1024 * 1024)}"
        f" MB), {geo.block_size} B blocks",
        f"  segments : {written} of {geo.num_segments} ever written",
    ]
    return "\n".join(lines)


def describe_checkpoints(
    disk: SimulatedDisk, slot_segments: Optional[int] = None
) -> str:
    """Both checkpoint slots: validity, sequence, table sizes."""
    slots = (
        slot_segments
        if slot_segments is not None
        else default_slot_segments(disk.geometry)
    )
    manager = CheckpointManager(disk, slots)
    lines = [f"checkpoint region: 2 slots x {slots} segment(s)"]
    for slot in range(2):
        parsed = manager._load_slot(slot)
        if parsed is None:
            lines.append(f"  slot {slot}: invalid or empty")
            continue
        decided = (
            f" decided_xids={len(parsed.decided_xids)}"
            if parsed.decided_xids
            else ""
        )
        lines.append(
            f"  slot {slot}: ckpt_seq={parsed.ckpt_seq} "
            f"last_log_seq={parsed.last_log_seq} "
            f"blocks={len(parsed.blocks)} lists={len(parsed.lists)} "
            f"segments={len(parsed.segments)}{decided}"
        )
    best = manager.load()
    lines.append(f"  newest valid checkpoint: seq {best.ckpt_seq}")
    return "\n".join(lines)


def describe_segments(
    disk: SimulatedDisk,
    slot_segments: Optional[int] = None,
    entries: bool = False,
    limit: Optional[int] = None,
) -> str:
    """Per-segment roster: trailer seq, block/entry counts, validity.

    With ``entries=True`` every summary entry is listed (verbose).
    """
    slots = (
        slot_segments
        if slot_segments is not None
        else default_slot_segments(disk.geometry)
    )
    reserved = 2 * slots
    geo = disk.geometry
    # The checkpoint roster records quarantined segments with a
    # sentinel sequence so the scrubber's verdict survives restarts;
    # surface that here rather than re-reading failed media.
    quarantined = set()
    try:
        roster = CheckpointManager(disk, slots).load().segments
        quarantined = {
            seg for seg, (seq, _l, _t) in roster.items()
            if seq == QUARANTINE_SEQ
        }
    except LDError:
        pass
    lines: List[str] = [
        f"log segments (skipping {reserved} reserved checkpoint segments):"
    ]
    if quarantined:
        lines.append(
            f"  quarantined by scrub: {sorted(quarantined)}"
        )
    shown = 0
    fills: List[float] = []
    for seg in range(reserved, geo.num_segments):
        if seg not in disk._segments:
            continue
        if limit is not None and shown >= limit:
            lines.append(f"  ... (limited to {limit} segments)")
            break
        if seg in quarantined:
            lines.append(
                f"  segment {seg:4d}: QUARANTINED (scrubbed media fault)"
            )
            shown += 1
            continue
        try:
            seq = peek_trailer_seq(disk, seg)
        except MediaError:
            lines.append(f"  segment {seg:4d}: UNREADABLE (media fault)")
            shown += 1
            continue
        if seq is None:
            lines.append(f"  segment {seg:4d}: invalid trailer")
            shown += 1
            continue
        decoded = decode_segment(disk.read_segment(seg), geo, seg)
        if decoded is None:
            lines.append(
                f"  segment {seg:4d}: seq {seq} — TORN/CORRUPT "
                "(checksum failed)"
            )
            shown += 1
            continue
        commits = sum(
            1 for e in decoded.entries if e.kind is EntryKind.COMMIT
        )
        summary_bytes = sum(e.encoded_size() for e in decoded.entries)
        fill = (
            decoded.block_count * geo.block_size + summary_bytes
        ) / geo.usable_size
        fills.append(fill)
        lines.append(
            f"  segment {seg:4d}: seq {decoded.seq:6d}  "
            f"{decoded.block_count:3d} blocks  "
            f"{len(decoded.entries):4d} entries  {commits:3d} commits  "
            f"{fill * 100:5.1f}% full"
        )
        shown += 1
        if entries:
            for entry in decoded.entries:
                lines.append(
                    f"      {entry.kind.name:<12s} tag={entry.aru_tag:<6d} "
                    f"ts={entry.timestamp:<8d} a={entry.a} b={entry.b} "
                    f"c={entry.c}"
                )
    if shown == 0:
        lines.append("  (none written)")
    elif fills:
        lines.append(
            f"  fill (data+summary over usable bytes): avg "
            f"{sum(fills) / len(fills) * 100:.1f}%  min "
            f"{min(fills) * 100:.1f}%  over {len(fills)} valid segments"
        )
    return "\n".join(lines)


def describe_metrics(
    disk: SimulatedDisk, slot_segments: Optional[int] = None
) -> str:
    """Recover the image read-only and print its metrics as JSON.

    Runs LLD recovery against a power-cycled copy of the image and
    returns the recovered system's observability state: the recovery
    report (phase timings included), the frozen ``stats()`` view, and
    the full registry snapshot with latency histograms.
    """
    import json

    survivor = disk.power_cycle()
    kwargs = {}
    if slot_segments is not None:
        kwargs["checkpoint_slot_segments"] = slot_segments
    ld, report = recover(survivor, **kwargs)
    payload = {
        "recovery": {
            "segments_replayed": report.segments_replayed,
            "entries_replayed": report.entries_replayed,
            "arus_committed": report.arus_committed,
            "arus_discarded": report.arus_discarded,
            "checkpoint_seq": report.checkpoint_seq,
            "phase_us": dict(report.phase_us),
        },
        "stats": ld.stats(),
        "registry": ld.obs.snapshot(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def describe_restore(
    disk: SimulatedDisk, slot_segments: Optional[int] = None
) -> str:
    """Instant-restore preview: what ``recover(mode="instant")`` sees.

    Opens a power-cycled copy of the image in instant mode and stops
    right after phase A — before any on-demand or background replay —
    so the output shows the volume exactly as it would greet its
    first request: the replay watermark, the pending log suffix and
    the per-segment work still outstanding.
    """
    survivor = disk.power_cycle()
    kwargs = {"restore_drain_segments": 0}
    if slot_segments is not None:
        kwargs["checkpoint_slot_segments"] = slot_segments
    ld, report = recover(survivor, mode="instant", **kwargs)
    lines = [
        "instant-restore preview (phase A only, nothing replayed):",
        f"  checkpoint seq     : {report.checkpoint_seq}",
        f"  time to first req  : {report.ttfr_us:.1f} simulated us",
    ]
    controller = ld._restore
    if controller is None:
        lines.append("  pending segments   : 0 (volume fully restored)")
        return "\n".join(lines)
    lines.append(
        f"  replay watermark   : {controller.watermark} of "
        f"{len(controller.pending)} pending segments applied"
    )
    lines.append(
        f"  indexed ids        : {len(controller.block_index)} blocks, "
        f"{len(controller.list_index)} lists await replay"
    )
    lines.append("  pending (log order):")
    for decoded in controller.pending:
        lines.append(
            f"    segment {decoded.segment_no:4d}: seq {decoded.seq:6d}  "
            f"{decoded.block_count:3d} blocks  "
            f"{decoded.entry_count:4d} entries"
        )
    return "\n".join(lines)


def describe_fs(
    disk: SimulatedDisk,
    slot_segments: Optional[int] = None,
    substrate: str = "lld",
    journal_segments: int = 8,
) -> str:
    """Recover the logical disk read-only and print the file tree.

    ``substrate`` selects the recovery procedure: ``"lld"`` (default)
    or ``"jld"`` for images written by the journaling implementation.
    """
    survivor = disk.power_cycle()
    if substrate == "jld":
        from repro.jld import recover_jld

        kwargs = {"journal_segments": journal_segments}
        if slot_segments is not None:
            kwargs["checkpoint_slot_segments"] = slot_segments
        ld, jreport = recover_jld(survivor, **kwargs)
        lines = [
            f"recovered (jld): {jreport['entries_replayed']} entries from "
            f"{jreport['segments_replayed']} journal segments "
            f"(checkpoint seq {jreport['checkpoint_seq']})"
        ]
    else:
        kwargs = {}
        if slot_segments is not None:
            kwargs["checkpoint_slot_segments"] = slot_segments
        ld, report = recover(survivor, **kwargs)
        lines = [
            f"recovered: {report.entries_replayed} entries from "
            f"{report.segments_replayed} segments "
            f"(checkpoint seq {report.checkpoint_seq}, "
            f"{report.arus_discarded} ARUs discarded)"
        ]
    try:
        fs = MinixFS.mount(ld)
    except LDError as exc:
        lines.append(f"no mountable MinixFS: {exc}")
        return "\n".join(lines)

    def walk(path: str, depth: int) -> None:
        for name in sorted(fs.listdir(path)):
            child = path.rstrip("/") + "/" + name
            info = fs.stat(child)
            indent = "  " * depth
            if info.is_dir:
                lines.append(f"{indent}{name}/")
                walk(child, depth + 1)
            else:
                suffix = f" ({info.nlinks} links)" if info.nlinks > 1 else ""
                lines.append(f"{indent}{name}  {info.size} bytes{suffix}")

    lines.append("/")
    walk("/", 1)
    return "\n".join(lines)
