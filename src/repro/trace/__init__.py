"""Operation tracing: record, persist, and replay LD call streams.

A :class:`TraceRecorder` wraps any
:class:`~repro.ld.interface.LogicalDisk` and records every call (with
its arguments and results) into a :class:`Trace` that can be saved to
a file and replayed later — onto the same implementation for
regression testing, or onto a *different* one for differential
comparison (the replay engine remaps identifiers, so a trace captured
on LLD runs on JLD and vice versa).

Typical uses:

* capture a production-shaped workload once, replay it under
  ``pytest-benchmark`` against every code change,
* replay with ``verify_reads=True`` to assert byte-identical
  behaviour across implementations or refactorings.
"""

from repro.trace.trace import (
    Trace,
    TraceRecorder,
    TraceReplayError,
    replay_trace,
)

__all__ = ["Trace", "TraceRecorder", "TraceReplayError", "replay_trace"]
