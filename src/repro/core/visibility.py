"""Read-visibility policies for concurrent ARUs (Section 3.3).

The semantics of Read specify the degree of isolation between
concurrent ARUs.  The paper identifies three options of increasing
strength:

1. **MOST_RECENT_SHADOW** — a Read returns the most recent shadow
   version across *all* concurrent ARUs: every update is visible to
   every client immediately, committed or not.
2. **COMMITTED_ONLY** — a Read always returns the committed version:
   updates become visible only when their ARU commits (a reader
   inside an ARU does not even see its own shadow writes).
3. **ARU_LOCAL** — a Read inside an ARU returns that ARU's shadow
   version; simple Reads return the committed version.  Each ARU's
   shadow state is strictly local and becomes visible atomically at
   commit.

The paper's prototype implements option 3 (it is the most consistent
and the most demanding to implement, making it the honest test case
for overhead); it is our default as well.  None of the options imply
concurrency control for writes — locking is the client's job.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.records import ChainRoot
from repro.core.versions import VersionState
from repro.ld.types import ARU_NONE, ARUId


class Visibility(enum.Enum):
    """The three read-visibility options of Section 3.3."""

    MOST_RECENT_SHADOW = 1
    COMMITTED_ONLY = 2
    ARU_LOCAL = 3


def read_versions(
    root: ChainRoot,
    aru_id: Optional[ARUId],
    policy: Visibility,
    meter=None,
):
    """Yield candidate versions for a Read, strongest-match first.

    The caller walks the candidates and serves from the first one
    that can satisfy the read (carries data, an address, or proves
    the block deallocated).  The final candidate is always the
    persistent version if one exists.
    """
    candidates = []
    if policy is Visibility.MOST_RECENT_SHADOW:
        shadow = root.newest_shadow(meter)
        if shadow is not None:
            candidates.append(shadow)
    elif policy is Visibility.ARU_LOCAL:
        if aru_id is not None and aru_id != ARU_NONE:
            shadow = root.find(VersionState.SHADOW, aru_id, meter)
            if shadow is not None:
                candidates.append(shadow)
    # COMMITTED_ONLY adds no shadow candidate.
    committed = root.find(VersionState.COMMITTED, ARU_NONE, meter)
    if committed is not None:
        candidates.append(committed)
    if root.persistent is not None:
        candidates.append(root.persistent)
    return candidates
