"""JLD: a journaling, overwrite-in-place Logical Disk.

The paper's conclusion (Section 5.4) predicts that non-log-structured
LD implementations "will have to utilize at least a meta-data update
log to achieve similar performance and to fully support multiple
shadow states."  This package is that other implementation: blocks
live at fixed *home locations* and are updated in place, with a
write-ahead **redo journal** providing the failure atomicity ARUs
require — every write (data and meta-data) is journaled before any
home location changes, commit records gate redo at recovery, and a
checkpoint + apply pass bounds the journal.

It implements the same :class:`repro.ld.interface.LogicalDisk`
interface with the same ARU semantics (immediate-commit allocation,
ARU-local shadow state, list-operation replay at commit), so the
Minix file system and the transaction layer run on it unchanged —
the interface separation the Logical Disk design promises.

Use it to study the substrate trade-off the paper's design choices
imply: LLD turns random writes into sequential segment writes but
scatters sequential reads; JLD keeps read locality but pays seeks
(and double writes) on the write path.  See
``benchmarks/bench_ablation_substrate.py``.
"""

from repro.jld.jld import JLD, JournalFullError, recover_jld

__all__ = ["JLD", "JournalFullError", "recover_jld"]
