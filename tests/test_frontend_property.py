"""Property-based fairness and admission tests for the front end.

Two properties, each checked for **both** lane implementations
(``lane_impl="thread"`` and ``"async"`` run the identical drawn
schedule — the ISSUE's contract is that the knob changes the
scheduler, never the invariants):

1. **Admission conservation.** For an arbitrary tenant mix and
   arrival order under arbitrary small caps, blocking submits all
   complete, the genuine concurrency (tracked *inside* the bodies,
   not just by the scheduler's own counter) never exceeds
   ``max_inflight``, per-tenant completion counts equal per-tenant
   submissions, and the lock tables quiesce leak-free.

2. **Bursts never starve a neighbour.** However large a burst one
   greedy tenant fires while the lanes are wedged, the greedy tenant
   can only fill its own queue (its overflow is shed), a polite
   tenant's request still admits, and once the lanes unwedge every
   admitted request completes.
"""

from __future__ import annotations

import threading
from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend import FrontendConfig, make_frontend
from repro.obs.schema import validate_frontend_stats
from tests.conftest import make_lld
from tests.test_frontend import assert_no_leaks, wait_until

LANE_IMPLS = ("thread", "async")


class ConcurrencyTracker:
    """Counts bodies genuinely running at once, independent of the
    scheduler's own ``inflight`` bookkeeping."""

    def __init__(self):
        self._mutex = threading.Lock()
        self._running = 0
        self.peak = 0

    def __enter__(self):
        with self._mutex:
            self._running += 1
            self.peak = max(self.peak, self._running)
        return self

    def __exit__(self, *_exc):
        with self._mutex:
            self._running -= 1
        return False


def provisioned(n_tenants: int):
    ld = make_lld(num_segments=48)
    lst = ld.new_list()
    blocks = [ld.new_block(lst) for _ in range(n_tenants)]
    for block in blocks:
        ld.write(block, b"\0" * 16)
    ld.flush()
    return ld, blocks


schedules = st.lists(
    # (tenant index, burst length): bursts make arrival order lumpy.
    st.tuples(st.integers(0, 4), st.integers(1, 6)),
    min_size=1,
    max_size=12,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    schedule=schedules,
    n_tenants=st.integers(2, 5),
    max_inflight=st.integers(2, 8),
    max_tenant_queue=st.integers(1, 4),
)
def test_admission_conserves_and_never_overruns(
    schedule, n_tenants, max_inflight, max_tenant_queue
):
    arrivals = [
        tenant % n_tenants
        for tenant, burst in schedule
        for _ in range(burst)
    ]
    expected = Counter(f"t{tenant}" for tenant in arrivals)
    per_impl = {}
    for lane_impl in LANE_IMPLS:
        ld, blocks = provisioned(n_tenants)
        frontend = make_frontend(
            ld,
            FrontendConfig(
                lane_impl=lane_impl,
                max_inflight=max_inflight,
                max_tenant_queue=max_tenant_queue,
                async_txns_per_lane=4,
            ),
        )
        tracker = ConcurrencyTracker()

        def make_body(tenant):
            def body(txn, block=blocks[tenant]):
                with tracker:
                    txn.write(block, txn.read(block)[:1] + b"x")

            return body

        for tenant in arrivals:
            # Blocking submit: saturated arrivals wait, never shed.
            frontend.submit(make_body(tenant), f"t{tenant}")
        frontend.drain()
        stats = frontend.stats()
        frontend.close()

        assert stats["shed"] == 0
        assert stats["completed"] == len(arrivals)
        assert stats["failed"] == 0 and stats["gave_up"] == 0
        assert dict(stats["per_tenant_completed"]) == dict(expected)
        # Neither the scheduler's own watermark nor the concurrency
        # the bodies actually observed may exceed the cap.
        assert stats["inflight_max"] <= max_inflight
        assert tracker.peak <= max_inflight
        assert_no_leaks(stats)
        assert validate_frontend_stats(stats) == []
        per_impl[lane_impl] = dict(stats["per_tenant_completed"])
    assert per_impl["thread"] == per_impl["async"], per_impl


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    burst=st.integers(1, 32),
    max_tenant_queue=st.integers(1, 4),
    lane_impl=st.sampled_from(LANE_IMPLS),
)
def test_greedy_burst_cannot_starve_a_neighbour(
    burst, max_tenant_queue, lane_impl
):
    ld, blocks = provisioned(2)
    frontend = make_frontend(
        ld,
        FrontendConfig(
            lane_impl=lane_impl,
            workers_per_lane=1,
            max_inflight=64,
            max_tenant_queue=max_tenant_queue,
            async_txns_per_lane=1,
        ),
    )
    gate = threading.Event()

    def wedge(txn):
        gate.wait(10.0)
        txn.read(blocks[0])

    def polite_body(txn):
        txn.read(blocks[1])

    # Wedge the (single-slot) lane, then flood from the greedy tenant.
    running = frontend.submit(wedge, "greedy")
    # Wait for it to genuinely *start* (not just be admitted), so the
    # greedy tenant's queue is empty when the burst arrives.
    wait_until(lambda: running.state == "running")
    greedy = [
        frontend.try_submit(wedge, "greedy") for _ in range(burst)
    ]
    admitted_greedy = [handle for handle in greedy if handle is not None]
    # The greedy tenant can occupy at most its own queue cap...
    assert len(admitted_greedy) <= max_tenant_queue
    if burst > max_tenant_queue:
        assert len(admitted_greedy) == max_tenant_queue
    # ...and the polite tenant still gets in, regardless of the burst.
    polite = frontend.try_submit(polite_body, "polite")
    assert polite is not None, "greedy burst starved the polite tenant"
    gate.set()
    for handle in (running, polite, *admitted_greedy):
        handle.wait(10.0)
    frontend.drain()
    stats = frontend.stats()
    frontend.close()
    assert stats["completed"] == 2 + len(admitted_greedy)
    assert stats["shed"] == burst - len(admitted_greedy)
    assert stats["per_tenant_completed"]["polite"] == 1
    assert_no_leaks(stats)
