"""Figure 5 — small-file throughput (create+write / read / delete).

The paper creates-and-writes, reads, then deletes 10,000 x 1 KB and
1,000 x 10 KB files on the three MinixLLD variants of Table 1 and
reports files/second.  The key shapes: create overhead 7.2 % (1 KB)
and 4.0 % (10 KB); delete overhead 24.6 %/25.5 %, improved to
20.5 %/17.9 % by the whole-list deletion policy; reads near-equal.

Wall-clock time measured by pytest-benchmark is the simulator's
execution time; the reproduced metric is the *simulated* throughput
in the printed table.
"""

import pytest

from repro.harness.runner import run_figure5
from repro.harness.variants import paper_geometry

from benchmarks.conftest import full_scale, report_table

if full_scale():
    SIZE_CLASSES = [
        {"n_files": 10_000, "file_size": 1024},
        {"n_files": 1_000, "file_size": 10 * 1024},
    ]
    GEOMETRY = paper_geometry(1.0)
else:
    SIZE_CLASSES = [
        {"n_files": 1_500, "file_size": 1024},
        {"n_files": 600, "file_size": 10 * 1024},
    ]
    GEOMETRY = paper_geometry(0.4)

#: Segment-boundary quantization tolerance for the ordering asserts
#: at reduced scale; the full-size run is held to the strict bound.
TOLERANCE = 1.005 if full_scale() else 1.06

_RESULT = {}


def _run():
    result = run_figure5(size_classes=SIZE_CLASSES, geometry=GEOMETRY)
    _RESULT["figure5"] = result
    return result


@pytest.mark.benchmark(group="figure5")
def test_figure5_small_files(benchmark):
    """Run the full Figure 5 matrix (3 variants x 2 size classes)."""
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    report_table("figure5_small_files", result.table)
    for name, per_size in result.results.items():
        for size, phase_result in per_size.items():
            prefix = f"{name}_{size // 1024}kb"
            benchmark.extra_info[f"{prefix}_create_write_fps"] = round(
                phase_result.create_write_fps, 1
            )
            benchmark.extra_info[f"{prefix}_read_fps"] = round(
                phase_result.read_fps, 1
            )
            benchmark.extra_info[f"{prefix}_delete_fps"] = round(
                phase_result.delete_fps, 1
            )
    # Sanity: the headline orderings of the paper must hold.  A 1 %
    # tolerance absorbs segment-boundary quantization at small scale;
    # the strict bands live in tests/test_calibration.py.
    for spec in SIZE_CLASSES:
        size = spec["file_size"]
        old = result.results["old"][size]
        new = result.results["new"][size]
        improved = result.results["new_delete"][size]
        assert new.create_write_fps < old.create_write_fps * TOLERANCE
        assert new.delete_fps < old.delete_fps
        assert improved.delete_fps > new.delete_fps * 0.99
