#!/usr/bin/env python3
"""Operational tooling: traces, disk images, and lddump.

Records a workload as a portable trace, replays it byte-verified on
the *other* logical-disk implementation (LLD -> JLD), then saves a
disk image and inspects it the way an operator would.

Run:  python examples/trace_and_inspect.py
"""

import tempfile
from pathlib import Path

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.fs import MinixFS
from repro.jld import JLD
from repro.lld.lld import LLD
from repro.tools.inspect import describe_checkpoints, describe_disk, describe_fs
from repro.trace import Trace, TraceRecorder, replay_trace


def build_lld():
    geo = DiskGeometry.small(num_segments=96)
    return LLD(SimulatedDisk(geo), checkpoint_slot_segments=2)


def build_jld():
    geo = DiskGeometry.small(num_segments=96)
    return JLD(
        SimulatedDisk(geo), journal_segments=6, checkpoint_slot_segments=2
    )


def workload(ld) -> None:
    """Some ARU-heavy activity worth replaying."""
    ledger = ld.new_list()
    previous = None
    for index in range(10):
        aru = ld.begin_aru()
        if previous is None:
            block = ld.new_block(ledger, aru=aru)
        else:
            block = ld.new_block(ledger, predecessor=previous, aru=aru)
        ld.write(block, f"entry {index}: +{index * 10} coins".encode(), aru=aru)
        ld.end_aru(aru)
        previous = block
    ld.flush()
    for block in ld.list_blocks(ledger):
        ld.read(block)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))

    # 1. Record on LLD.
    recorder = TraceRecorder(build_lld())
    workload(recorder)
    trace_path = workdir / "ledger.trace"
    count = recorder.trace.save(trace_path)
    print(f"recorded {count} operations -> {trace_path}")

    # 2. Replay, byte-verified, on the journaling implementation.
    result = replay_trace(Trace.load(trace_path), build_jld())
    print(f"replayed on JLD: {result.ops_replayed} ops, "
          f"{result.reads_verified} reads byte-verified — "
          "two implementations, identical behaviour")

    # 3. Build a small file system, image it, inspect the image.
    lld = build_lld()
    fs = MinixFS.mkfs(lld, n_inodes=64)
    fs.mkdir("/ledger")
    fs.create("/ledger/2026-07.txt")
    fs.write_file("/ledger/2026-07.txt", b"opening balance: 100\n" * 20)
    fs.sync()
    lld.write_checkpoint()
    image_path = workdir / "disk.img"
    segments = lld.disk.save_image(image_path)
    print(f"\nsaved {segments} segments -> {image_path}")

    loaded = SimulatedDisk.load_image(image_path)
    print()
    print(describe_disk(loaded))
    print()
    print(describe_checkpoints(loaded, slot_segments=2))
    print()
    print(describe_fs(loaded, slot_segments=2))
    print(f"\n(try: python -m repro.tools.lddump {image_path} "
          "--segments --ckpt-segments 2)")


if __name__ == "__main__":
    main()
