"""Unit tests for LD identifier and address types."""

import pytest

from repro.ld.types import ARU_NONE, FIRST, PhysAddr, _First


class TestFirstSentinel:
    def test_singleton(self):
        assert _First() is FIRST
        assert _First() is _First()

    def test_repr(self):
        assert repr(FIRST) == "FIRST"

    def test_not_equal_to_block_ids(self):
        assert FIRST != 0
        assert FIRST != 1


class TestPhysAddr:
    def test_fields(self):
        addr = PhysAddr(3, 7)
        assert addr.segment == 3
        assert addr.slot == 7

    def test_equality_and_hash(self):
        assert PhysAddr(1, 2) == PhysAddr(1, 2)
        assert PhysAddr(1, 2) != PhysAddr(1, 3)
        assert len({PhysAddr(1, 2), PhysAddr(1, 2)}) == 1

    def test_ordering(self):
        assert PhysAddr(1, 5) < PhysAddr(2, 0)
        assert PhysAddr(1, 1) < PhysAddr(1, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PhysAddr(-1, 0)
        with pytest.raises(ValueError):
            PhysAddr(0, -1)

    def test_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            PhysAddr(0, 0).slot = 5

    def test_repr(self):
        assert repr(PhysAddr(2, 9)) == "PhysAddr(seg=2, slot=9)"


class TestARUNone:
    def test_is_falsy_zero(self):
        assert ARU_NONE == 0
        assert not ARU_NONE
