"""Reproduction shape tests: the paper's results, as acceptance bands.

These run scaled-down versions of the paper's three experiments and
assert the *shapes* the paper reports (Section 5.3), with generous
bands — who wins, by roughly what factor, and where the orderings
fall:

* Figure 5 — create+write overhead is small single-digit percent and
  larger for 1 KB than 10 KB files; reads are near-equal; deletion
  overhead is large (paper: 24.6 %/25.5 %); the improved deletion
  policy narrows it, more for 10 KB files.
* Figure 6 — reads and writes are near-equal across variants; both
  write phases run near disk bandwidth; random reads and sequential
  reads after a random rewrite are seek-bound.
* Section 5.3 — an empty BeginARU/EndARU pair costs tens of
  microseconds (paper: 78.47 us) and commit records alone fill
  segments only very slowly (paper: 24 segments / 500,000 ARUs).
"""

import pytest

from repro.harness.reporting import percent_difference
from repro.harness.variants import VARIANTS, build_variant, paper_geometry
from repro.workloads.arulat import run_aru_latency
from repro.workloads.largefile import run_large_file
from repro.workloads.smallfile import run_small_files


@pytest.fixture(scope="module")
def figure5():
    results = {}
    for name in ("old", "new", "new_delete"):
        per_size = {}
        for n_files, size in ((800, 1024), (300, 10 * 1024)):
            _d, _l, fs = build_variant(
                VARIANTS[name], geometry=paper_geometry(0.4), n_inodes=2048
            )
            per_size[size] = run_small_files(fs, n_files, size)
        results[name] = per_size
    return results


@pytest.fixture(scope="module")
def figure6():
    results = {}
    for name in ("old", "new"):
        # Cache well below the file size, as in the paper's testbed.
        _d, _l, fs = build_variant(
            VARIANTS[name], geometry=paper_geometry(0.15), n_inodes=64,
            cache_blocks=512,
        )
        results[name] = run_large_file(fs, file_size=8 * 1024 * 1024)
    return results


def delta(figure5, size, phase):
    old = figure5["old"][size].phase(phase)
    new = figure5["new"][size].phase(phase)
    return percent_difference(old, new)


class TestFigure5Shapes:
    def test_create_overhead_small_single_digit(self, figure5):
        for size in (1024, 10 * 1024):
            overhead = delta(figure5, size, "create_write")
            assert 0.5 <= overhead <= 12.0, (size, overhead)

    def test_create_overhead_larger_for_smaller_files(self, figure5):
        assert delta(figure5, 1024, "create_write") > delta(
            figure5, 10 * 1024, "create_write"
        )

    def test_read_overhead_negligible(self, figure5):
        for size in (1024, 10 * 1024):
            assert abs(delta(figure5, size, "read")) <= 5.0

    def test_delete_overhead_pronounced(self, figure5):
        """Paper: 24.6 % and 25.5 % — an order of magnitude above the
        create overhead."""
        for size in (1024, 10 * 1024):
            overhead = delta(figure5, size, "delete")
            assert 15.0 <= overhead <= 45.0, (size, overhead)

    def test_improved_deletion_narrows_the_gap(self, figure5):
        for size in (1024, 10 * 1024):
            old = figure5["old"][size].delete_fps
            new = figure5["new"][size].delete_fps
            improved = figure5["new_delete"][size].delete_fps
            assert improved > new, (size, new, improved)
            assert percent_difference(old, improved) < percent_difference(
                old, new
            )

    def test_improvement_more_pronounced_for_larger_files(self, figure5):
        """Paper: the gain is bigger for 10 KB files (longer lists ->
        longer predecessor searches avoided): 25.5->17.9 vs
        24.6->20.5."""

        def gain(size):
            old = figure5["old"][size].delete_fps
            return percent_difference(
                old, figure5["new"][size].delete_fps
            ) - percent_difference(old, figure5["new_delete"][size].delete_fps)

        assert gain(10 * 1024) > gain(1024)


class TestFigure6Shapes:
    def test_write_overhead_small(self, figure6):
        for phase in ("write1", "write2"):
            overhead = percent_difference(
                figure6["old"].phase(phase), figure6["new"].phase(phase)
            )
            assert -1.0 <= overhead <= 5.0, (phase, overhead)

    def test_read_overhead_negligible(self, figure6):
        for phase in ("read1", "read2", "read3"):
            overhead = percent_difference(
                figure6["old"].phase(phase), figure6["new"].phase(phase)
            )
            assert abs(overhead) <= 2.0, (phase, overhead)

    def test_log_absorbs_random_writes(self, figure6):
        result = figure6["new"]
        assert result.phase("write2") > 0.7 * result.phase("write1")

    def test_sequential_write_near_bandwidth(self, figure6):
        """Paper: LLD uses ~85 % of available write bandwidth."""
        from repro.disk.timing import HP_C3010

        bandwidth_mbps = HP_C3010.transfer_rate_bps / (1024 * 1024)
        assert figure6["new"].phase("write1") > 0.7 * bandwidth_mbps

    def test_random_reads_seek_bound(self, figure6):
        result = figure6["new"]
        assert result.phase("read2") < 0.3 * result.phase("read1")

    def test_sequential_read_after_random_write_slow(self, figure6):
        """The LFS weakness the LD paper documents: read3 collapses
        after the file is rewritten in random order."""
        result = figure6["new"]
        assert result.phase("read3") < 0.3 * result.phase("read1")


class TestARULatencyShape:
    def test_latency_and_segment_count(self):
        _d, ld, _fs = build_variant(
            VARIANTS["new"], geometry=paper_geometry(0.25), n_inodes=64
        )
        result = run_aru_latency(ld, iterations=60_000)
        # Paper: 78.47 us per ARU pair.
        assert 40.0 <= result.latency_us <= 120.0, result.latency_us
        # Paper: 24 segments per 500,000 ARUs (commit records only).
        scaled = result.scaled_segments(500_000)
        assert 15 <= scaled <= 40, scaled

    def test_old_prototype_aru_pair_cheaper(self):
        """Sequential (old) ARUs skip the merge machinery and should
        cost no more than the concurrent ones."""
        _d, ld_new, _f = build_variant(
            VARIANTS["new"], geometry=paper_geometry(0.2), n_inodes=64
        )
        _d, ld_old, _f = build_variant(
            VARIANTS["old"], geometry=paper_geometry(0.2), n_inodes=64
        )
        new_result = run_aru_latency(ld_new, iterations=20_000)
        old_result = run_aru_latency(ld_old, iterations=20_000)
        assert old_result.latency_us <= new_result.latency_us * 1.05
