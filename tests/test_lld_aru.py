"""Semantic tests for concurrent atomic recovery units (Section 3)."""

import pytest

from repro.core.visibility import Visibility
from repro.errors import (
    BadARUError,
    BadBlockError,
    ConcurrencyError,
)

from tests.conftest import make_lld


@pytest.fixture
def setup(lld):
    """A committed list with one committed block holding 'base'."""
    lst = lld.new_list()
    block = lld.new_block(lst)
    lld.write(block, b"base")
    return lld, lst, block


class TestShadowIsolation:
    """Option 3 (the prototype's choice): shadow state is strictly
    local to its ARU and becomes visible atomically at commit."""

    def test_aru_sees_own_writes(self, setup):
        lld, _lst, block = setup
        aru = lld.begin_aru()
        lld.write(block, b"shadow", aru=aru)
        assert lld.read(block, aru=aru).startswith(b"shadow")

    def test_simple_read_does_not_see_shadow(self, setup):
        lld, _lst, block = setup
        aru = lld.begin_aru()
        lld.write(block, b"shadow", aru=aru)
        assert lld.read(block).startswith(b"base")

    def test_other_aru_does_not_see_shadow(self, setup):
        lld, _lst, block = setup
        a = lld.begin_aru()
        b = lld.begin_aru()
        lld.write(block, b"from-a", aru=a)
        assert lld.read(block, aru=b).startswith(b"base")

    def test_two_arus_keep_separate_shadows(self, setup):
        lld, _lst, block = setup
        a = lld.begin_aru()
        b = lld.begin_aru()
        lld.write(block, b"from-a", aru=a)
        lld.write(block, b"from-b", aru=b)
        assert lld.read(block, aru=a).startswith(b"from-a")
        assert lld.read(block, aru=b).startswith(b"from-b")

    def test_commit_publishes_atomically(self, setup):
        lld, _lst, block = setup
        aru = lld.begin_aru()
        lld.write(block, b"published", aru=aru)
        lld.end_aru(aru)
        assert lld.read(block).startswith(b"published")

    def test_shadow_delete_hidden_until_commit(self, setup):
        lld, _lst, block = setup
        aru = lld.begin_aru()
        lld.delete_block(block, aru=aru)
        # Within the ARU the block is gone...
        with pytest.raises(BadBlockError):
            lld.read(block, aru=aru)
        # ...but the committed state still has it.
        assert lld.read(block).startswith(b"base")
        lld.end_aru(aru)
        with pytest.raises(BadBlockError):
            lld.read(block)

    def test_list_ops_are_shadowed(self, setup):
        lld, lst, block = setup
        aru = lld.begin_aru()
        extra = lld.new_block(lst, predecessor=block, aru=aru)
        assert lld.list_blocks(lst, aru=aru) == [block, extra]
        assert lld.list_blocks(lst) == [block]  # invisible outside
        lld.end_aru(aru)
        assert lld.list_blocks(lst) == [block, extra]


class TestAllocationSemantics:
    """NewBlock/NewList commit immediately even inside ARUs
    (Section 3.3), so concurrent ARUs never collide on identifiers."""

    def test_concurrent_arus_get_distinct_blocks(self, setup):
        lld, lst, _block = setup
        a = lld.begin_aru()
        b = lld.begin_aru()
        blocks = {
            lld.new_block(lst, aru=a),
            lld.new_block(lst, aru=b),
            lld.new_block(lst, aru=a),
            lld.new_block(lst, aru=b),
        }
        assert len(blocks) == 4

    def test_allocation_reserves_id_for_others(self, setup):
        lld, lst, _block = setup
        aru = lld.begin_aru()
        mine = lld.new_block(lst, aru=aru)
        other = lld.new_block(lst)  # simple op: must skip `mine`
        assert other != mine

    def test_allocation_not_in_any_list_for_others(self, setup):
        lld, lst, block = setup
        aru = lld.begin_aru()
        lld.new_block(lst, aru=aru)
        assert lld.list_blocks(lst) == [block]

    def test_allocation_survives_abort(self, setup):
        """Aborted ARUs leave their allocations behind; the
        consistency sweep reclaims them (Section 3.3)."""
        lld, lst, block = setup
        aru = lld.begin_aru()
        orphan = lld.new_block(lst, aru=aru)
        lld.abort_aru(aru)
        assert lld.list_blocks(lst) == [block]
        freed = lld.sweep_orphan_blocks()
        assert orphan in freed


class TestAbort:
    def test_abort_discards_writes(self, setup):
        lld, _lst, block = setup
        aru = lld.begin_aru()
        lld.write(block, b"discarded", aru=aru)
        lld.abort_aru(aru)
        assert lld.read(block).startswith(b"base")

    def test_abort_discards_deletes(self, setup):
        lld, lst, block = setup
        aru = lld.begin_aru()
        lld.delete_block(block, aru=aru)
        lld.abort_aru(aru)
        assert lld.list_blocks(lst) == [block]
        assert lld.read(block).startswith(b"base")

    def test_aborted_aru_unusable(self, setup):
        lld, _lst, block = setup
        aru = lld.begin_aru()
        lld.abort_aru(aru)
        with pytest.raises(BadARUError):
            lld.write(block, b"x", aru=aru)

    def test_commit_after_abort_fails(self, setup):
        lld, _lst, _block = setup
        aru = lld.begin_aru()
        lld.abort_aru(aru)
        with pytest.raises(BadARUError):
            lld.end_aru(aru)


class TestCommitSemantics:
    def test_serialized_by_end_aru_time(self, setup):
        """ARUs are serialized by the time of the EndARU operation:
        the later commit wins."""
        lld, _lst, block = setup
        a = lld.begin_aru()
        b = lld.begin_aru()
        lld.write(block, b"from-a", aru=a)
        lld.write(block, b"from-b", aru=b)
        lld.end_aru(b)
        lld.end_aru(a)  # a commits later -> a's version wins
        assert lld.read(block).startswith(b"from-a")

    def test_empty_aru_commit(self, lld):
        aru = lld.begin_aru()
        lld.end_aru(aru)  # no operations: still fine

    def test_unknown_aru_operations(self, setup):
        lld, _lst, block = setup
        with pytest.raises(BadARUError):
            lld.write(block, b"x", aru=999)
        with pytest.raises(BadARUError):
            lld.end_aru(999)

    def test_commit_then_flush_persists(self, setup):
        lld, _lst, block = setup
        aru = lld.begin_aru()
        lld.write(block, b"persist-me", aru=aru)
        lld.end_aru(aru)
        lld.flush()
        assert lld.read(block).startswith(b"persist-me")

    def test_many_interleaved_arus(self, lld):
        lst = lld.new_list()
        arus = [lld.begin_aru() for _ in range(8)]
        blocks = {}
        for index, aru in enumerate(arus):
            block = lld.new_block(lst, aru=aru)
            lld.write(block, f"aru-{index}".encode(), aru=aru)
            blocks[aru] = block
        for index, aru in enumerate(arus):
            lld.end_aru(aru)
        lld.flush()
        for index, aru in enumerate(arus):
            assert lld.read(blocks[aru]).startswith(f"aru-{index}".encode())
        assert len(lld.list_blocks(lst)) == 8


class TestConflicts:
    def test_replay_conflict_raises_by_default(self, setup):
        """Two ARUs deleting the same block: clients must lock, and
        without locks the replay surfaces the conflict."""
        lld, _lst, block = setup
        a = lld.begin_aru()
        b = lld.begin_aru()
        lld.delete_block(block, aru=a)
        lld.delete_block(block, aru=b)
        lld.end_aru(a)
        with pytest.raises(ConcurrencyError):
            lld.end_aru(b)

    def test_replay_conflict_skippable(self):
        lld = make_lld(conflict_policy="skip")
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"base")
        a = lld.begin_aru()
        b = lld.begin_aru()
        lld.delete_block(block, aru=a)
        lld.delete_block(block, aru=b)
        lld.end_aru(a)
        lld.end_aru(b)  # conflict silently skipped
        assert lld.stats()["ops"].get("replay_conflicts_skipped", 0) >= 1


class TestSequentialMode:
    """The "old" prototype: one ARU at a time, applied directly."""

    def test_only_one_active_aru(self, old_lld):
        aru = old_lld.begin_aru()
        with pytest.raises(ConcurrencyError):
            old_lld.begin_aru()
        old_lld.end_aru(aru)
        old_lld.begin_aru()

    def test_operations_apply_directly(self, old_lld):
        lst = old_lld.new_list()
        aru = old_lld.begin_aru()
        block = old_lld.new_block(lst, aru=aru)
        old_lld.write(block, b"direct", aru=aru)
        # Sequential mode has no shadow state: visible immediately.
        assert old_lld.read(block).startswith(b"direct")
        old_lld.end_aru(aru)

    def test_abort_unsupported(self, old_lld):
        aru = old_lld.begin_aru()
        with pytest.raises(ConcurrencyError):
            old_lld.abort_aru(aru)
        old_lld.end_aru(aru)


class TestVisibilityOptions:
    """The three Read-visibility options of Section 3.3."""

    def _prepared(self, visibility):
        lld = make_lld(visibility=visibility)
        lst = lld.new_list()
        block = lld.new_block(lst)
        lld.write(block, b"committed")
        return lld, block

    def test_option1_sees_any_shadow(self):
        lld, block = self._prepared(Visibility.MOST_RECENT_SHADOW)
        aru = lld.begin_aru()
        lld.write(block, b"shadow", aru=aru)
        # Even a simple read sees the most recent shadow version.
        assert lld.read(block).startswith(b"shadow")

    def test_option1_picks_most_recent_shadow(self):
        lld, block = self._prepared(Visibility.MOST_RECENT_SHADOW)
        a = lld.begin_aru()
        b = lld.begin_aru()
        lld.write(block, b"first", aru=a)
        lld.write(block, b"second", aru=b)
        assert lld.read(block).startswith(b"second")

    def test_option2_never_sees_shadow(self):
        lld, block = self._prepared(Visibility.COMMITTED_ONLY)
        aru = lld.begin_aru()
        lld.write(block, b"shadow", aru=aru)
        # Not even the writing ARU sees its own shadow version.
        assert lld.read(block, aru=aru).startswith(b"committed")
        lld.end_aru(aru)
        assert lld.read(block, aru=None).startswith(b"shadow")

    def test_option3_is_aru_local(self):
        lld, block = self._prepared(Visibility.ARU_LOCAL)
        a = lld.begin_aru()
        b = lld.begin_aru()
        lld.write(block, b"mine", aru=a)
        assert lld.read(block, aru=a).startswith(b"mine")
        assert lld.read(block, aru=b).startswith(b"committed")
        assert lld.read(block).startswith(b"committed")
