"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.disk.clock import CostModel, SimClock
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.lld.lld import LLD


@pytest.fixture
def geometry() -> DiskGeometry:
    """A small partition: 16-block segments, 64 segments."""
    return DiskGeometry.small(num_segments=64)


@pytest.fixture
def disk(geometry) -> SimulatedDisk:
    return SimulatedDisk(geometry)


@pytest.fixture
def lld(disk) -> LLD:
    """A concurrent-ARU LLD on the small partition."""
    return LLD(disk, checkpoint_slot_segments=2)


@pytest.fixture
def old_lld(geometry) -> LLD:
    """A sequential-ARU ("old") LLD on its own small partition."""
    disk = SimulatedDisk(geometry)
    return LLD(disk, aru_mode="sequential", checkpoint_slot_segments=2)


def make_lld(num_segments: int = 64, **kwargs) -> LLD:
    """Standalone helper for tests that need custom parameters."""
    geo = DiskGeometry.small(num_segments=num_segments)
    disk = SimulatedDisk(geo)
    kwargs.setdefault("checkpoint_slot_segments", 2)
    return LLD(disk, **kwargs)
