"""The pipelined write path: write-behind and group commit.

Three workloads compare the serial write path (every sealed segment
written synchronously, every commit flushed on its own) against the
pipelined one (bounded write-behind queue draining through
scatter-gather ``write_many``, commit records grouped at drain
points):

* **Sequential fill** — large streaming writes; the queue turns N
  single-segment writes into N/depth batched writes whose adjacent
  segments coalesce into one seek plus a streamed transfer.
* **Commit storm** — many tiny ARUs, each made durable; the serial
  baseline pays one partial-segment flush per commit, group commit
  shares one segment write among ``max_parked`` commits.  The 2x
  simulated-time gate on this workload is the acceptance criterion
  of the write-path PR.
* **Clean under load** — overwrite churn on a small partition so the
  cleaner runs mid-workload; evacuation copies ride the same queue,
  proving write-behind does not regress the cleaner's pathology.

Machine-readable results accumulate in
``benchmarks/results/BENCH_write.json``.
"""

import time

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.harness.reporting import format_table
from repro.lld.lld import LLD
from repro.lld.verify import verify_lld

from benchmarks.conftest import full_scale, report_json, report_table

#: Blocks streamed by the sequential-fill workload.
FILL_BLOCKS = 4000 if full_scale() else 800

#: Tiny ARUs committed (and made durable) by the commit storm.
STORM_ARUS = 2000 if full_scale() else 400

#: Blocks in the clean-under-load working set (overwritten 3x).
CHURN_BLOCKS = 600 if full_scale() else 200

_RESULTS: dict = {}


def _save() -> None:
    report_json("write", _RESULTS)


def build_lld(num_segments, block_size=4096, **kwargs):
    geo = DiskGeometry.small(num_segments=num_segments, block_size=block_size)
    disk = SimulatedDisk(geo)
    kwargs.setdefault("checkpoint_slot_segments", 2)
    return LLD(disk, **kwargs)


# ======================================================================
# Sequential fill
# ======================================================================


def run_fill(writeback_depth):
    segments_needed = FILL_BLOCKS // 16 + 48
    ld = build_lld(segments_needed, writeback_depth=writeback_depth)
    lst = ld.new_list()
    start_us = ld.clock.now_us
    for index in range(FILL_BLOCKS):
        block = ld.new_block(lst)
        ld.write(block, b"fill-%06d" % index)
    ld.flush()
    elapsed_ms = (ld.clock.now_us - start_us) / 1000.0
    assert verify_lld(ld) == []
    return elapsed_ms, ld.disk.stats()


@pytest.mark.benchmark(group="write_path")
def test_sequential_fill(benchmark):
    def run():
        serial_ms, _ = run_fill(writeback_depth=0)
        pipelined_ms, disk_stats = run_fill(writeback_depth=8)
        return serial_ms, pipelined_ms, disk_stats

    serial_ms, pipelined_ms, disk_stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = serial_ms / max(pipelined_ms, 1e-9)
    table = format_table(
        f"Write path — sequential fill of {FILL_BLOCKS} blocks (simulated)",
        ["time ms", "speedup"],
        {
            "serial writes": [serial_ms, 1.0],
            "write-behind (depth 8)": [pipelined_ms, speedup],
        },
    )
    report_table("write_sequential_fill", table)
    _RESULTS["sequential_fill"] = {
        "blocks": FILL_BLOCKS,
        "serial_ms": round(serial_ms, 1),
        "pipelined_ms": round(pipelined_ms, 1),
        "speedup": round(speedup, 2),
        "write_batches": disk_stats["write_batches"],
        "write_batched_requests": disk_stats["write_batched_requests"],
        "write_batched_runs": disk_stats["write_batched_runs"],
    }
    _save()
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert pipelined_ms < serial_ms, (
        f"write-behind slower than serial: {pipelined_ms:.1f} ms vs "
        f"{serial_ms:.1f} ms"
    )
    # Batches really coalesced: far fewer runs than batched requests.
    assert disk_stats["write_batched_runs"] < disk_stats["write_batched_requests"]


# ======================================================================
# Commit storm
# ======================================================================


def run_storm(group_commit, metrics=True):
    # 1 KB blocks keep the platter small while the storm writes one
    # segment per serial commit.
    segments_needed = STORM_ARUS + 64 if not group_commit else STORM_ARUS + 64
    ld = build_lld(
        segments_needed,
        block_size=1024,
        writeback_depth=8 if group_commit else 0,
        group_commit=group_commit,
        group_commit_max_parked=16,
        group_commit_timeout_us=1e12,
        metrics=metrics,
    )
    lst = ld.new_list()
    start_us = ld.clock.now_us
    for index in range(STORM_ARUS):
        aru = ld.begin_aru()
        block = ld.new_block(lst, aru=aru)
        ld.write(block, b"storm-%06d" % index, aru)
        ld.end_aru(aru)
        if not group_commit:
            # The serial baseline makes every commit durable on its
            # own: one partial-segment flush per ARU.
            ld.flush()
    ld.flush()
    elapsed_ms = (ld.clock.now_us - start_us) / 1000.0
    assert ld.checkpoint_safe()
    stats = ld.stats()
    return elapsed_ms, stats


@pytest.mark.benchmark(group="write_path")
def test_commit_storm(benchmark):
    """The acceptance gate: group commit + write-behind is at least
    2x faster (simulated time) than commit-at-a-time flushing."""

    def run():
        wall = time.perf_counter()
        serial_ms, serial_stats = run_storm(group_commit=False)
        serial_wall_ms = (time.perf_counter() - wall) * 1000.0
        wall = time.perf_counter()
        grouped_ms, grouped_stats = run_storm(group_commit=True)
        grouped_wall_ms = (time.perf_counter() - wall) * 1000.0
        return (
            serial_ms, serial_stats, grouped_ms, grouped_stats,
            serial_wall_ms, grouped_wall_ms,
        )

    (
        serial_ms, serial_stats, grouped_ms, grouped_stats,
        serial_wall_ms, grouped_wall_ms,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = serial_ms / max(grouped_ms, 1e-9)
    table = format_table(
        f"Write path — commit storm, {STORM_ARUS} tiny ARUs made durable "
        "(simulated; wall ms is host time)",
        ["time ms", "segments", "speedup", "wall ms"],
        {
            "flush per commit": [
                serial_ms,
                float(serial_stats["segments_flushed"]),
                1.0,
                serial_wall_ms,
            ],
            "group commit (16)": [
                grouped_ms,
                float(grouped_stats["segments_flushed"]),
                speedup,
                grouped_wall_ms,
            ],
        },
    )
    report_table("write_commit_storm", table)
    _RESULTS["commit_storm"] = {
        "arus": STORM_ARUS,
        "serial_ms": round(serial_ms, 1),
        "grouped_ms": round(grouped_ms, 1),
        "speedup": round(speedup, 2),
        "serial_segments": serial_stats["segments_flushed"],
        "grouped_segments": grouped_stats["segments_flushed"],
        "commits_grouped": grouped_stats["group_commit"]["commits_grouped"],
        "groups_flushed": grouped_stats["group_commit"]["groups_flushed"],
        "avg_fill_serial": round(serial_stats["segments"]["avg_fill"], 4),
        "avg_fill_grouped": round(grouped_stats["segments"]["avg_fill"], 4),
        # Host time (not simulated): tracks the wall-clock fast paths.
        "serial_wall_ms": round(serial_wall_ms, 2),
        "grouped_wall_ms": round(grouped_wall_ms, 2),
    }
    _save()
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 2.0, (
        f"group commit only {speedup:.2f}x over flush-per-commit "
        f"({serial_ms:.1f} ms -> {grouped_ms:.1f} ms)"
    )


# ======================================================================
# Metrics overhead
# ======================================================================

#: Quick-scale commit-storm baselines recorded before the
#: observability subsystem landed (STORM_ARUS=400).  The simulated
#: times are deterministic, so staying within the 3% gate proves the
#: instrumented write path costs (next to) nothing simulated.
PRE_OBS_SERIAL_MS = 3086.9
PRE_OBS_GROUPED_MS = 508.8


@pytest.mark.benchmark(group="write_path")
def test_metrics_overhead(benchmark):
    """The observability guardrail.

    1. Metrics on vs off must produce *identical* simulated times —
       the registry and recorder never touch the simulated clock.
    2. At quick scale, both storm variants must stay within 3% of the
       pre-observability baselines, so the instrumentation (and its
       disabled fast path) cannot silently tax the write path.
    3. Host wall-clock for both modes is reported (informational).
    """

    def run():
        timings = {}
        wall = time.perf_counter()
        on_serial_ms, _ = run_storm(group_commit=False, metrics=True)
        on_grouped_ms, _ = run_storm(group_commit=True, metrics=True)
        timings["wall_on_s"] = time.perf_counter() - wall
        wall = time.perf_counter()
        off_serial_ms, _ = run_storm(group_commit=False, metrics=False)
        off_grouped_ms, _ = run_storm(group_commit=True, metrics=False)
        timings["wall_off_s"] = time.perf_counter() - wall
        return on_serial_ms, on_grouped_ms, off_serial_ms, off_grouped_ms, \
            timings

    on_serial, on_grouped, off_serial, off_grouped, timings = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    assert on_serial == off_serial, (
        f"metrics changed simulated serial time: {on_serial} vs {off_serial}"
    )
    assert on_grouped == off_grouped, (
        f"metrics changed simulated grouped time: "
        f"{on_grouped} vs {off_grouped}"
    )
    if not full_scale():
        for label, got, baseline in (
            ("serial", off_serial, PRE_OBS_SERIAL_MS),
            ("grouped", off_grouped, PRE_OBS_GROUPED_MS),
        ):
            drift = abs(got - baseline) / baseline
            assert drift < 0.03, (
                f"{label} storm drifted {drift:.1%} from the "
                f"pre-observability baseline ({got:.1f} ms vs "
                f"{baseline:.1f} ms)"
            )
    _RESULTS["metrics_overhead"] = {
        "serial_ms": round(off_serial, 1),
        "grouped_ms": round(off_grouped, 1),
        "wall_metrics_on_s": round(timings["wall_on_s"], 3),
        "wall_metrics_off_s": round(timings["wall_off_s"], 3),
    }
    _save()


# ======================================================================
# Clean under load
# ======================================================================


def run_churn(writeback_depth):
    # A partition sized so overwrite churn forces the cleaner to run
    # during the workload.
    ld = build_lld(
        CHURN_BLOCKS // 16 + 28,
        writeback_depth=writeback_depth,
        clean_low_water=4,
        clean_high_water=8,
    )
    lst = ld.new_list()
    blocks = []
    start_us = ld.clock.now_us
    for index in range(CHURN_BLOCKS):
        block = ld.new_block(lst)
        ld.write(block, b"seed-%06d" % index)
        blocks.append(block)
    for round_no in range(3):
        for index, block in enumerate(blocks):
            if index % 2 == round_no % 2:
                ld.write(block, b"churn-%d-%06d" % (round_no, index))
    ld.flush()
    elapsed_ms = (ld.clock.now_us - start_us) / 1000.0
    assert ld.cleanings > 0, "workload never triggered the cleaner"
    assert verify_lld(ld) == []
    return elapsed_ms, ld.stats()


@pytest.mark.benchmark(group="write_path")
def test_clean_under_load(benchmark):
    def run():
        serial_ms, _ = run_churn(writeback_depth=0)
        pipelined_ms, stats = run_churn(writeback_depth=8)
        return serial_ms, pipelined_ms, stats

    serial_ms, pipelined_ms, stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = serial_ms / max(pipelined_ms, 1e-9)
    table = format_table(
        f"Write path — overwrite churn with cleaning, {CHURN_BLOCKS} blocks "
        "x3 rounds (simulated)",
        ["time ms", "cleanings", "speedup"],
        {
            "serial writes": [serial_ms, 0.0, 1.0],
            "write-behind (depth 8)": [
                pipelined_ms,
                float(stats["cleanings"]),
                speedup,
            ],
        },
    )
    report_table("write_clean_under_load", table)
    _RESULTS["clean_under_load"] = {
        "blocks": CHURN_BLOCKS,
        "serial_ms": round(serial_ms, 1),
        "pipelined_ms": round(pipelined_ms, 1),
        "speedup": round(speedup, 2),
        "cleanings": stats["cleanings"],
    }
    _save()
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # The queue must never make the cleaning pathology worse.
    assert pipelined_ms <= serial_ms * 1.02, (
        f"write-behind regressed clean-under-load: {pipelined_ms:.1f} ms vs "
        f"{serial_ms:.1f} ms serial"
    )
