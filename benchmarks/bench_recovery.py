"""Ablation D — recovery-time scaling and the value of checkpoints.

The paper notes that with ARUs "file systems do not need specialized
recovery procedures"; the cost that remains is LLD's own summary
scan.  This bench measures simulated recovery time as the log grows,
with and without a checkpoint, and reports the speedup.
"""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.fs import MinixFS
from repro.harness.reporting import format_table
from repro.lld.lld import LLD
from repro.lld.recovery import recover

from benchmarks.conftest import full_scale, report_table

N_FILES = 2000 if full_scale() else 400


def build_populated(checkpoint: bool):
    geo = DiskGeometry.small(num_segments=256)
    disk = SimulatedDisk(geo)
    lld = LLD(disk, checkpoint_slot_segments=2)
    fs = MinixFS.mkfs(lld, n_inodes=N_FILES + 128)
    for index in range(N_FILES):
        path = f"/f{index}"
        fs.create(path)
        fs.write_file(path, b"x" * 1500)
    fs.sync()
    if checkpoint:
        lld.write_checkpoint()
    return disk


@pytest.mark.benchmark(group="recovery")
def test_recovery_with_and_without_checkpoint(benchmark):
    def run():
        results = {}
        for label, checkpoint in (("no checkpoint", False), ("checkpoint", True)):
            disk = build_populated(checkpoint)
            lld, report = recover(
                disk.power_cycle(), checkpoint_slot_segments=2
            )
            fs = MinixFS.mount(lld)
            assert fs.exists(f"/f{N_FILES - 1}")
            results[label] = (
                report.recovery_time_us / 1000.0,
                float(report.entries_replayed),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        f"Ablation D — recovery cost after {N_FILES} file creations "
        "(simulated)",
        ["recovery ms", "entries replayed"],
        {name: list(values) for name, values in results.items()},
    )
    report_table("recovery_checkpoint", table)
    benchmark.extra_info["speedup"] = round(
        results["no checkpoint"][0] / max(results["checkpoint"][0], 1e-9), 1
    )
    assert results["checkpoint"][1] < results["no checkpoint"][1]
    assert results["checkpoint"][0] < results["no checkpoint"][0]
