"""Event-loop transactions: the async twin of ``transactions.py``.

An :class:`AsyncTransaction` is the same strict-2PL-over-one-ARU
machine as :class:`~repro.txn.transactions.Transaction`, built for a
cooperative scheduler: lock waits park on :meth:`~repro.txn.locks.
LockManager.acquire_async` futures instead of blocking a thread, so a
single event loop can hold thousands of transactions in lock-wait
simultaneously — the concurrency regime the thread-per-lane front end
cannot reach without a thread per blocked client.

The logical disk itself stays synchronous (and internally locked), so
every LD operation is handed off to a small thread-pool ``executor``
via ``run_in_executor``.  That handoff is the contract boundary the
async front end documents: the loop never blocks on the LLD's mutex —
if a cleaner or scrubber pass holds it for milliseconds, only the
handful of executor threads wait, while the loop keeps admitting,
queueing and retiring the thousands of other clients.  Passing
``executor=None`` runs LD calls inline on the loop; that is only
sound when no other thread can hold the LLD lock (single-threaded
tests).

Both layers share one :class:`~repro.txn.transactions.
TransactionManager`: one transaction-id sequence (wait-die ages stay
totally ordered across sync and async requesters), one lock table,
one commit/abort ledger.  The retry loop
(:func:`run_transaction_async`) keeps ``run_transaction``'s contract
verbatim — timestamp inheritance, timeouts retried like deaths,
linear backoff, nothing leaked on any path.
"""

from __future__ import annotations

import asyncio
import functools
import time
from typing import Awaitable, Callable, List, Optional, TypeVar

from repro.errors import LockError, TransactionAborted
from repro.ld.types import ARUId, BlockId, FIRST, ListId, Predecessor
from repro.txn.locks import LockMode
from repro.txn.transactions import TransactionManager, TxnBreakdown

T = TypeVar("T")


class AsyncTransaction:
    """One ACID transaction whose lock waits yield to the event loop.

    Obtain from :func:`begin_async`; use ``async with`` (commits on
    clean exit, aborts on exception) or await :meth:`commit` /
    :meth:`abort` explicitly.  Every proxied operation is a
    coroutine; the locking discipline, ARU usage and failure paths
    mirror :class:`~repro.txn.transactions.Transaction` exactly.
    """

    def __init__(
        self,
        manager: TransactionManager,
        aru: ARUId,
        txn_id: int,
        durable: bool,
        timestamp: int,
        executor=None,
        breakdown: Optional[TxnBreakdown] = None,
    ) -> None:
        self.manager = manager
        self.ld = manager.ld
        self.aru = aru
        self.txn_id = txn_id
        self.durable = durable
        #: Wait-die priority; retries inherit it (see the runner).
        self.timestamp = timestamp
        self.state = "active"
        self.breakdown = breakdown
        self._executor = executor
        if breakdown is not None:
            breakdown.attempts += 1

    # ------------------------------------------------------------------
    # Locking and storage handoff
    # ------------------------------------------------------------------

    async def _lock(self, resource, mode: LockMode) -> None:
        waited = await self.manager.locks.acquire_async(
            self.txn_id, resource, mode
        )
        if self.breakdown is not None:
            self.breakdown.lock_wait_us += waited

    async def _ld_call(self, fn, *args, **kwargs):
        """One LD operation, through the storage executor.

        This is where the thread handoff happens: the call runs on an
        executor thread (which may block on the LLD's internal lock),
        the coroutine awaits the future, and the wall time is charged
        to the breakdown's storage component.
        """
        start = time.monotonic()
        try:
            if self._executor is None:
                return fn(*args, **kwargs)
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, functools.partial(fn, *args, **kwargs)
            )
        finally:
            if self.breakdown is not None:
                self.breakdown.storage_us += (
                    time.monotonic() - start
                ) * 1e6

    def _check_active(self) -> None:
        if self.state != "active":
            raise TransactionAborted(
                f"transaction {self.txn_id} is {self.state}"
            )

    # ------------------------------------------------------------------
    # Proxied LD operations
    # ------------------------------------------------------------------

    async def read(self, block_id: BlockId) -> bytes:
        """Read a block under a shared lock."""
        self._check_active()
        await self._lock(("block", int(block_id)), LockMode.SHARED)
        return await self._ld_call(self.ld.read, block_id, aru=self.aru)

    async def write(self, block_id: BlockId, data: bytes) -> None:
        """Write a block under an exclusive lock."""
        self._check_active()
        await self._lock(("block", int(block_id)), LockMode.EXCLUSIVE)
        await self._ld_call(self.ld.write, block_id, data, aru=self.aru)

    async def new_list(self) -> ListId:
        """Allocate a list (exclusively locked to this transaction)."""
        self._check_active()
        list_id = await self._ld_call(self.ld.new_list, aru=self.aru)
        await self._lock(("list", int(list_id)), LockMode.EXCLUSIVE)
        return list_id

    async def delete_list(self, list_id: ListId) -> None:
        """Delete a list under an exclusive lock."""
        self._check_active()
        await self._lock(("list", int(list_id)), LockMode.EXCLUSIVE)
        for block_id in await self._ld_call(
            self.ld.list_blocks, list_id, aru=self.aru
        ):
            await self._lock(("block", int(block_id)), LockMode.EXCLUSIVE)
        await self._ld_call(self.ld.delete_list, list_id, aru=self.aru)

    async def new_block(
        self, list_id: ListId, predecessor: Predecessor = FIRST
    ) -> BlockId:
        """Allocate a block in a list under an exclusive list lock."""
        self._check_active()
        await self._lock(("list", int(list_id)), LockMode.EXCLUSIVE)
        block_id = await self._ld_call(
            self.ld.new_block, list_id, predecessor, aru=self.aru
        )
        await self._lock(("block", int(block_id)), LockMode.EXCLUSIVE)
        return block_id

    async def delete_block(self, block_id: BlockId) -> None:
        """Delete a block under an exclusive block lock."""
        self._check_active()
        await self._lock(("block", int(block_id)), LockMode.EXCLUSIVE)
        await self._ld_call(self.ld.delete_block, block_id, aru=self.aru)

    async def list_blocks(self, list_id: ListId) -> List[BlockId]:
        """Enumerate a list under a shared lock."""
        self._check_active()
        await self._lock(("list", int(list_id)), LockMode.SHARED)
        return await self._ld_call(
            self.ld.list_blocks, list_id, aru=self.aru
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def commit(self) -> None:
        """Commit: EndARU, then (optionally) flush — same failure
        semantics as the sync transaction: no lock and no timestamp
        registration outlives the attempt on any path."""
        self._check_active()
        try:
            await self._ld_call(self.ld.end_aru, self.aru)
        except BaseException:
            await self._fail(discard_aru=True)
            raise
        try:
            if self.durable:
                await self._ld_call(self.ld.flush)
        except BaseException:
            await self._fail(discard_aru=False)
            raise
        self.state = "committed"
        self.manager.locks.release_all(self.txn_id)
        self.manager._finished(self)

    async def _fail(self, discard_aru: bool) -> None:
        """Tear down after a failed commit: best-effort ARU abort,
        unconditional lock release and manager bookkeeping."""
        self.state = "failed"
        try:
            if discard_aru:
                await self._ld_call(self.ld.abort_aru, self.aru)
        except Exception:
            # The primary error (about to be re-raised by commit) is
            # the story; a dead disk rejecting the abort adds nothing.
            pass
        finally:
            self.manager.locks.release_all(self.txn_id)
            self.manager._finished(self)

    async def abort(self) -> None:
        """Abort: discard the ARU's shadow state and release locks —
        even when the disk rejects the ARU abort (dead volume)."""
        if self.state != "active":
            return
        self.state = "aborted"
        try:
            await self._ld_call(self.ld.abort_aru, self.aru)
        finally:
            self.manager.locks.release_all(self.txn_id)
            self.manager._finished(self)

    async def __aenter__(self) -> "AsyncTransaction":
        return self

    async def __aexit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None:
            await self.commit()
        else:
            await self.abort()
        return False


async def begin_async(
    manager: TransactionManager,
    durable: bool = True,
    timestamp: Optional[int] = None,
    executor=None,
    breakdown: Optional[TxnBreakdown] = None,
) -> AsyncTransaction:
    """Start an async transaction on a (shared) manager.

    Identity and ordering rules are the manager's: the transaction id
    comes from the same sequence as sync transactions, the ARU begins
    *before* the owner registers (a rejected ARU must leave no stale
    ``_owner_ts`` entry), and ``timestamp`` threads a retried
    victim's original wait-die age through.
    """
    txn_id = manager.next_txn_id()
    txn = AsyncTransaction(
        manager,
        aru=None,  # type: ignore[arg-type]  — set right below
        txn_id=txn_id,
        durable=durable,
        timestamp=txn_id if timestamp is None else timestamp,
        executor=executor,
        breakdown=breakdown,
    )
    # The begin_aru handoff reuses the transaction's own storage
    # accounting; only after it succeeds does the owner register.
    txn.aru = await txn._ld_call(manager.ld.begin_aru)
    manager.locks.register(txn_id, txn.timestamp)
    return txn


async def run_transaction_async(
    manager: TransactionManager,
    body: Callable[[AsyncTransaction], Awaitable[T]],
    max_attempts: int = 10,
    durable: bool = True,
    retry_backoff_s: float = 0.001,
    executor=None,
    breakdown: Optional[TxnBreakdown] = None,
) -> T:
    """Run an async ``body`` in a transaction, retrying wait-die
    aborts under exactly ``run_transaction``'s contract:

    * every retry reuses the **first attempt's timestamp** (victims
      age instead of starving);
    * ``LockError`` timeouts retry like deaths;
    * retries back off linearly via ``asyncio.sleep`` (never blocking
      the loop), capped at 50 ms;
    * any other exception aborts the transaction and propagates, and
      nothing — locks, waiter entries, timestamp registrations —
      leaks on any path.
    """
    last_error: Optional[Exception] = None
    timestamp: Optional[int] = None
    for attempt in range(max_attempts):
        if attempt and retry_backoff_s > 0:
            await asyncio.sleep(min(retry_backoff_s * attempt, 0.05))
        txn = await begin_async(
            manager,
            durable=durable,
            timestamp=timestamp,
            executor=executor,
            breakdown=breakdown,
        )
        timestamp = txn.timestamp
        try:
            result = await body(txn)
        except LockError as exc:
            await txn.abort()
            last_error = exc
            continue
        except BaseException:
            try:
                await txn.abort()
            except Exception:
                # The body's error is the story; a disk that also
                # rejects the abort must not displace it.
                pass
            raise
        try:
            await txn.commit()
        except LockError as exc:
            # commit() already tore the transaction down.
            last_error = exc
            continue
        return result
    raise TransactionAborted(
        f"transaction failed after {max_attempts} wait-die retries"
    ) from last_error
