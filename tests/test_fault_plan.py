"""The unified :class:`FaultPlan` fault surface.

One declarative object now carries every fault the injector can
apply — power cuts, per-segment media faults (optionally scoped to
one shard of an array), and whole-shard losses.  The legacy
spellings (``CrashPlan``, ``FaultInjector(crash_plan=...,
media_faults=...)``) remain as shims and must behave identically.
"""

import pytest

from repro.disk.faults import (
    CrashPlan,
    FaultInjector,
    FaultPlan,
    MediaFault,
    PowerCut,
    ShardLoss,
)
from repro.disk.geometry import DiskGeometry
from repro.disk.simdisk import SimulatedDisk
from repro.errors import (
    DiskCrashedError,
    MediaError,
    ShardLostError,
)
from repro.lld.lld import LLD


def make_disk(injector=None, shard_index=None, num_segments=24):
    return SimulatedDisk(
        DiskGeometry.small(num_segments=num_segments),
        injector=injector,
        shard_index=shard_index,
    )


class TestFaultPlanSurface:
    def test_plan_carries_all_three_fault_kinds(self):
        plan = FaultPlan(
            power_cut=PowerCut(after_writes=5, torn=True),
            media_faults=[MediaFault(3), MediaFault(4, "corrupt", shard=1)],
            shard_losses=[ShardLoss(shard=2, after_writes=7)],
        )
        injector = FaultInjector(plan=plan)
        assert injector.crash_plan.after_writes == 5
        assert injector.crash_plan.torn
        assert 3 in injector.media_faults
        assert (1, 4) in injector._scoped_faults

    def test_plan_rejects_duplicate_shard_losses(self):
        with pytest.raises(ValueError):
            FaultPlan(
                shard_losses=[ShardLoss(shard=1), ShardLoss(shard=1)]
            )

    def test_plan_and_legacy_arguments_are_exclusive(self):
        with pytest.raises(ValueError):
            FaultInjector(
                crash_plan=CrashPlan(after_writes=1),
                plan=FaultPlan(),
            )

    def test_media_fault_kind_validated(self):
        with pytest.raises(ValueError):
            MediaFault(0, kind="slow")

    def test_shard_loss_validates(self):
        with pytest.raises(ValueError):
            ShardLoss(shard=-1)
        with pytest.raises(ValueError):
            ShardLoss(shard=0, after_writes=-1)


class TestCrashPlanShim:
    def test_crashplan_is_a_powercut(self):
        plan = CrashPlan(after_writes=3, torn=True, seed=7)
        assert isinstance(plan, PowerCut)
        assert plan.after_writes == 3

    def test_legacy_and_plan_spellings_crash_identically(self):
        for build in (
            lambda: FaultInjector(crash_plan=CrashPlan(after_writes=2)),
            lambda: FaultInjector(
                plan=FaultPlan(power_cut=PowerCut(after_writes=2))
            ),
        ):
            disk = make_disk(injector=build())
            seg = b"x" * disk.geometry.segment_size
            disk.write_segment(0, seg)
            disk.write_segment(1, seg)
            with pytest.raises(DiskCrashedError):
                disk.write_segment(2, seg)
                disk.write_segment(3, seg)


class TestScopedMediaFaults:
    def test_scoped_fault_hits_only_its_shard(self):
        injector = FaultInjector(
            plan=FaultPlan(
                media_faults=[MediaFault(0, "unreadable", shard=1)]
            )
        )
        disk0 = make_disk(injector=injector, shard_index=0)
        disk1 = make_disk(injector=injector, shard_index=1)
        seg = b"y" * disk0.geometry.segment_size
        disk0.write_segment(0, seg)
        disk1.write_segment(0, seg)
        assert disk0.read(0, 0, 16) == seg[:16]
        with pytest.raises(MediaError):
            disk1.read(0, 0, 16)

    def test_unscoped_fault_hits_every_shard(self):
        injector = FaultInjector(
            plan=FaultPlan(media_faults=[MediaFault(0, "unreadable")])
        )
        for index in (0, 1):
            disk = make_disk(injector=injector, shard_index=index)
            disk.write_segment(0, b"z" * disk.geometry.segment_size)
            with pytest.raises(MediaError):
                disk.read(0, 0, 16)


class TestShardLossSemantics:
    def test_immediate_loss_blocks_all_io(self):
        injector = FaultInjector(
            plan=FaultPlan(shard_losses=[ShardLoss(shard=0)])
        )
        disk = make_disk(injector=injector, shard_index=0)
        with pytest.raises(ShardLostError):
            disk.write_segment(0, b"a" * disk.geometry.segment_size)
        with pytest.raises(ShardLostError):
            disk.read(0, 0, 16)

    def test_deferred_loss_triggers_on_global_write_count(self):
        injector = FaultInjector(
            plan=FaultPlan(shard_losses=[ShardLoss(shard=1, after_writes=2)])
        )
        disk0 = make_disk(injector=injector, shard_index=0)
        disk1 = make_disk(injector=injector, shard_index=1)
        seg = b"b" * disk0.geometry.segment_size
        disk1.write_segment(0, seg)  # write 1: shard 1 still fine
        disk0.write_segment(0, seg)  # write 2: budget reached
        disk0.write_segment(1, seg)  # shard 0 unaffected
        with pytest.raises(ShardLostError):
            disk1.write_segment(1, seg)

    def test_loss_survives_power_cycle(self):
        """Power restoration does not resurrect destroyed media."""
        injector = FaultInjector(
            crash_plan=CrashPlan(after_writes=1),
        )
        injector.lose_shard(1)
        disk1 = make_disk(injector=injector, shard_index=1)
        injector.power_cycle()
        with pytest.raises(ShardLostError):
            disk1.read(0, 0, 16)

    def test_replace_shard_restores_io(self):
        injector = FaultInjector()
        injector.lose_shard(0)
        disk = make_disk(injector=injector, shard_index=0)
        with pytest.raises(ShardLostError):
            disk.read(0, 0, 16)
        injector.replace_shard(0)
        disk.write_segment(0, b"c" * disk.geometry.segment_size)
        assert disk.read(0, 0, 1) == b"c"

    def test_shard_lost_error_is_not_a_media_error(self):
        """Recovery classifies MediaError segments as individually
        unreadable; whole-shard loss must not be mistaken for that."""
        assert not issubclass(ShardLostError, MediaError)

    def test_power_cycled_disk_keeps_its_shard_index(self):
        injector = FaultInjector(crash_plan=CrashPlan(after_writes=1))
        disk = make_disk(injector=injector, shard_index=2)
        seg = b"d" * disk.geometry.segment_size
        disk.write_segment(0, seg)
        with pytest.raises(DiskCrashedError):
            disk.write_segment(1, seg)
            disk.write_segment(2, seg)
        survivor = disk.power_cycle()
        assert survivor.shard_index == 2

    def test_single_disk_unaffected_by_shard_losses(self):
        """A disk with no shard identity ignores shard-scoped faults
        (there is nothing to scope to)."""
        injector = FaultInjector(
            plan=FaultPlan(shard_losses=[ShardLoss(shard=0)])
        )
        disk = make_disk(injector=injector)  # shard_index=None
        disk.write_segment(0, b"e" * disk.geometry.segment_size)
        assert disk.read(0, 0, 1) == b"e"


class TestLLDUnderFaultPlan:
    def test_lld_storm_against_full_plan(self):
        """An LLD running under a plan with a power cut sees exactly
        the legacy crash behavior."""
        injector = FaultInjector(
            plan=FaultPlan(power_cut=PowerCut(after_writes=4))
        )
        disk = make_disk(injector=injector, num_segments=32)
        lld = LLD(disk, checkpoint_slot_segments=2)
        lst = lld.new_list()
        blk = lld.new_block(lst)
        with pytest.raises(DiskCrashedError):
            for round_no in range(100):
                lld.write(blk, b"r%d" % round_no)
                lld.flush()
